//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` annotations
//! compile unchanged. No serialisation machinery is provided — nothing in
//! the workspace performs serde-based (de)serialisation at runtime.

pub use serde_derive::{Deserialize, Serialize};
