//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what the workspace uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (`seed_from_u64`, `from_entropy`),
//! [`rngs::StdRng`] and [`seq::SliceRandom`] (`shuffle`, `choose_multiple`).
//! The generator is SplitMix64: not cryptographic, statistically fine for
//! placement shuffling, workload generation and write-tag salting.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait FromRandom {
    /// Draws a uniform value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Numeric types [`Rng::gen_range`] accepts.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift rejection-free mapping; the modulo bias over
                // a 128-bit numerator is negligible for simulation purposes.
                let word = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + word as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::from_random(rng) * (high - low)
    }
}

/// The user-facing random-value API (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_random(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators (subset of rand 0.8's trait).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (time + a process counter).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let unique = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ unique.rotate_left(32))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (Steele et al.), chosen for its
    /// two-line state transition and good statistical behaviour.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias kept for API compatibility: callers wanting a small fast RNG
    /// get the same SplitMix64.
    pub type SmallRng = StdRng;
}

/// A lazily seeded per-thread generator, for `rand::thread_rng()` parity.
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Returns a fresh entropy-seeded generator. Unlike the real crate this does
/// not reuse thread-local state — the workspace only uses it in cold paths.
pub fn thread_rng() -> ThreadRng {
    ThreadRng(rngs::StdRng::from_entropy())
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices (subset of rand 0.8's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Draws `amount` distinct elements, uniformly without replacement
        /// (all of them if `amount >= len`), in random order.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;

        /// Draws one element uniformly, or `None` if the slice is empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        let f = rng.gen_range(0.25f64..0.75);
        assert!((0.25..0.75).contains(&f));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn choose_multiple_draws_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let pool: Vec<u32> = (0..50).collect();
        let mut picked: Vec<u32> = pool.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 10, "choose_multiple must not repeat");
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 50);
    }

    #[test]
    fn entropy_seeds_differ() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        // Two consecutive entropy seeds must differ thanks to the counter.
        assert_ne!(
            (0..4).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..4).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
