//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with multiple `pattern in strategy` bindings,
//! integer-range and [`any`] strategies, [`collection::vec`], tuple
//! strategies, `prop_assert!`/`prop_assert_eq!` and
//! `ProptestConfig::with_cases`. Cases are sampled from a generator seeded
//! deterministically per test (FNV hash of the test name), so failures
//! reproduce across runs. There is no shrinking: a failing case panics with
//! the values baked into the assertion message.

use rand::rngs::StdRng;
use std::ops::Range;

// Re-exported so the `proptest!` macro can name the generator from the
// caller's crate without the caller depending on `rand` itself.
pub use rand;

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use std::ops::Range;

    /// Strategy producing vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with `size`-range lengths of `element`-drawn values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a, used to derive a per-test deterministic seed from its name.
#[must_use]
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

pub mod prelude {
    //! Everything a property-test module conventionally imports.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Declares property tests: each function body runs `config.cases` times on
/// freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not for direct use.
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let (a, b) = Strategy::sample(&(0u64..4, 7u64..9), &mut rng);
            assert!(a < 4 && (7..9).contains(&b));
            let v = Strategy::sample(&crate::collection::vec(0u64..3, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_with_multiple_bindings(a in 0u64..10, b in 10u64..20) {
            prop_assert!(a < b);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_supports_any(x in any::<u32>()) {
            prop_assert_eq!(u64::from(x) * 2, u64::from(x) + u64::from(x));
        }
    }
}
