//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing actually serialises through serde (the bench
//! crate writes its JSON by hand). These derives therefore expand to nothing,
//! which keeps every annotation compiling without pulling in syn/quote.
//! The `serde` helper attribute (`#[serde(default)]` etc.) is registered so
//! field annotations parse; it is ignored like everything else.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
