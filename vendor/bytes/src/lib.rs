//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, contiguous byte
//! buffer. Cloning is O(1) (a reference-count bump) which is what the chunk
//! transfer path relies on when pushing the same payload to several replica
//! providers, and [`Bytes::slice`] is O(1) too, which is what the zero-copy
//! write fast path relies on when a chunk slot is fully covered by the
//! caller's buffer. [`BytesMut`] is the growable builder used to assemble
//! boundary chunks before freezing them into shareable [`Bytes`].
//!
//! Deliberate divergences from the upstream crate (this is a stand-in, but
//! these are API extensions real `bytes` does not have, so a future switch
//! to the real crate must shim them):
//!
//! * `From<&[u8]>`, `From<&[u8; N]>`, `From<&Vec<u8>>`, `From<&Bytes>` —
//!   copying (or refcount-bumping) conversions so `impl Into<Bytes>` APIs
//!   accept borrowed buffers; upstream only has `From<&'static [u8]>`.
//! * [`Bytes::is_compact`] — whether the handle covers its whole backing
//!   allocation; long-lived caches use it to avoid pinning large buffers
//!   through small retained views.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    /// Backing storage shared by every clone/slice of the buffer.
    data: Arc<[u8]>,
    /// First valid byte within `data`.
    start: usize,
    /// One past the last valid byte within `data`.
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer borrowing nothing: the static slice is copied once
    /// into shared storage (the real crate borrows it; the copy is irrelevant
    /// for the sizes used in tests).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates a buffer holding a copy of `bytes`.
    #[must_use]
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-buffer covering `range` of this buffer.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Whether this handle covers its *entire* backing allocation (a
    /// stand-in extension, see the crate docs). A non-compact buffer is a
    /// view: keeping it alive keeps the whole backing allocation alive, so
    /// long-lived holders (caches) should compact views before retaining
    /// them.
    #[must_use]
    pub fn is_compact(&self) -> bool {
        self.start == 0 && self.end == self.data.len()
    }

    /// The buffer's contents as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&Vec<u8>> for Bytes {
    fn from(v: &Vec<u8>) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&Bytes> for Bytes {
    fn from(v: &Bytes) -> Self {
        v.clone()
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable, uniquely owned byte buffer that can be frozen into a
/// shareable [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            data: vec![0u8; len],
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `bytes` at the end of the buffer.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Resizes the buffer, filling new bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Converts the buffer into an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert!(Arc::ptr_eq(&b.data, &c.data), "clone must share storage");
    }

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert!(Arc::ptr_eq(&b.data, &s.data));
        assert_eq!(s.slice(1..).as_slice(), &[3, 4]);
    }

    #[test]
    fn comparisons_work_across_types() {
        let b = Bytes::from_static(b"abcd");
        assert_eq!(b, Bytes::copy_from_slice(b"abcd"));
        assert_eq!(b, b"abcd".to_vec());
        assert_eq!(b.to_vec(), vec![b'a', b'b', b'c', b'd']);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn conversions_from_borrowed_buffers_copy_once() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Bytes::from(&v), Bytes::from(v.clone()));
        assert_eq!(Bytes::from(v.as_slice()).as_slice(), &[1, 2, 3]);
        assert_eq!(Bytes::from(b"xy").as_slice(), b"xy");
        let b = Bytes::from(v);
        let c = Bytes::from(&b);
        assert!(Arc::ptr_eq(&b.data, &c.data), "Bytes -> Bytes is zero-copy");
    }

    #[test]
    fn bytes_mut_builds_and_freezes_without_copying() {
        let mut m = BytesMut::zeroed(4);
        m[1] = 7;
        m.extend_from_slice(&[9, 9]);
        assert_eq!(m.len(), 6);
        assert_eq!(&m[..], &[0, 7, 0, 0, 9, 9]);
        m.resize(3, 0);
        let frozen = m.freeze();
        assert_eq!(frozen.as_slice(), &[0, 7, 0]);
        assert!(BytesMut::with_capacity(16).is_empty());
    }
}
