//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Provides [`Criterion`], [`Bencher`] (`iter`, `iter_batched`),
//! [`BatchSize`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain wall-clock loop: warm
//! up for the configured time, then run samples for the measurement window
//! and report mean / min / max nanoseconds per iteration.
//!
//! Results are printed human-readably and, when the `BLOBSEER_BENCH_JSON`
//! environment variable names a file, appended to it as JSON lines
//! (`{"bench": ..., "mean_ns": ..., ...}`) so a trajectory of benchmark
//! numbers can be recorded across runs.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost. The stand-in runs one setup per
/// routine call in every mode, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch under real criterion.
    SmallInput,
    /// Large inputs: few per batch under real criterion.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone)]
struct Sample {
    iterations: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (kept for API parity; the stand-in
    /// uses it only to bound the iteration count).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long the measurement loop runs.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets how long the warm-up loop runs.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample: None,
        };
        routine(&mut bencher);
        match bencher.sample {
            Some(sample) => report(name, &sample),
            None => eprintln!("{name}: benchmark body never called iter()"),
        }
        self
    }
}

/// Handed to each benchmark closure; runs the measured loop.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Measures `routine` called back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording.
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        // Measurement.
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let end = Instant::now() + self.measurement;
        while Instant::now() < end {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            iterations += 1;
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        self.sample = Some(Sample {
            iterations,
            total,
            min,
            max,
        });
    }

    /// Measures `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let end = Instant::now() + self.measurement;
        while Instant::now() < end {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            iterations += 1;
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        self.sample = Some(Sample {
            iterations,
            total,
            min,
            max,
        });
    }
}

fn report(name: &str, sample: &Sample) {
    let mean_ns = if sample.iterations == 0 {
        0
    } else {
        (sample.total.as_nanos() / sample.iterations as u128) as u64
    };
    println!(
        "{name:<45} {mean_ns:>12} ns/iter (min {:>10} ns, max {:>10} ns, {} iters)",
        sample.min.as_nanos(),
        sample.max.as_nanos(),
        sample.iterations
    );
    if let Ok(path) = std::env::var("BLOBSEER_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"bench\":\"{name}\",\"mean_ns\":{mean_ns},\"min_ns\":{},\"max_ns\":{},\"iterations\":{}}}\n",
                sample.min.as_nanos(),
                sample.max.as_nanos(),
                sample.iterations
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(err) = written {
                eprintln!("cannot append bench JSON to {path}: {err}");
            }
        }
    }
}

/// Declares a group of benchmarks (both criterion forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark executable's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_sample() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0, "the routine must actually run");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
