//! Offline stand-in for the `parking_lot` API.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides the subset of `parking_lot` the workspace uses — [`Mutex`],
//! [`RwLock`] and [`Condvar`] with panic-free (non-poisoning) guards — backed
//! by `std::sync`. Poisoning is deliberately swallowed: like the real
//! `parking_lot`, a panic while holding a guard does not make the lock
//! unusable for other threads.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable with the `parking_lot` calling convention (`wait`
/// takes the guard by `&mut` instead of by value).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until the condition variable is notified, atomically releasing
    /// the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wakes one waiting thread. Returns whether a thread was woken (the real
    /// parking_lot reports this; std does not, so `true` is assumed).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes every waiting thread, returning how many were woken (unknown
    /// under std, reported as 0).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replaces the guard in place by threading it through `f`. Needed because
/// std's `Condvar::wait` consumes the guard while parking_lot's borrows it.
fn take_mut_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `ptr::read` duplicates the guard, but exactly one of the two
    // copies exists at any time: the original slot is overwritten via
    // `ptr::write` before anyone can observe it, and `f` consumes the copy.
    // A panic in `f` (only possible on mutex poisoning, which `wait` already
    // converts) would abort via double-drop, which is acceptable here.
    unsafe {
        let owned = std::ptr::read(guard);
        let new = f(owned);
        std::ptr::write(guard, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_one();
        waiter.join().unwrap();
    }

    #[test]
    fn locks_survive_a_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }
}
