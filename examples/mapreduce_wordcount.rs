//! MapReduce over BSFS (the BlobSeer-backed file system): the Hadoop
//! scenario of Section IV.D, end to end — build a corpus, run wordcount and
//! grep with data-local input splits, and show the same job on the HDFS-like
//! baseline for comparison.
//!
//! Run with: `cargo run --example mapreduce_wordcount`

use blobseer::bsfs::Bsfs;
use blobseer::core::Cluster;
use blobseer::hdfs::HdfsLikeFs;
use blobseer::mapreduce::{
    grep_job, wordcount_job, BsfsStorage, HdfsStorage, JobStorage, MapReduceEngine,
};
use blobseer::types::{BlobConfig, ClusterConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus: String = (0..5_000)
        .map(|i| {
            format!(
                "record {i}: the quick brown fox {} over the lazy dog\n",
                if i % 13 == 0 { "stumbles" } else { "jumps" }
            )
        })
        .collect();

    // --- BSFS backend -----------------------------------------------------
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        ..ClusterConfig::default()
    })?;
    let fs = Arc::new(Bsfs::new(
        Arc::new(cluster.client()),
        BlobConfig::new(64 << 10, 1)?,
    )?);
    let storage = Arc::new(BsfsStorage::new(Arc::clone(&fs)));
    storage.create_file("/in/corpus.txt")?;
    storage.append("/in/corpus.txt", corpus.as_bytes())?;

    let engine = MapReduceEngine::new(storage.clone(), 8);
    let wc = engine.run(&wordcount_job(
        vec!["/in/corpus.txt".into()],
        "/out",
        4,
        128 << 10,
    ))?;
    println!(
        "BSFS wordcount: {} map tasks ({} data-local), {} intermediate pairs, {:.1} ms",
        wc.map_tasks,
        wc.tasks_with_locality,
        wc.intermediate_pairs,
        wc.elapsed.as_secs_f64() * 1_000.0
    );
    let grep = engine.run(&grep_job(
        vec!["/in/corpus.txt".into()],
        "/out",
        "stumbles",
        2,
        128 << 10,
    ))?;
    println!(
        "BSFS grep('stumbles'): {} matching lines, {:.1} ms",
        String::from_utf8(storage.read_file(&grep.outputs[0])?)?
            .lines()
            .count(),
        grep.elapsed.as_secs_f64() * 1_000.0
    );

    // --- HDFS-like baseline -------------------------------------------------
    let hdfs = Arc::new(HdfsLikeFs::new(8, 64 << 10, 1)?);
    let hdfs_storage = Arc::new(HdfsStorage::new(hdfs));
    hdfs_storage.create_file("/in/corpus.txt")?;
    hdfs_storage.append("/in/corpus.txt", corpus.as_bytes())?;
    let hdfs_engine = MapReduceEngine::new(hdfs_storage, 8);
    let hdfs_wc = hdfs_engine.run(&wordcount_job(
        vec!["/in/corpus.txt".into()],
        "/out",
        4,
        128 << 10,
    ))?;
    println!(
        "HDFS-like wordcount: {} map tasks, {:.1} ms (same engine, baseline storage)",
        hdfs_wc.map_tasks,
        hdfs_wc.elapsed.as_secs_f64() * 1_000.0
    );
    Ok(())
}
