//! Quickstart: create a blob, write and append concurrently, read back any
//! snapshot.
//!
//! Run with: `cargo run --example quickstart`

use blobseer::core::Cluster;
use blobseer::types::{BlobConfig, ClusterConfig, Version};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-process deployment: 8 data providers, 4 metadata providers.
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        ..ClusterConfig::default()
    })?;
    let client = cluster.client();

    // A blob with 64 KiB chunks, no replication.
    let blob = client.create_blob(BlobConfig::new(64 << 10, 1)?)?;
    println!("created {blob}");

    // Every write or append produces a new snapshot.
    let v1 = client.append(blob, b"hello, blobseer!")?;
    let v2 = client.write(blob, 7, b"versioned world!")?;
    println!("appended -> {v1}, wrote -> {v2}");

    // Old snapshots stay readable forever.
    assert_eq!(client.read_all(blob, Some(v1))?, b"hello, blobseer!");
    assert_eq!(client.read_all(blob, Some(v2))?, b"hello, versioned world!");
    assert_eq!(client.latest_version(blob)?, Version(2));

    // Many clients can append to the same blob concurrently; the version
    // manager orders the snapshots, data and metadata I/O stay parallel.
    std::thread::scope(|scope| {
        for worker in 0..4u8 {
            let client = cluster.client();
            scope.spawn(move || {
                for i in 0..8u8 {
                    client
                        .append(blob, format!("[worker {worker} record {i}]").as_bytes())
                        .expect("append");
                }
            });
        }
    });
    println!(
        "after concurrent appends: {} snapshots, {} bytes",
        client.latest_version(blob)?.0,
        client.size(blob, None)?
    );
    Ok(())
}
