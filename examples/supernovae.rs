//! The supernovae-detection scenario (Section IV.A of the paper): a huge
//! blob holding the view of the sky, accessed in a fine-grain manner by many
//! concurrent clients — writers update tiles as new observations arrive,
//! readers scan tiles looking for transients, and nobody ever waits on a
//! lock because every reader works on an immutable snapshot.
//!
//! Run with: `cargo run --example supernovae`

use blobseer::core::Cluster;
use blobseer::types::{BlobConfig, ClusterConfig};

const TILE: u64 = 16 << 10; // one sky tile = 16 KiB
const TILES: u64 = 256; // the sky = 4 MiB

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 16,
        metadata_providers: 8,
        ..ClusterConfig::default()
    })?;
    let setup = cluster.client();
    let sky = setup.create_blob(BlobConfig::new(TILE, 1)?)?;

    // Initial survey: upload the whole sky.
    setup.append(sky, vec![0u8; (TILE * TILES) as usize])?;
    println!("sky uploaded: {} tiles of {} KiB", TILES, TILE >> 10);

    // Concurrent observation (writers) and detection (readers).
    std::thread::scope(|scope| {
        for telescope in 0..4u64 {
            let client = cluster.client();
            scope.spawn(move || {
                for obs in 0..16u64 {
                    let tile = (telescope * 16 + obs) % TILES;
                    let brightness = ((telescope + 1) * 10 + obs) as u8;
                    client
                        .write(sky, tile * TILE, vec![brightness; TILE as usize])
                        .expect("tile update");
                }
            });
        }
        for _detector in 0..4 {
            let client = cluster.client();
            scope.spawn(move || {
                let mut candidates = 0u32;
                for _scan in 0..8 {
                    // Each scan reads a consistent snapshot of a sky stripe.
                    let stripe = client
                        .read(sky, None, 0, (TILES / 4) * TILE)
                        .expect("stripe read");
                    candidates += stripe
                        .chunks(TILE as usize)
                        .filter(|tile| tile.iter().any(|&p| p > 40))
                        .count() as u32;
                }
                println!("detector finished: {candidates} bright-tile observations");
            });
        }
    });

    let client = cluster.client();
    println!(
        "final sky version: {}, {} snapshots kept, {} bytes stored across providers",
        client.latest_version(sky)?,
        client.published_versions(sky)?.len(),
        cluster.total_stored_bytes()
    );
    Ok(())
}
