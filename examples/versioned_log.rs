//! A versioned, append-only acquisition log with failure injection: the
//! data-acquisition / desktop-grid scenario of Sections IV.B–IV.E. Writers
//! continuously append records with replication 2 while a provider fails and
//! recovers; readers process stable snapshots in the background and the
//! monitoring + behaviour-model feedback loop flags the failed provider.
//!
//! Run with: `cargo run --example versioned_log`

use blobseer::core::Cluster;
use blobseer::qos::{MonitoringCollector, QosController};
use blobseer::types::{BlobConfig, ClusterConfig, PlacementPolicy, ProviderId};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        placement: PlacementPolicy::QosAware,
        ..ClusterConfig::default()
    })?;
    let client = cluster.client();
    let log = client.create_blob(BlobConfig::new(32 << 10, 2)?)?;

    let collector = Arc::new(MonitoringCollector::new(cluster.providers()));
    let mut controller = QosController::new(
        Arc::clone(&collector),
        Arc::clone(cluster.provider_manager()),
        3,
        4,
    );

    // Acquisition rounds; provider 3 fails mid-run and recovers later.
    for round in 0..12u32 {
        if round == 4 {
            println!("!! provider-3 fails");
            cluster.fail_provider(ProviderId(3))?;
        }
        if round == 9 {
            println!("!! provider-3 recovers");
            cluster.recover_provider(ProviderId(3))?;
        }
        std::thread::scope(|scope| {
            for sensor in 0..4u32 {
                let client = cluster.client();
                scope.spawn(move || {
                    let record = format!("round {round} sensor {sensor}: {}\n", "x".repeat(60_000));
                    client.append(log, record.as_bytes()).expect("append");
                });
            }
        });
        collector.sample();
        let flagged = controller.step()?;
        if !flagged.is_empty() {
            println!("round {round:2}: behaviour model flags {flagged:?}");
        }

        // A background analysis job reads the latest stable snapshot while
        // the acquisition keeps appending.
        let snapshot = client.latest_version(log)?;
        let bytes = client.size(log, Some(snapshot))?;
        println!("round {round:2}: snapshot {snapshot} holds {bytes} bytes");
    }

    println!(
        "log finished with {} snapshots; replication 2 kept every record readable ({} bytes)",
        client.published_versions(log)?.len() - 1,
        client.read_all(log, None)?.len()
    );
    Ok(())
}
