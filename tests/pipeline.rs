//! Integration tests of the pipelined transfer scheduler: differential
//! equivalence between the pipelined and phased schedules on a real
//! in-process cluster, and liveness when a metadata shard fails while chunk
//! submissions are in flight.

use blobseer::core::Cluster;
use blobseer::types::{BlobConfig, ClusterConfig, MetaNodeId, Version};
use proptest::prelude::*;

const CS: u64 = 512;

fn cluster_with_depth(depth: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        pipeline_depth: depth,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Replays unaligned writes on a fresh cluster with the given pipeline
/// depth and returns every published version with its full contents.
fn replay(depth: usize, ops: &[(u64, u64, u8)]) -> (Vec<Version>, Vec<Vec<u8>>) {
    let cluster = cluster_with_depth(depth);
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    for &(slot, len_slots, seed) in ops {
        // Deliberately unaligned offsets and lengths: boundary-chunk merging
        // runs inside the pipelined write path too.
        let len = len_slots * CS + u64::from(seed) % CS;
        let data: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        client
            .write(blob, slot * CS + u64::from(seed) % 7, &data)
            .unwrap();
    }
    let versions = client.published_versions(blob).unwrap();
    let contents = versions
        .iter()
        .map(|&v| client.read_all(blob, Some(v)).unwrap())
        .collect();
    (versions, contents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The pipelined schedule is an optimisation, not a semantic change:
    /// for any write history, `pipeline_depth > 0` and the phased path
    /// publish the same versions and every snapshot reads byte-identically.
    #[test]
    fn prop_pipelined_and_phased_schedules_are_equivalent(
        ops in proptest::collection::vec((0u64..24, 1u64..6, 1u8..255), 1..8)
    ) {
        let (phased_versions, phased_reads) = replay(0, &ops);
        let (pipelined_versions, pipelined_reads) = replay(4, &ops);
        prop_assert_eq!(phased_versions, pipelined_versions);
        prop_assert_eq!(phased_reads, pipelined_reads);
    }
}

#[test]
fn failing_metadata_shard_does_not_deadlock_inflight_submissions() {
    // No client-side cache, so the descent really revisits the failed shard.
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        pipeline_depth: 4,
        client_metadata_cache: false,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    let data: Vec<u8> = (0..16 * CS).map(|i| i as u8).collect();
    client.append(blob, &data).unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), data);

    // Kill one of the two metadata shards: the next pipelined read hits
    // missing metadata mid-descent while chunk fetches for earlier levels
    // are already submitted. The read must return an error — not hang on
    // dangling completions — and the shared pool must keep serving.
    cluster.fail_metadata_node(MetaNodeId(0)).unwrap();
    assert!(client.read_all(blob, None).is_err());
    assert!(
        client.read_all(blob, None).is_err(),
        "still live, still failing"
    );

    // Writes from another client keep flowing through the same transfer
    // pool once the shard recovers, and the blob is intact.
    cluster.recover_metadata_node(MetaNodeId(0)).unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), data);
    let other = cluster.client();
    other.append(blob, &data).unwrap();
    assert_eq!(other.size(blob, None).unwrap(), 32 * CS);
}

#[test]
fn pipelined_reads_spread_over_replicas() {
    // One chunk replicated on two providers: with start-index rotation both
    // replicas serve reads; probing stored order would pin all load on the
    // first replica. Cache off — rotation is only observable on reads that
    // actually reach the providers.
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        chunk_cache_bytes: 0,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap();
    client.append(blob, vec![7u8; CS as usize]).unwrap();
    for _ in 0..32 {
        client.read_all(blob, None).unwrap();
    }
    let serving: Vec<_> = cluster
        .providers()
        .iter()
        .filter(|p| p.stats().reads > 0)
        .map(|p| p.id())
        .collect();
    assert!(
        serving.len() >= 2,
        "reads must rotate over both replicas, got {serving:?}"
    );
}
