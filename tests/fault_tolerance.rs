//! Integration tests: provider failures, replication and the QoS feedback
//! loop on a real in-process cluster — and on the networked transport,
//! where a provider can die harder than in-process (its endpoint vanishes
//! mid-connection instead of answering "unavailable").

use blobseer::core::Cluster;
use blobseer::net::NetCluster;
use blobseer::qos::{MonitoringCollector, QosController};
use blobseer::types::{BlobConfig, ClusterConfig, FaultPlan, PlacementPolicy, ProviderId};
use std::sync::Arc;

#[test]
fn replicated_data_survives_rolling_failures() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 6,
        metadata_providers: 3,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 3).unwrap())
        .unwrap();
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    client.append(blob, &payload).unwrap();

    // Fail two providers at a time, in a rolling fashion: with replication 3
    // every chunk always keeps at least one live replica.
    for pair in [(0u32, 1u32), (2, 3), (4, 5)] {
        cluster.fail_provider(ProviderId(pair.0)).unwrap();
        cluster.fail_provider(ProviderId(pair.1)).unwrap();
        assert_eq!(client.read_all(blob, None).unwrap(), payload);
        cluster.recover_provider(ProviderId(pair.0)).unwrap();
        cluster.recover_provider(ProviderId(pair.1)).unwrap();
    }
}

#[test]
fn writes_continue_and_recover_after_provider_failures() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(512, 2).unwrap())
        .unwrap();
    client.append(blob, vec![1u8; 2048]).unwrap();

    cluster.fail_provider(ProviderId(0)).unwrap();
    cluster.fail_provider(ProviderId(1)).unwrap();
    // Two live providers remain: replication 2 is still satisfiable.
    client.append(blob, vec![2u8; 2048]).unwrap();
    cluster.recover_provider(ProviderId(0)).unwrap();
    cluster.recover_provider(ProviderId(1)).unwrap();
    client.append(blob, vec![3u8; 2048]).unwrap();

    let all = client.read_all(blob, None).unwrap();
    assert_eq!(all.len(), 6144);
    assert!(all[..2048].iter().all(|&b| b == 1));
    assert!(all[2048..4096].iter().all(|&b| b == 2));
    assert!(all[4096..].iter().all(|&b| b == 3));
}

#[test]
fn metadata_dht_replication_survives_a_metadata_node_failure() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 3,
        dht_replication: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(512, 1).unwrap())
        .unwrap();
    let payload = vec![5u8; 8192];
    client.append(blob, &payload).unwrap();

    cluster
        .fail_metadata_node(blobseer::types::MetaNodeId(0))
        .unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), payload);
    cluster
        .recover_metadata_node(blobseer::types::MetaNodeId(0))
        .unwrap();
}

#[test]
fn networked_provider_killed_mid_write_is_substituted_without_data_loss() {
    // A *networked* provider dying is harsher than the in-process failure
    // switch: its server endpoint disappears, tearing live connections down
    // under in-flight chunk stores. The writer must fail over to live
    // providers mid-operation and publish an intact version.
    let cluster = NetCluster::new_channel(
        ClusterConfig {
            data_providers: 6,
            metadata_providers: 3,
            io_timeout_ms: 500, // fail over quickly once the endpoint is gone
            ..ClusterConfig::default()
        },
        FaultPlan::none(),
    )
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 2).unwrap())
        .unwrap();
    // Warm up so provider 0 holds replicas of the first version.
    let base = vec![7u8; 24 * 1024];
    client.append(blob, &base).unwrap();

    // A long append races the kill: the writer thread streams 96 chunks
    // while the main thread waits for the first of them to land on
    // provider 0, then kills its endpoint outright.
    let big = vec![9u8; 96 * 1024];
    let writer = std::thread::spawn({
        let client = cluster.client();
        let big = big.clone();
        move || client.append(blob, big)
    });
    let victim = cluster.inner().provider(ProviderId(0)).unwrap();
    let before = victim.stats().writes;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while victim.stats().writes == before && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    cluster.stop_provider_endpoint(ProviderId(0)).unwrap();
    writer
        .join()
        .unwrap()
        .expect("the write must fail over to live providers");

    // Both versions read back intact; chunks assigned to the dead endpoint
    // were substituted (replication 2 also keeps earlier data readable).
    let all = client.read_all(blob, None).unwrap();
    assert_eq!(all.len(), base.len() + big.len());
    assert!(all[..base.len()].iter().all(|&b| b == 7));
    assert!(all[base.len()..].iter().all(|&b| b == 9));
}

#[test]
fn qos_feedback_steers_placement_away_from_a_failed_provider() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 6,
        metadata_providers: 2,
        placement: PlacementPolicy::QosAware,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(4096, 1).unwrap())
        .unwrap();
    let collector = Arc::new(MonitoringCollector::new(cluster.providers()));
    let mut controller = QosController::new(
        Arc::clone(&collector),
        Arc::clone(cluster.provider_manager()),
        3,
        4,
    );

    for round in 0..10u8 {
        if round == 4 {
            cluster.fail_provider(ProviderId(1)).unwrap();
        }
        client.append(blob, vec![round; 16 * 1024]).unwrap();
        collector.sample();
    }
    let flagged = controller.step().unwrap();
    assert!(
        flagged.contains(&ProviderId(1)),
        "failed provider must be flagged: {flagged:?}"
    );
    // Subsequent placements avoid the flagged provider.
    let before = cluster.provider(ProviderId(1)).unwrap().stats().chunks;
    for round in 0..5u8 {
        client.append(blob, vec![round; 16 * 1024]).unwrap();
    }
    let after = cluster.provider(ProviderId(1)).unwrap().stats().chunks;
    assert_eq!(
        before, after,
        "no new chunks may land on the flagged provider"
    );
}
