//! Integration tests: provider failures, replication and the QoS feedback
//! loop on a real in-process cluster — and on the networked transport,
//! where a provider can die harder than in-process (its endpoint vanishes
//! mid-connection instead of answering "unavailable").

use blobseer::core::Cluster;
use blobseer::net::NetCluster;
use blobseer::persist::scan;
use blobseer::qos::{MonitoringCollector, QosController};
use blobseer::types::{
    BlobConfig, ClusterConfig, Durability, FaultPlan, PlacementPolicy, ProviderId, Version,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[test]
fn replicated_data_survives_rolling_failures() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 6,
        metadata_providers: 3,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 3).unwrap())
        .unwrap();
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    client.append(blob, &payload).unwrap();

    // Fail two providers at a time, in a rolling fashion: with replication 3
    // every chunk always keeps at least one live replica.
    for pair in [(0u32, 1u32), (2, 3), (4, 5)] {
        cluster.fail_provider(ProviderId(pair.0)).unwrap();
        cluster.fail_provider(ProviderId(pair.1)).unwrap();
        assert_eq!(client.read_all(blob, None).unwrap(), payload);
        cluster.recover_provider(ProviderId(pair.0)).unwrap();
        cluster.recover_provider(ProviderId(pair.1)).unwrap();
    }
}

#[test]
fn writes_continue_and_recover_after_provider_failures() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(512, 2).unwrap())
        .unwrap();
    client.append(blob, vec![1u8; 2048]).unwrap();

    cluster.fail_provider(ProviderId(0)).unwrap();
    cluster.fail_provider(ProviderId(1)).unwrap();
    // Two live providers remain: replication 2 is still satisfiable.
    client.append(blob, vec![2u8; 2048]).unwrap();
    cluster.recover_provider(ProviderId(0)).unwrap();
    cluster.recover_provider(ProviderId(1)).unwrap();
    client.append(blob, vec![3u8; 2048]).unwrap();

    let all = client.read_all(blob, None).unwrap();
    assert_eq!(all.len(), 6144);
    assert!(all[..2048].iter().all(|&b| b == 1));
    assert!(all[2048..4096].iter().all(|&b| b == 2));
    assert!(all[4096..].iter().all(|&b| b == 3));
}

#[test]
fn metadata_dht_replication_survives_a_metadata_node_failure() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 3,
        dht_replication: 2,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(512, 1).unwrap())
        .unwrap();
    let payload = vec![5u8; 8192];
    client.append(blob, &payload).unwrap();

    cluster
        .fail_metadata_node(blobseer::types::MetaNodeId(0))
        .unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), payload);
    cluster
        .recover_metadata_node(blobseer::types::MetaNodeId(0))
        .unwrap();
}

#[test]
fn networked_provider_killed_mid_write_is_substituted_without_data_loss() {
    // A *networked* provider dying is harsher than the in-process failure
    // switch: its server endpoint disappears, tearing live connections down
    // under in-flight chunk stores. The writer must fail over to live
    // providers mid-operation and publish an intact version.
    let cluster = NetCluster::new_channel(
        ClusterConfig {
            data_providers: 6,
            metadata_providers: 3,
            io_timeout_ms: 500, // fail over quickly once the endpoint is gone
            ..ClusterConfig::default()
        },
        FaultPlan::none(),
    )
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 2).unwrap())
        .unwrap();
    // Warm up so provider 0 holds replicas of the first version.
    let base = vec![7u8; 24 * 1024];
    client.append(blob, &base).unwrap();

    // A long append races the kill: the writer thread streams 96 chunks
    // while the main thread waits for the first of them to land on
    // provider 0, then kills its endpoint outright.
    let big = vec![9u8; 96 * 1024];
    let writer = std::thread::spawn({
        let client = cluster.client();
        let big = big.clone();
        move || client.append(blob, big)
    });
    let victim = cluster.inner().provider(ProviderId(0)).unwrap();
    let before = victim.stats().writes;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while victim.stats().writes == before && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    cluster.stop_provider_endpoint(ProviderId(0)).unwrap();
    writer
        .join()
        .unwrap()
        .expect("the write must fail over to live providers");

    // Both versions read back intact; chunks assigned to the dead endpoint
    // were substituted (replication 2 also keeps earlier data readable).
    let all = client.read_all(blob, None).unwrap();
    assert_eq!(all.len(), base.len() + big.len());
    assert!(all[..base.len()].iter().all(|&b| b == 7));
    assert!(all[base.len()..].iter().all(|&b| b == 9));
}

// ---------------------------------------------------------------------------
// Durable persistence tier: crash-restart matrix + at-rest corruption.
// ---------------------------------------------------------------------------

const DUR_CS: u64 = 64;

fn durable_config() -> ClusterConfig {
    ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        chunk_cache_bytes: 0,
        // Process-kill semantics need no fsync (the bytes are in the page
        // cache, not the process); Buffered keeps the matrix fast.
        durability: Durability::Buffered,
        ..ClusterConfig::default()
    }
}

fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blobseer-ft-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn ft_pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(131)
                .wrapping_add(seed.wrapping_mul(2654435761))) as u8
        })
        .collect()
}

/// One step of a random durable history: appends grow the blob, writes
/// overwrite (possibly past the end — hole semantics stay out by writing
/// within the appended span only at chunk boundaries).
#[derive(Debug, Clone, Copy)]
enum DurOp {
    Append { len: usize, seed: u64 },
    Write { slot: u64, seed: u64 },
}

/// Draws random durable histories (roughly half appends, half chunk-aligned
/// overwrites).
struct DurOpsStrategy;

impl Strategy for DurOpsStrategy {
    type Value = Vec<DurOp>;

    fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<DurOp> {
        use rand::Rng;
        let count = rng.gen_range(3..9);
        (0..count)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    DurOp::Append {
                        len: rng.gen_range(1..3 * DUR_CS as usize),
                        seed: rng.gen(),
                    }
                } else {
                    DurOp::Write {
                        slot: rng.gen_range(0..6u64),
                        seed: rng.gen(),
                    }
                }
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The crash-restart matrix of the durable tier: a random history runs
    /// against a durable deployment, then the metadata WAL is truncated at
    /// *every* record boundary in turn (every possible `kill -9` point the
    /// log can witness) and the directory reopened. Each truncation must
    /// recover a *prefix-consistent* version set — the latest recovered
    /// version only ever grows with the truncation point, never invents a
    /// version the history didn't publish, and every recovered version
    /// reads byte-identical to what was acknowledged when it was published.
    #[test]
    fn wal_truncation_at_every_record_boundary_recovers_a_consistent_prefix(
        ops in DurOpsStrategy,
    ) {
        let master = durable_dir("matrix-master");
        // Replay the history, recording the model bytes at every published
        // version (version numbers start at 1; 0 is the empty snapshot).
        let mut published: Vec<(Version, Vec<u8>)> = Vec::new();
        let blob = {
            let cluster = Cluster::open_durable(durable_config(), &master).unwrap();
            let client = cluster.client();
            let blob = client
                .create_blob(BlobConfig::new(DUR_CS, 2).unwrap())
                .unwrap();
            let mut model: Vec<u8> = Vec::new();
            for op in &ops {
                let version = match *op {
                    DurOp::Append { len, seed } => {
                        let data = ft_pattern(len, seed);
                        let v = client.append(blob, &data).unwrap();
                        model.extend_from_slice(&data);
                        v
                    }
                    DurOp::Write { slot, seed } => {
                        let data = ft_pattern(DUR_CS as usize, seed);
                        let offset = slot * DUR_CS;
                        let v = client.write(blob, offset, &data).unwrap();
                        let end = offset as usize + data.len();
                        if model.len() < end {
                            model.resize(end, 0);
                        }
                        model[offset as usize..end].copy_from_slice(&data);
                        v
                    }
                };
                published.push((version, model.clone()));
            }
            blob
        };

        // Every WAL record boundary is a kill point (plus offset 0: the
        // crash before anything landed).
        let wal = std::fs::read(master.join("meta.wal")).unwrap();
        let mut boundaries: Vec<usize> = vec![0];
        boundaries.extend(scan(&wal).records.iter().map(|r| r.span.end));

        let mut last_recovered = Version(0);
        for (i, &cut) in boundaries.iter().enumerate() {
            let trial = durable_dir(&format!("matrix-{i}"));
            copy_dir(&master, &trial);
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(trial.join("meta.wal"))
                .unwrap();
            file.set_len(cut as u64).unwrap();
            drop(file);

            let cluster = Cluster::open_durable(durable_config(), &trial).unwrap();
            if cluster.recovery_stats().recovered_blobs == 0 {
                // Killed before the create-blob record: nothing to serve.
                prop_assert!(cluster.client().read_all(blob, None).is_err());
                let _ = std::fs::remove_dir_all(&trial);
                continue;
            }
            let latest = cluster.version_manager().latest_snapshot(blob).unwrap().version;
            // Prefix consistency: the recovered set only grows with the
            // truncation point and never exceeds what was published.
            prop_assert!(latest >= last_recovered,
                "recovered version went backwards: {latest:?} after {last_recovered:?}");
            prop_assert!(latest.0 as usize <= published.len(),
                "recovered a version the history never published: {latest:?}");
            last_recovered = latest;
            // Byte-identical reads of every recovered version.
            let client = cluster.client();
            for (version, model) in published.iter().filter(|(v, _)| *v <= latest) {
                prop_assert_eq!(
                    &client.read_all(blob, Some(*version)).unwrap(),
                    model,
                    "version {:?} diverged after truncation at {} of {}",
                    version, cut, wal.len()
                );
            }
            let _ = std::fs::remove_dir_all(&trial);
        }
        // The full log recovers the full history.
        prop_assert_eq!(last_recovered.0 as usize, published.len());
        let _ = std::fs::remove_dir_all(&master);
    }
}

/// At-rest corruption rotates to a replica instead of serving garbage: a
/// payload byte of one provider's segment file is flipped between restarts;
/// the per-read CRC surfaces the damage as a retryable transport error, the
/// client fails the read over to the intact replica, and the answer is
/// byte-identical.
#[test]
fn flipped_segment_byte_fails_over_to_the_intact_replica() {
    let dir = durable_dir("crc-flip");
    let payload = ft_pattern(8 * DUR_CS as usize, 42);
    let blob = {
        let cluster = Cluster::open_durable(durable_config(), &dir).unwrap();
        let client = cluster.client();
        let blob = client
            .create_blob(BlobConfig::new(DUR_CS, 2).unwrap())
            .unwrap();
        client.append(blob, &payload).unwrap();
        blob
    };
    // Flip one payload byte of the *first* record of one provider's first
    // segment. Mid-file CRC damage stays addressable (only a torn *tail* is
    // truncated), so the read path — not recovery — must catch it. Offset
    // 100 is safely inside the first record's chunk payload: the framing
    // header, chunk id and envelope header together span 47 bytes, and the
    // chunk itself is 64.
    let seg = dir.join("provider-0000").join("seg-000001.log");
    let mut raw = std::fs::read(&seg).unwrap();
    assert!(
        raw.len() > 2 * DUR_CS as usize,
        "segment holds several records"
    );
    raw[100] ^= 0xFF;
    std::fs::write(&seg, &raw).unwrap();

    let cluster = Cluster::open_durable(durable_config(), &dir).unwrap();
    assert_eq!(cluster.recovery_stats().recovered_blobs, 1);
    assert!(
        cluster.recovery_stats().corrupt_chunk_records >= 1,
        "recovery must notice the at-rest damage"
    );
    // The live cluster serves the read by rotating to the intact replica.
    let client = cluster.client();
    assert_eq!(
        client.read_all(blob, None).unwrap(),
        payload,
        "a flipped byte must never reach the reader"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn qos_feedback_steers_placement_away_from_a_failed_provider() {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 6,
        metadata_providers: 2,
        placement: PlacementPolicy::QosAware,
        ..ClusterConfig::default()
    })
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(4096, 1).unwrap())
        .unwrap();
    let collector = Arc::new(MonitoringCollector::new(cluster.providers()));
    let mut controller = QosController::new(
        Arc::clone(&collector),
        Arc::clone(cluster.provider_manager()),
        3,
        4,
    );

    for round in 0..10u8 {
        if round == 4 {
            cluster.fail_provider(ProviderId(1)).unwrap();
        }
        client.append(blob, vec![round; 16 * 1024]).unwrap();
        collector.sample();
    }
    let flagged = controller.step().unwrap();
    assert!(
        flagged.contains(&ProviderId(1)),
        "failed provider must be flagged: {flagged:?}"
    );
    // Subsequent placements avoid the flagged provider.
    let before = cluster.provider(ProviderId(1)).unwrap().stats().chunks;
    for round in 0..5u8 {
        client.append(blob, vec![round; 16 * 1024]).unwrap();
    }
    let after = cluster.provider(ProviderId(1)).unwrap().stats().chunks;
    assert_eq!(
        before, after,
        "no new chunks may land on the flagged provider"
    );
}
