//! Durability and lifecycle bugfix sweep: the WAL stays bounded without
//! lifecycle help, the sweeper racing a shutdown tears nothing, and the
//! maintenance tick compacts segment stores once enough of their records
//! are dead. Each test pins one fix end-to-end on a real durable cluster.

use blobseer::core::Cluster;
use blobseer::net::NetCluster;
use blobseer::types::{BlobConfig, ClusterConfig, Durability, TransportKind, Version};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blobseer-lifecycle-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

/// Copies a durable directory byte-for-byte — the restart tests use this as
/// a crash image taken while the source cluster is still open, so recovery
/// sees exactly what a power cut would have left.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let target = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// Total bytes of chunk segment logs under `dir`, recursively.
fn segment_log_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            total += segment_log_bytes(&entry.path());
        } else if entry.file_name().to_string_lossy().ends_with(".log") {
            total += entry.metadata().unwrap().len();
        }
    }
    total
}

/// The WAL must checkpoint on its own record-count trigger even when the
/// lifecycle engine never runs — a long lifecycle-off history used to grow
/// the log (and with it recovery replay) without bound.
#[test]
fn checkpoints_bound_the_wal_with_the_lifecycle_off() {
    let dir = temp_dir("walbound");
    let config = || ClusterConfig {
        data_providers: 3,
        metadata_providers: 2,
        // Lifecycle fully off: both knobs zero, engine never started.
        retained_versions: 0,
        flatten_threshold: 0,
        checkpoint_records: 16,
        // No background checkpointer either — the record-count trigger
        // alone, driven from the maintenance pass, must do the bounding.
        checkpoint_interval_ms: 0,
        durability: Durability::Commit,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::open_durable(config(), &dir).unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 1).unwrap())
        .unwrap();
    let wal = cluster.durable_tier().unwrap().wal().clone();

    let mut max_since = 0;
    for round in 0..12u8 {
        for i in 0..4u8 {
            client
                .append(blob, pattern(4096, round.wrapping_mul(4) + i))
                .unwrap();
        }
        cluster.run_maintenance();
        max_since = max_since.max(wal.records_since_checkpoint());
    }
    assert!(
        max_since >= 1,
        "the appends must be journaling records at all"
    );
    assert!(
        max_since < 64,
        "48 appends of history must never pile up past the checkpoint \
         trigger plus one round of slack, saw {max_since} records"
    );

    // Crash image: copy the still-open directory, then recover from the
    // copy. Replay is bounded by the same trigger — not by history length.
    let crash = temp_dir("walbound-crash");
    copy_dir(&dir, &crash);
    let reopened = Cluster::open_durable(config(), &crash).unwrap();
    let rec = reopened.recovery_stats();
    assert!(
        rec.wal_replayed_records < 64,
        "recovery must replay only the post-checkpoint tail: {rec:?}"
    );
    assert_eq!(rec.recovered_blobs, 1, "{rec:?}");
    let expected: Vec<u8> = (0..48u8).flat_map(|n| pattern(4096, n)).collect();
    assert_eq!(reopened.client().read_all(blob, None).unwrap(), expected);

    drop(reopened);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

/// Sweeper passes and checkpoint attempts racing a coordinated shutdown
/// must fail cleanly — endpoints mid-teardown and a sealing WAL produce
/// requeues and errors, never a panic or a torn log.
#[test]
fn sweeper_racing_a_shutdown_tears_nothing() {
    let dir = temp_dir("shutrace");
    let cluster = NetCluster::open_durable(
        ClusterConfig {
            transport: TransportKind::Channel,
            data_providers: 3,
            metadata_providers: 2,
            // Retention keeps the sweeper busy: every overwrite below
            // strands a version it will want to reclaim.
            retained_versions: 2,
            durability: Durability::Commit,
            ..ClusterConfig::default()
        },
        &dir,
    )
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 1).unwrap())
        .unwrap();
    let last = pattern(8192, 5);
    for v in 0..5u8 {
        client.write(blob, 0, pattern(8192, v + 1)).unwrap();
    }

    std::thread::scope(|scope| {
        let lifecycle = cluster.lifecycle().clone();
        scope.spawn(move || {
            // Sweep passes before, during and after the teardown: RPCs
            // against endpoints that just stopped must come back as errors
            // (requeued), not hang or poison anything.
            for _ in 0..300 {
                lifecycle.run_once();
            }
        });
        let inner = cluster.inner();
        scope.spawn(move || {
            // Checkpoint attempts racing the WAL seal: once the log is
            // closing they must return an error instead of appending a
            // torn image.
            for _ in 0..300 {
                let _ = inner.force_checkpoint();
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        cluster.shutdown();
    });
    drop(cluster);

    // Recovery after the contested shutdown: nothing torn, the surviving
    // history serves the last version byte-identically.
    let reopened = Cluster::open_durable(
        ClusterConfig {
            data_providers: 3,
            metadata_providers: 2,
            retained_versions: 2,
            durability: Durability::Commit,
            ..ClusterConfig::default()
        },
        &dir,
    )
    .unwrap();
    let rec = reopened.recovery_stats();
    assert_eq!(rec.torn_commits_dropped, 0, "{rec:?}");
    assert_eq!(rec.corrupt_chunk_records, 0, "{rec:?}");
    assert_eq!(rec.recovered_blobs, 1, "{rec:?}");
    assert_eq!(reopened.client().read_all(blob, None).unwrap(), last);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Once version GC has killed enough records, the maintenance tick must
/// compact the segment stores: reads stay byte-identical while the on-disk
/// footprint shrinks.
#[test]
fn maintenance_tick_compacts_dead_segments_without_changing_reads() {
    let dir = temp_dir("compact");
    let cluster = Cluster::open_durable(
        ClusterConfig {
            data_providers: 2,
            metadata_providers: 2,
            retained_versions: 1,
            compact_dead_ratio: 0.3,
            checkpoint_interval_ms: 0,
            durability: Durability::Commit,
            // Small segments so the overwrites below seal several of them:
            // only sealed segments are compaction victims.
            segment_bytes: 32 << 10,
            ..ClusterConfig::default()
        },
        &dir,
    )
    .unwrap();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(4096, 1).unwrap())
        .unwrap();
    // Six full overwrites of a 16-chunk blob: five versions' worth of
    // chunks become garbage the moment retention evicts them.
    for v in 0..6u8 {
        client.write(blob, 0, pattern(64 << 10, v)).unwrap();
    }
    let latest = client.read_all(blob, None).unwrap();
    assert_eq!(latest, pattern(64 << 10, 5));
    let before = segment_log_bytes(&dir);
    assert!(before as usize >= latest.len(), "all six versions on disk");

    // Drive eviction and sweeping until GC has reclaimed the dead chunks;
    // each pass ends in the maintenance hook — the same tick the daemon's
    // lifecycle thread fires — whose dead-ratio policy triggers compaction.
    for _ in 0..8 {
        cluster.lifecycle().run_once();
    }
    assert!(
        cluster.lifecycle().stats().reclaimed_chunks > 0,
        "retention must have swept the overwritten versions: {:?}",
        cluster.lifecycle().stats()
    );
    cluster.run_maintenance(); // one more inline tick, as the daemon runs it
    let after = segment_log_bytes(&dir);
    assert!(
        after * 2 < before,
        "compaction must shrink the segment footprint well past the dead \
         ratio: {before} -> {after}"
    );
    assert_eq!(
        client.read_all(blob, Some(Version(6))).unwrap(),
        latest,
        "compaction must preserve every surviving byte"
    );

    // And the compacted directory still recovers.
    drop(cluster);
    let reopened = Cluster::open_durable(
        ClusterConfig {
            data_providers: 2,
            metadata_providers: 2,
            retained_versions: 1,
            compact_dead_ratio: 0.3,
            durability: Durability::Commit,
            segment_bytes: 32 << 10,
            ..ClusterConfig::default()
        },
        &dir,
    )
    .unwrap();
    assert_eq!(reopened.client().read_all(blob, None).unwrap(), latest);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
