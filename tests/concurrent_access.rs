//! Integration tests: concurrent readers and writers on a real in-process
//! cluster, exercising the full client → provider manager → providers →
//! metadata DHT → version manager path.

use blobseer::core::Cluster;
use blobseer::types::{BlobConfig, ByteRange, ClusterConfig, Version};

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        ..ClusterConfig::default()
    })
    .unwrap()
}

#[test]
fn many_writers_disjoint_regions_round_trip() {
    let cluster = cluster();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1 << 10, 1).unwrap())
        .unwrap();
    let region = 8 << 10;
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let client = cluster.client();
            scope.spawn(move || {
                let data = vec![w as u8 + 1; region as usize];
                client.write(blob, w * region, &data).unwrap();
            });
        }
    });
    let all = client.read_all(blob, None).unwrap();
    assert_eq!(all.len() as u64, 8 * region);
    for w in 0..8u64 {
        let slice = &all[(w * region) as usize..((w + 1) * region) as usize];
        assert!(
            slice.iter().all(|&b| b == w as u8 + 1),
            "region {w} corrupted"
        );
    }
}

#[test]
fn snapshot_isolation_under_concurrent_overwrites() {
    let cluster = cluster();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(512, 1).unwrap())
        .unwrap();
    let v1 = client.append(blob, vec![1u8; 4096]).unwrap();

    // Concurrent overwriting writers.
    std::thread::scope(|scope| {
        for w in 0..6u64 {
            let client = cluster.client();
            scope.spawn(move || {
                client
                    .write(blob, (w % 4) * 1024, vec![(w + 10) as u8; 1024])
                    .unwrap();
            });
        }
    });

    // The original snapshot is untouched.
    assert_eq!(client.read_all(blob, Some(v1)).unwrap(), vec![1u8; 4096]);
    // The latest snapshot is a consistent mix: every 512-byte chunk region is
    // uniformly filled with some writer's value (or the original).
    let latest = client.read_all(blob, None).unwrap();
    for chunk in latest.chunks(512) {
        assert!(chunk.iter().all(|&b| b == chunk[0]));
    }
    assert_eq!(client.latest_version(blob).unwrap(), Version(7));
}

#[test]
fn chunk_locations_match_where_data_is_actually_stored() {
    let cluster = cluster();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(1024, 2).unwrap())
        .unwrap();
    client.append(blob, vec![9u8; 8 * 1024]).unwrap();
    let locations = client
        .chunk_locations(blob, None, ByteRange::new(0, 8 * 1024))
        .unwrap();
    assert_eq!(locations.len(), 8);
    for (_, providers) in &locations {
        assert_eq!(providers.len(), 2);
        for p in providers {
            let provider = cluster.provider(*p).unwrap();
            assert!(provider.stats().chunks > 0);
        }
    }
}

#[test]
fn concurrent_writers_on_distinct_blobs_interleave() {
    // Each writer owns one blob: with the sharded, per-blob version manager
    // none of them ever waits on a shared lock, and every blob's history
    // publishes densely and in order regardless of how the writers
    // interleave.
    let cluster = cluster();
    let blobs: Vec<_> = (0..8u64)
        .map(|_| {
            cluster
                .client()
                .create_blob(BlobConfig::new(512, 1).unwrap())
                .unwrap()
        })
        .collect();
    std::thread::scope(|scope| {
        for (w, &blob) in blobs.iter().enumerate() {
            let client = cluster.client();
            scope.spawn(move || {
                for i in 0..12u64 {
                    let fill = (w as u64 * 16 + i + 1) as u8;
                    client.append(blob, vec![fill; 512]).unwrap();
                }
            });
        }
    });
    let client = cluster.client();
    for (w, &blob) in blobs.iter().enumerate() {
        let versions = client.published_versions(blob).unwrap();
        assert_eq!(versions.len(), 13, "blob {w}: v0 + 12 appends");
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(v.0, i as u64, "blob {w} has a publication gap");
        }
        let all = client.read_all(blob, None).unwrap();
        assert_eq!(all.len(), 12 * 512);
        for (i, chunk) in all.chunks(512).enumerate() {
            let expected = (w as u64 * 16 + i as u64 + 1) as u8;
            assert!(
                chunk.iter().all(|&b| b == expected),
                "blob {w} record {i} corrupted"
            );
        }
    }
}

#[test]
fn reads_cost_depth_times_shards_metadata_round_trips() {
    // End-to-end version of the acceptance bound: reading a whole 64-chunk
    // snapshot through the real client (frontier descent + metadata cache
    // over the 4-shard DHT) must cost O(tree-depth × shards) round-trips,
    // not one per tree node.
    let cluster = cluster(); // 4 metadata providers
    let client = cluster.client();
    let chunk_size = 1u64 << 10;
    let blob = client
        .create_blob(BlobConfig::new(chunk_size, 1).unwrap())
        .unwrap();
    client
        .append(blob, vec![7u8; (64 * chunk_size) as usize])
        .unwrap();

    // A fresh client has a cold metadata cache.
    let reader = cluster.client();
    let before = cluster.metadata_round_trips();
    let all = reader.read_all(blob, None).unwrap();
    assert_eq!(all.len() as u64, 64 * chunk_size);
    let trips = cluster.metadata_round_trips() - before;
    // 64 leaves → 127 tree nodes, depth 7, 4 shards.
    let bound = 7 * 4;
    assert!(
        trips <= bound,
        "cold read issued {trips} metadata round-trips (> depth×shards = {bound})"
    );
    // A second read of the same snapshot is served from the client cache.
    let before = cluster.metadata_round_trips();
    reader.read_all(blob, None).unwrap();
    assert_eq!(cluster.metadata_round_trips() - before, 0);
}

#[test]
fn version_history_is_dense_and_ordered() {
    let cluster = cluster();
    let client = cluster.client();
    let blob = client
        .create_blob(BlobConfig::new(256, 1).unwrap())
        .unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = cluster.client();
            scope.spawn(move || {
                for _ in 0..16 {
                    client.append(blob, &[7u8; 100]).unwrap();
                }
            });
        }
    });
    let versions = client.published_versions(blob).unwrap();
    assert_eq!(versions.len(), 65); // v0 + 64 appends
    for (i, v) in versions.iter().enumerate() {
        assert_eq!(v.0, i as u64);
    }
    // Sizes are monotonically increasing by exactly one record.
    for (i, v) in versions.iter().enumerate().skip(1) {
        assert_eq!(client.size(blob, Some(*v)).unwrap(), i as u64 * 100);
    }
}
