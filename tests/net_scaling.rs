//! Scaling and robustness stress tests of the event-driven TCP server.
//!
//! The reactor + bounded worker pool exist to make serving scale with
//! *cores* instead of *clients*; these tests pin the three properties that
//! contract rests on:
//!
//! * **thread census** — however many clients connect and operate
//!   concurrently, the serving side stays at `rpc_workers` pool threads
//!   plus one reactor thread;
//! * **slow-loris immunity** — a connection that stalls mid-frame occupies
//!   no worker thread, does not starve other connections, and is pruned
//!   once it exceeds `io_timeout`;
//! * **reconnect storms** — waves of short-lived clients (each with its
//!   own `connections_per_endpoint` pool) connect, operate and vanish
//!   without leaking serving threads or wedging the reactor.
//!
//! The tests serialise on a process-local lock: the census counts threads
//! by name across the whole process, so two deployments at once would
//! double-count. CI additionally runs this binary with
//! `--test-threads=1`.

use blobseer::net::{count_threads_with_prefix, NetCluster};
use blobseer::types::{BlobConfig, ClusterConfig, ProviderId};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CS: u64 = 256;

/// Census-bearing tests must not overlap inside this process.
static SERIAL: Mutex<()> = Mutex::new(());

fn config() -> ClusterConfig {
    ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        connections_per_endpoint: 2,
        ..ClusterConfig::default()
    }
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

fn serving_threads() -> usize {
    count_threads_with_prefix("net-reactor") + count_threads_with_prefix("net-worker-")
}

/// Samples the serving-thread census until told to stop; returns the peak.
fn spawn_census(stop: Arc<AtomicBool>) -> std::thread::JoinHandle<usize> {
    std::thread::spawn(move || {
        let mut peak = 0;
        while !stop.load(Ordering::Relaxed) {
            peak = peak.max(serving_threads());
            std::thread::sleep(Duration::from_millis(5));
        }
        peak.max(serving_threads())
    })
}

#[test]
fn serving_threads_stay_bounded_under_concurrent_clients() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = config();
    let bound = cfg.effective_rpc_workers();
    let cluster = NetCluster::new_tcp(cfg).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let census = spawn_census(Arc::clone(&stop));

    // 32 clients — each its own connection pool — operating at once. A
    // thread-per-connection server would sit at ≥ 32 serving threads here
    // (the pre-reactor shape); the reactor must not grow at all.
    std::thread::scope(|scope| {
        for n in 0..32u8 {
            let cluster = &cluster;
            scope.spawn(move || {
                let client = cluster.client();
                let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
                let data = pattern(3 * CS as usize + 11, n);
                client.append(blob, &data).unwrap();
                assert_eq!(client.read_all(blob, None).unwrap(), data);
            });
        }
    });

    stop.store(true, Ordering::Relaxed);
    let peak = census.join().unwrap();
    assert!(
        peak <= bound + 1,
        "serving threads must stay O(workers): peak {peak} with 32 clients (bound {bound} + reactor)"
    );
    assert!(peak >= 1, "the census must have seen the serving threads");
}

#[test]
fn stalled_connection_cannot_starve_pool_or_peers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = config();
    cfg.io_timeout_ms = 300; // prune quickly in the test
    let bound = cfg.effective_rpc_workers();
    let cluster = NetCluster::new_tcp(cfg).unwrap();
    let addr = cluster
        .provider_endpoint_addr(ProviderId(0))
        .expect("tcp deployments expose endpoint addresses");

    // More slow-loris connections than worker threads, each stalling
    // mid-frame: a correct length prefix promising a body that never
    // arrives in full. On a thread-per-request server this holds
    // `bound + 1` threads hostage; the reactor must not blink.
    let mut loris = Vec::new();
    for _ in 0..bound + 1 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&64u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 3]).unwrap(); // 3 of the promised 64 bytes
        stream.flush().unwrap();
        loris.push(stream);
    }

    // While the stalled connections sit there, real clients are served.
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    let data = pattern(4 * CS as usize, 7);
    client.append(blob, &data).unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), data);

    // Past io_timeout the reactor prunes the stalled connections: the
    // sockets get reset/closed instead of being held open forever.
    let deadline = Instant::now() + Duration::from_secs(10);
    for mut stream in loris {
        stream
            .set_read_timeout(Some(
                deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(10)),
            ))
            .unwrap();
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {} // pruned: EOF or reset
            Ok(n) => panic!("a pruned connection must not produce data, got {n} bytes"),
        }
    }

    // And the surviving client still works afterwards.
    assert_eq!(client.read_all(blob, None).unwrap(), data);
}

#[test]
fn reconnect_storm_leaks_no_serving_threads() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = config();
    let bound = cfg.effective_rpc_workers();
    let cluster = NetCluster::new_tcp(cfg).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let census = spawn_census(Arc::clone(&stop));
    let completed = AtomicUsize::new(0);

    // Waves of short-lived clients: every client dials a fresh connection
    // pool to every endpoint, runs one round trip and disconnects. 8 lanes
    // × 6 clients = 48 connect/disconnect cycles racing the reactor's
    // accept and teardown paths.
    std::thread::scope(|scope| {
        for lane in 0..8u8 {
            let cluster = &cluster;
            let completed = &completed;
            scope.spawn(move || {
                for round in 0..6u8 {
                    let client = cluster.client();
                    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
                    let data = pattern(2 * CS as usize + 5, lane.wrapping_add(round));
                    client.append(blob, &data).unwrap();
                    assert_eq!(client.read_all(blob, None).unwrap(), data);
                    drop(client);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    stop.store(true, Ordering::Relaxed);
    let peak = census.join().unwrap();
    assert_eq!(completed.load(Ordering::Relaxed), 48);
    assert!(
        peak <= bound + 1,
        "a reconnect storm must not grow the serving side: peak {peak} (bound {bound} + reactor)"
    );

    // After the storm the deployment is still healthy for a fresh client.
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    let data = pattern(CS as usize, 42);
    client.append(blob, &data).unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), data);
}
