//! Integration tests of the chunk compression tier.
//!
//! The codec must be *invisible*: for any operation history, a cluster with
//! `ChunkCodec::Fast` publishes the same versions and serves byte-identical
//! reads as one with the codec off — in-process and over real loopback TCP,
//! with the client chunk cache on or off, and across payloads the codec can
//! and cannot shrink. On top of the differential property: compressed
//! replicas must survive provider failures (the repair path re-reads the
//! stored envelope, it never re-codes), the shared node-local chunk cache
//! must let one client's fetch hit for another, and the shard-grouped
//! metadata descent must coalesce frames on the wire.

use blobseer::core::{BlobClient, Cluster};
use blobseer::net::NetCluster;
use blobseer::types::{BlobConfig, ChunkCodec, ClusterConfig, ProviderId};
use proptest::prelude::*;

const CS: u64 = 256;

fn config(codec: ChunkCodec, chunk_cache_bytes: u64) -> ClusterConfig {
    ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        chunk_codec: codec,
        chunk_cache_bytes,
        ..ClusterConfig::default()
    }
}

/// Deterministic payloads straddling the codec's interesting regimes: even
/// seeds produce highly compressible cycled text (rotated by the seed so
/// versions still differ), odd seeds produce xorshift noise the codec must
/// pass through verbatim.
fn fill(len: u64, seed: u8) -> Vec<u8> {
    if seed % 2 == 0 {
        const LINE: &[u8] = b"GET /chunk/0042 HTTP/1.1 200 OK length=65536 provider=3 \n";
        LINE.iter()
            .copied()
            .cycle()
            .skip(seed as usize % LINE.len())
            .take(len as usize)
            .collect()
    } else {
        let mut x = u64::from(seed) << 32 | 0x9e37_79b9;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }
}

/// One random client operation: `((kind, offset_slots), (len, seed))` —
/// nested pairs because the vendored proptest only implements `Strategy`
/// for 2- and 3-tuples.
type RawOp = ((usize, u64), (u64, u8));

/// Replays a history on a fresh blob and returns the contents of every
/// published version — the observation the codec must leave unchanged.
fn replay(client: &BlobClient, ops: &[RawOp]) -> Vec<Vec<u8>> {
    let blob = client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap();
    for &((kind, offset_slots), (len, seed)) in ops {
        let data = fill(len, seed);
        match kind {
            0 => client.append(blob, data).unwrap(),
            _ => client
                .write(blob, offset_slots * CS + u64::from(seed) % 13, data)
                .unwrap(),
        };
    }
    let versions = client.published_versions(blob).unwrap();
    versions
        .iter()
        .map(|&v| client.read_all(blob, Some(v)).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The codec differential: `Fast` and `Off` are observationally
    /// identical for any history, in-process and over loopback TCP, cache
    /// on or off, on compressible and incompressible payloads alike.
    #[test]
    fn prop_codec_off_and_fast_read_identically(
        ops in proptest::collection::vec(
            ((0usize..2, 0u64..8), (1u64..4 * CS, 0u8..255)), 1..6
        )
    ) {
        for cache in [0u64, 4 * CS] {
            let reference = {
                let cluster = Cluster::new(config(ChunkCodec::Off, cache)).unwrap();
                replay(&cluster.client(), &ops)
            };
            let fast = {
                let cluster = Cluster::new(config(ChunkCodec::Fast, cache)).unwrap();
                replay(&cluster.client(), &ops)
            };
            prop_assert_eq!(&reference, &fast, "in-process fast diverged (cache={})", cache);
            let fast_tcp = {
                let cluster = NetCluster::new_tcp(config(ChunkCodec::Fast, cache)).unwrap();
                replay(&cluster.client(), &ops)
            };
            prop_assert_eq!(&reference, &fast_tcp, "tcp fast diverged (cache={})", cache);
        }
    }
}

/// Replication repairs compressed chunks too: the failover read and the
/// degraded re-replication path hand the stored envelope around without
/// re-coding it, so killing providers under `Fast` must not cost a byte.
#[test]
fn compressed_replicas_survive_provider_failures() {
    let cluster = NetCluster::new_tcp(config(ChunkCodec::Fast, 0)).unwrap();
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap();
    let payload = fill(64 * CS, 2); // compressible: the codec must engage
    client.append(blob, payload.clone()).unwrap();
    let stats = client.stats();
    assert!(
        stats.chunks_compressed > 0,
        "the compressible corpus must actually compress"
    );
    assert!(
        stats.bytes_on_wire_physical < stats.bytes_on_wire_logical,
        "compressed chunks must ship compressed"
    );

    // With replication 2 over 4 providers, any single failure leaves every
    // chunk a live compressed replica. Roll the failure across all four.
    for id in 0u32..4 {
        cluster.fail_provider(ProviderId(id)).unwrap();
        let reader = cluster.client();
        assert_eq!(
            reader.read_all(blob, None).unwrap(),
            payload,
            "degraded read of compressed replicas diverged"
        );
        cluster.recover_provider(ProviderId(id)).unwrap();
    }
}

/// The shared node-local chunk cache: chunks one client fetched (and
/// decompressed) serve another client's reads without touching the wire.
/// With `shared_chunk_cache` off, each client warms a private cache and the
/// second reader starts cold.
#[test]
fn shared_chunk_cache_serves_across_clients() {
    let hits_for_second_reader = |shared: bool| {
        let cluster = Cluster::new(ClusterConfig {
            shared_chunk_cache: shared,
            ..config(ChunkCodec::Fast, 16 * CS)
        })
        .unwrap();
        let writer = cluster.client();
        let blob = writer.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        // 64 chunks through a 16-chunk cache: the writer's write-through
        // entries for the head are long evicted by the time it finishes.
        let payload = fill(64 * CS, 4);
        writer.append(blob, payload.clone()).unwrap();

        let head = &payload[..(8 * CS) as usize];
        let first = cluster.client();
        assert_eq!(first.read(blob, None, 0, 8 * CS).unwrap(), head);
        assert!(first.stats().cache_misses > 0, "first reader must fetch");

        let second = cluster.client();
        assert_eq!(second.read(blob, None, 0, 8 * CS).unwrap(), head);
        second.stats().cache_hits
    };
    assert!(
        hits_for_second_reader(true) > 0,
        "with the shared cache, the first reader's fetches must hit for the second"
    );
    assert_eq!(
        hits_for_second_reader(false),
        0,
        "with private caches, the second reader starts cold"
    );
}

/// The shard-grouped metadata plane coalesces frames: a reader's tree
/// descent batches each level's `get_nodes` into one flush per shard, and a
/// writer's `put_nodes` batches the whole tree update — both visible as
/// `frames_coalesced` on real loopback TCP.
#[test]
fn metadata_descent_coalesces_frames_on_the_wire() {
    let cluster = NetCluster::new_tcp(config(ChunkCodec::Off, 0)).unwrap();
    let writer = cluster.client();
    let blob = writer.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    let payload = fill(64 * CS, 6);
    writer.append(blob, payload.clone()).unwrap();
    assert!(
        writer.stats().frames_coalesced > 0,
        "the writer's tree publish must batch put_nodes frames"
    );

    let reader = cluster.client();
    assert_eq!(reader.read_all(blob, None).unwrap(), payload);
    let stats = reader.stats();
    assert!(
        stats.frames_coalesced > 0,
        "the reader's tree descent must batch get_nodes frames"
    );
    // 64 leaves mean a 127-node tree plus 64 chunk fetches; without
    // coalescing every one would be its own flush. The batched descent
    // must flush strictly fewer times than it sends frames.
    let flushes = stats.frames_sent - stats.frames_coalesced;
    assert!(
        flushes < stats.frames_sent,
        "coalescing must reduce flushes below one-per-frame"
    );
    assert!(
        stats.frames_sent < 127 + 64 + 16,
        "the descent should not send more frames than nodes + chunks (+ slack): {}",
        stats.frames_sent
    );
}
