//! Integration tests: the simulated-cluster experiment pipeline reproduces
//! the qualitative shapes the paper reports (these are the assertions behind
//! EXPERIMENTS.md, run at reduced scale so the suite stays fast).

use blobseer::sim::{SimulatedCluster, WorkloadBuilder};
use blobseer::types::{ClusterConfig, PlacementPolicy};
use blobseer_bench as bench;

fn cluster(data: usize, meta: usize) -> SimulatedCluster {
    SimulatedCluster::new(ClusterConfig {
        data_providers: data,
        metadata_providers: meta,
        placement: PlacementPolicy::RoundRobin,
        ..ClusterConfig::default()
    })
    .unwrap()
}

#[test]
fn writes_scale_with_concurrency_like_fig_a2() {
    let series = bench::fig_a2_concurrent_rw(&[1, 16], 16);
    for s in &series {
        assert!(
            s.points[1].throughput_mibps > 5.0 * s.points[0].throughput_mibps,
            "{} must scale with clients",
            s.name
        );
    }
}

#[test]
fn metadata_decentralization_shape_like_fig_c1() {
    // 128 KiB chunks keep the workload clearly metadata-bound: since the
    // pipelined schedule (the default) hides metadata latency behind chunk
    // I/O, a single metadata server must be *saturated* — not merely slow —
    // for decentralisation to show, exactly as in the paper's Fig. C1
    // (which also shrinks the chunk size for this experiment).
    let series = bench::fig_c1_metadata_decentralization(&[48], 32, 8, 128);
    let centralized = series[0].final_throughput().unwrap();
    let decentralized = series[1].final_throughput().unwrap();
    assert!(
        decentralized > 1.5 * centralized,
        "DHT metadata ({decentralized:.0}) must beat centralized ({centralized:.0})"
    );
}

#[test]
fn striping_shape_like_fig_c2() {
    let series = bench::fig_c2_provider_sweep(&[2, 32], 32, 16);
    assert!(series.points[1].throughput_mibps > 4.0 * series.points[0].throughput_mibps);
}

#[test]
fn bsfs_vs_hdfs_shape_like_fig_d1() {
    let series = bench::fig_d1_bsfs_vs_hdfs(&[1, 32], 16);
    let bsfs_gain = series[0].points[1].throughput_mibps / series[0].points[0].throughput_mibps;
    let hdfs_gain = series[1].points[1].throughput_mibps / series[1].points[0].throughput_mibps;
    assert!(bsfs_gain > 8.0);
    assert!(hdfs_gain < 1.2);
}

#[test]
fn qos_feedback_shape_like_fig_e1() {
    let (without, with) = bench::fig_e1_qos_stability(24, 8, 10.0);
    assert!(with.aggregated_mibps > 1.1 * without.aggregated_mibps);
}

#[test]
fn replication_shape_like_tab_e2() {
    let rows = bench::tab_e2_replication(&[1, 2], 8);
    assert!(rows[0].write_mibps > rows[1].write_mibps);
    assert!(rows[1].read_availability >= rows[0].read_availability);
}

/// p99 latency (in virtual milliseconds) of the interactive tenant — the
/// last client of an `overload` workload.
fn interactive_p99_ms(result: &blobseer::sim::SimulationResult, interactive: usize) -> f64 {
    let mut lat: Vec<f64> = result
        .ops
        .iter()
        .filter(|op| op.client == interactive)
        .inspect(|op| assert!(op.ok, "interactive ops must all succeed"))
        .map(|op| (op.end - op.start) as f64 / 1e6)
        .collect();
    assert!(!lat.is_empty());
    lat.sort_by(f64::total_cmp);
    let rank = ((lat.len() as f64 * 0.99).ceil() as usize).clamp(1, lat.len());
    lat[rank - 1]
}

#[test]
fn admission_window_bounds_the_interactive_tenants_tail_latency() {
    // Four greedy tenants each inject bursts two orders of magnitude larger
    // than the interactive tenant's appends. Without admission every burst
    // lands on the data plane whole and the interactive tenant's p99 grows
    // with the burst size; with a window of four chunks per tenant the
    // greedy streams arrive as paced installments and the interactive p99
    // stays within a constant factor of the uncontended latency.
    let build = || {
        WorkloadBuilder::new(4)
            .ops_per_client(4)
            .op_size(64 << 20)
            .chunk_size(512 << 10)
    };
    let flood = build().overload(256 << 10, 32, 0);
    let paced = build().overload(256 << 10, 32, 4);
    let interactive = flood.clients - 1;

    let mut sim = cluster(8, 4);
    let p99_off = interactive_p99_ms(&sim.run(&flood).unwrap(), interactive);
    let p99_on = interactive_p99_ms(&sim.run(&paced).unwrap(), interactive);

    // The uncontended baseline: the same interactive stream with no greedy
    // tenants at all (`overload` keeps the last-client convention).
    let solo = WorkloadBuilder::new(0)
        .chunk_size(512 << 10)
        .ops_per_client(0)
        .overload(256 << 10, 32, 0);
    let p99_solo = interactive_p99_ms(&sim.run(&solo).unwrap(), 0);

    assert!(
        p99_on * 5.0 < p99_off,
        "admission must shrink the interactive p99 well past noise: \
         on = {p99_on:.2} ms, off = {p99_off:.2} ms"
    );
    assert!(
        p99_on < 25.0 * p99_solo,
        "throttled overload must keep the interactive p99 within a constant \
         factor of uncontended: on = {p99_on:.2} ms, solo = {p99_solo:.2} ms"
    );
    assert!(
        p99_off > 30.0 * p99_solo,
        "the unthrottled flood must actually overload the interactive \
         tenant: off = {p99_off:.2} ms, solo = {p99_solo:.2} ms"
    );
}

#[test]
fn provider_load_is_balanced_under_round_robin() {
    let mut sim = cluster(16, 8);
    let workload = WorkloadBuilder::new(16)
        .ops_per_client(2)
        .op_size(16 << 20)
        .chunk_size(1 << 20)
        .concurrent_appends();
    let result = sim.run(&workload).unwrap();
    let loads: Vec<u64> = result.provider_write_bytes.values().copied().collect();
    let max = *loads.iter().max().unwrap() as f64;
    let min = *loads.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    assert!(
        max / min < 1.6,
        "round-robin striping must balance provider load"
    );
}
