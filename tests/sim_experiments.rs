//! Integration tests: the simulated-cluster experiment pipeline reproduces
//! the qualitative shapes the paper reports (these are the assertions behind
//! EXPERIMENTS.md, run at reduced scale so the suite stays fast).

use blobseer::sim::{SimulatedCluster, WorkloadBuilder};
use blobseer::types::{ClusterConfig, PlacementPolicy};
use blobseer_bench as bench;

fn cluster(data: usize, meta: usize) -> SimulatedCluster {
    SimulatedCluster::new(ClusterConfig {
        data_providers: data,
        metadata_providers: meta,
        placement: PlacementPolicy::RoundRobin,
        ..ClusterConfig::default()
    })
    .unwrap()
}

#[test]
fn writes_scale_with_concurrency_like_fig_a2() {
    let series = bench::fig_a2_concurrent_rw(&[1, 16], 16);
    for s in &series {
        assert!(
            s.points[1].throughput_mibps > 5.0 * s.points[0].throughput_mibps,
            "{} must scale with clients",
            s.name
        );
    }
}

#[test]
fn metadata_decentralization_shape_like_fig_c1() {
    // 128 KiB chunks keep the workload clearly metadata-bound: since the
    // pipelined schedule (the default) hides metadata latency behind chunk
    // I/O, a single metadata server must be *saturated* — not merely slow —
    // for decentralisation to show, exactly as in the paper's Fig. C1
    // (which also shrinks the chunk size for this experiment).
    let series = bench::fig_c1_metadata_decentralization(&[48], 32, 8, 128);
    let centralized = series[0].final_throughput().unwrap();
    let decentralized = series[1].final_throughput().unwrap();
    assert!(
        decentralized > 1.5 * centralized,
        "DHT metadata ({decentralized:.0}) must beat centralized ({centralized:.0})"
    );
}

#[test]
fn striping_shape_like_fig_c2() {
    let series = bench::fig_c2_provider_sweep(&[2, 32], 32, 16);
    assert!(series.points[1].throughput_mibps > 4.0 * series.points[0].throughput_mibps);
}

#[test]
fn bsfs_vs_hdfs_shape_like_fig_d1() {
    let series = bench::fig_d1_bsfs_vs_hdfs(&[1, 32], 16);
    let bsfs_gain = series[0].points[1].throughput_mibps / series[0].points[0].throughput_mibps;
    let hdfs_gain = series[1].points[1].throughput_mibps / series[1].points[0].throughput_mibps;
    assert!(bsfs_gain > 8.0);
    assert!(hdfs_gain < 1.2);
}

#[test]
fn qos_feedback_shape_like_fig_e1() {
    let (without, with) = bench::fig_e1_qos_stability(24, 8, 10.0);
    assert!(with.aggregated_mibps > 1.1 * without.aggregated_mibps);
}

#[test]
fn replication_shape_like_tab_e2() {
    let rows = bench::tab_e2_replication(&[1, 2], 8);
    assert!(rows[0].write_mibps > rows[1].write_mibps);
    assert!(rows[1].read_availability >= rows[0].read_availability);
}

#[test]
fn provider_load_is_balanced_under_round_robin() {
    let mut sim = cluster(16, 8);
    let workload = WorkloadBuilder::new(16)
        .ops_per_client(2)
        .op_size(16 << 20)
        .chunk_size(1 << 20)
        .concurrent_appends();
    let result = sim.run(&workload).unwrap();
    let loads: Vec<u64> = result.provider_write_bytes.values().copied().collect();
    let max = *loads.iter().max().unwrap() as f64;
    let min = *loads.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    assert!(
        max / min < 1.6,
        "round-robin striping must balance provider load"
    );
}
