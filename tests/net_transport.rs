//! Differential integration tests of the networked transports.
//!
//! The framed RPC protocol must be *observationally identical* to the
//! in-process service boundary: for any operation history, the in-process
//! cluster, the TCP loopback transport and the channel transport (clean and
//! lossy-with-retries) publish the same versions, serve byte-identical
//! reads and account the same `bytes_read` — with the client chunk cache on
//! or off. On top of the differential property, a fault matrix drives every
//! fault kind the channel transport can inject and a zero-copy regression
//! pins the no-flatten contract at the RPC boundary.

use blobseer::core::{BlobClient, Cluster};
use blobseer::net::NetCluster;
use blobseer::types::{BlobConfig, BlobError, ClusterConfig, FaultPlan, Version};
use proptest::prelude::*;

const CS: u64 = 256;

fn config(chunk_cache_bytes: u64) -> ClusterConfig {
    ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        chunk_cache_bytes,
        ..ClusterConfig::default()
    }
}

/// One random client operation over a two-blob namespace.
#[derive(Debug, Clone, Copy)]
enum HistOp {
    Append {
        blob: usize,
        len: u64,
    },
    Write {
        blob: usize,
        offset: u64,
        len: u64,
    },
    /// Read a prefix of some already-published version (picked by index so
    /// the choice is deterministic across stacks).
    Read {
        blob: usize,
        pick: usize,
    },
}

/// The raw tuple the (shrink-less, combinator-less) vendored proptest can
/// sample; [`decode_op`] maps it onto a [`HistOp`].
type RawOp = ((usize, usize), (u64, u64, usize));

fn op_strategy() -> impl Strategy<Value = RawOp> {
    (
        (0usize..3, 0usize..2),
        (0u64..6 * CS, 1u64..3 * CS, 0usize..16),
    )
}

fn decode_op(((kind, blob), (offset, len, pick)): RawOp) -> HistOp {
    match kind {
        0 => HistOp::Append { blob, len },
        1 => HistOp::Write { blob, offset, len },
        _ => HistOp::Read { blob, pick },
    }
}

/// Everything observable about one replay: per-blob version histories, the
/// full contents of every published version, and the client's read
/// accounting.
#[derive(Debug, PartialEq)]
struct Observation {
    versions: Vec<Vec<Version>>,
    contents: Vec<Vec<Vec<u8>>>,
    bytes_read: u64,
}

fn fill(len: u64, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

fn replay(client: &BlobClient, ops: &[HistOp]) -> Observation {
    let blobs = [
        client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap(),
        client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap(),
    ];
    for (i, op) in ops.iter().enumerate() {
        let seed = (i + 1) as u8;
        match *op {
            HistOp::Append { blob, len } => {
                client.append(blobs[blob], fill(len, seed)).unwrap();
            }
            HistOp::Write { blob, offset, len } => {
                client.write(blobs[blob], offset, fill(len, seed)).unwrap();
            }
            HistOp::Read { blob, pick } => {
                let versions = client.published_versions(blobs[blob]).unwrap();
                let version = versions[pick % versions.len()];
                let size = client.size(blobs[blob], Some(version)).unwrap();
                let len = size / 2;
                if len > 0 {
                    client.read(blobs[blob], Some(version), 0, len).unwrap();
                }
            }
        }
    }
    let mut versions = Vec::new();
    let mut contents = Vec::new();
    for &blob in &blobs {
        let published = client.published_versions(blob).unwrap();
        contents.push(
            published
                .iter()
                .map(|&v| client.read_all(blob, Some(v)).unwrap())
                .collect(),
        );
        versions.push(published);
    }
    Observation {
        versions,
        contents,
        bytes_read: client.stats().bytes_read,
    }
}

/// A gently lossy plan every op must converge through (the RPC layer's
/// retries mask it).
fn mild_faults() -> FaultPlan {
    FaultPlan {
        seed: 42,
        drop: 0.02,
        duplicate: 0.05,
        truncate: 0.02,
        delay: 0.1,
        delay_us: 100,
        ..FaultPlan::none()
    }
}

fn lossy_config(chunk_cache_bytes: u64) -> ClusterConfig {
    ClusterConfig {
        io_timeout_ms: 200, // lost frames cost one timeout per retry; keep it quick
        ..config(chunk_cache_bytes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The transport differential: every stack observes the same histories.
    #[test]
    fn prop_transports_are_observationally_identical(
        raw_ops in proptest::collection::vec(op_strategy(), 1..8)
    ) {
        let ops: Vec<HistOp> = raw_ops.into_iter().map(decode_op).collect();
        for cache in [0u64, 1 << 20] {
            let reference = {
                let cluster = Cluster::new(config(cache)).unwrap();
                replay(&cluster.client(), &ops)
            };
            let tcp = {
                let cluster = NetCluster::new_tcp(config(cache)).unwrap();
                replay(&cluster.client(), &ops)
            };
            prop_assert_eq!(&reference, &tcp, "tcp loopback diverged (cache={})", cache);
            let channel = {
                let cluster = NetCluster::new_channel(config(cache), FaultPlan::none()).unwrap();
                replay(&cluster.client(), &ops)
            };
            prop_assert_eq!(&reference, &channel, "channel diverged (cache={})", cache);
            let lossy = {
                let cluster =
                    NetCluster::new_channel(lossy_config(cache), mild_faults()).unwrap();
                replay(&cluster.client(), &ops)
            };
            prop_assert_eq!(
                &reference, &lossy,
                "lossy channel with retries diverged (cache={})", cache
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection matrix
// ---------------------------------------------------------------------------

/// Runs a write/overwrite/read workload under one fault plan and asserts
/// full convergence: every op succeeds (masked by retries and replica
/// rotation), every published version stays readable and byte-correct.
fn converges_under(plan: FaultPlan) {
    let cluster = NetCluster::new_channel(lossy_config(0), plan).unwrap();
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap();
    let base = fill(16 * CS, 1);
    client.append(blob, &base).unwrap();
    let patch = fill(3 * CS + 17, 2);
    client.write(blob, 2 * CS + 9, &patch).unwrap();
    let mut expected = base.clone();
    expected[(2 * CS + 9) as usize..(2 * CS + 9) as usize + patch.len()].copy_from_slice(&patch);
    assert_eq!(client.read_all(blob, None).unwrap(), expected);
    assert_eq!(client.read_all(blob, Some(Version(1))).unwrap(), base);
    assert_eq!(
        client.published_versions(blob).unwrap(),
        vec![Version(0), Version(1), Version(2)],
        "no version may be torn or lost"
    );
}

#[test]
fn dropped_frames_are_masked_by_retries() {
    converges_under(FaultPlan {
        seed: 7,
        drop: 0.05,
        ..FaultPlan::none()
    });
}

#[test]
fn truncated_frames_are_detected_and_retried() {
    converges_under(FaultPlan {
        seed: 8,
        truncate: 0.2,
        ..FaultPlan::none()
    });
}

#[test]
fn duplicated_frames_are_idempotent() {
    converges_under(FaultPlan {
        seed: 9,
        duplicate: 0.4,
        ..FaultPlan::none()
    });
}

#[test]
fn mid_stream_disconnects_reconnect_and_converge() {
    converges_under(FaultPlan {
        seed: 10,
        disconnect: 0.04,
        ..FaultPlan::none()
    });
}

#[test]
fn stalled_frames_time_out_and_retry() {
    converges_under(FaultPlan {
        seed: 11,
        stall: 0.04,
        ..FaultPlan::none()
    });
}

#[test]
fn slow_endpoints_within_the_timeout_only_cost_time() {
    converges_under(FaultPlan {
        seed: 12,
        delay: 0.5,
        delay_us: 300,
        ..FaultPlan::none()
    });
}

#[test]
fn a_fully_hung_network_fails_operations_cleanly_within_bounded_time() {
    // Every frame is swallowed: `io_timeout` (threaded through both the RPC
    // waits and the transfer-pool joins) must fail the op — quickly, with a
    // retryable transport error, no deadlock, no torn version. The blob is
    // created over a healthy network first (with the version manager on the
    // wire, *nothing* succeeds at stall 1.0), then the plan is swapped to a
    // total stall under the append.
    let mut cfg = config(0);
    cfg.io_timeout_ms = 100;
    let cluster = NetCluster::new_channel(
        cfg,
        FaultPlan {
            seed: 13,
            ..FaultPlan::none()
        },
    )
    .unwrap();
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    let faults = cluster.fault_state().unwrap();
    faults.set_plan(FaultPlan {
        seed: 13,
        stall: 1.0,
        ..FaultPlan::none()
    });
    let started = std::time::Instant::now();
    let err = client.append(blob, fill(4 * CS, 1)).unwrap_err();
    assert!(
        matches!(
            err,
            BlobError::Transport(_) | BlobError::InsufficientProviders { .. }
        ),
        "expected a clean retryable failure, got {err:?}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "a hung network must fail ops, not wedge them"
    );
    // With the version manager on the wire, the total stall fails the
    // append at ticket assignment — before any version is claimed, so there
    // is nothing to repair (`failed_writes` counts post-claim failures).
    // No torn state once the network heals: whatever the append claimed
    // before failing was aborted/repaired, so the blob serves reads and
    // later writers are never blocked by the failure.
    faults.set_plan(FaultPlan::none());
    let published = client.published_versions(blob).unwrap();
    assert_eq!(published[0], Version(0));
    for version in published {
        let bytes = client.read_all(blob, Some(version)).unwrap();
        assert_eq!(
            bytes.len() as u64,
            client.size(blob, Some(version)).unwrap()
        );
    }
    let data = fill(2 * CS, 7);
    let healed = client.append(blob, &data).unwrap();
    let size = client.size(blob, Some(healed)).unwrap();
    assert_eq!(
        client
            .read(blob, Some(healed), size - 2 * CS, 2 * CS)
            .unwrap(),
        data,
        "a later writer reads back its bytes after the hung-network failure"
    );
}

// ---------------------------------------------------------------------------
// Zero-copy regression
// ---------------------------------------------------------------------------

#[test]
fn aligned_writes_over_loopback_copy_nothing_and_chunks_materialise_once() {
    // Chunks big enough that frame/metadata overhead is noise next to the
    // payload, so the wire byte counts below isolate payload movement.
    const BIG: u64 = 64 * 1024;
    let cluster = NetCluster::new_tcp(config(0)).unwrap();
    let writer = cluster.client();
    let blob = writer
        .create_blob(BlobConfig::new(BIG, 1).unwrap())
        .unwrap();

    // Chunk-aligned, chunk-multiple append: every slot ships as a
    // refcounted sub-slice of the caller's buffer, through the vectored
    // frame writer, onto the socket — zero client-side payload copies.
    let chunks = 8u64;
    writer.append(blob, fill(chunks * BIG, 3)).unwrap();
    let wstats = writer.stats();
    assert_eq!(
        wstats.payload_bytes_copied, 0,
        "the RPC boundary silently reintroduced write-path copies"
    );
    assert!(wstats.frames_sent > 0);
    assert!(
        wstats.bytes_on_wire >= chunks * BIG,
        "the payload must actually have crossed the wire"
    );
    let wire_metrics = writer.transport_metrics().unwrap().snapshot();
    assert_eq!(
        wire_metrics.chunk_rx_payload_bytes, 0,
        "a writer fetches nothing"
    );

    // A fresh reader fetches every chunk exactly once: one receive-side
    // materialisation per chunk — the response frame's buffer — and no
    // other copy before the bytes land in the BlobSlice.
    let reader = cluster.client();
    let slice = reader.read_all_bytes(blob, None).unwrap();
    assert_eq!(slice.to_vec(), fill(chunks * BIG, 3));
    let rstats = reader.stats();
    assert_eq!(rstats.chunks_read, chunks);
    let rx = reader.transport_metrics().unwrap().snapshot();
    assert_eq!(
        rx.chunk_rx_payload_bytes,
        chunks * BIG,
        "each fetched chunk must materialise exactly once on receive"
    );
    // The payload crossed the reader's wire once (plus framing and the
    // metadata plane): well under twice the payload, so nothing was
    // flattened or double-buffered on the way.
    assert!(rx.bytes_on_wire >= chunks * BIG);
    assert!(
        rx.bytes_on_wire < 2 * chunks * BIG,
        "read-path wire traffic {} suggests an extra payload copy",
        rx.bytes_on_wire
    );
    // Re-reading through the chunk cache adds no new materialisations.
    let cached_cluster = NetCluster::new_tcp(config(4 << 20)).unwrap();
    let cached = cached_cluster.client();
    let blob2 = cached
        .create_blob(BlobConfig::new(BIG, 1).unwrap())
        .unwrap();
    cached.append(blob2, fill(chunks * BIG, 4)).unwrap();
    cached.read_all(blob2, None).unwrap();
    assert_eq!(
        cached
            .transport_metrics()
            .unwrap()
            .snapshot()
            .chunk_rx_payload_bytes,
        0,
        "write-through cache hits never touch the wire"
    );
}
