//! Integration tests: the BSFS file system and the MapReduce engine running
//! end-to-end over a real in-process BlobSeer cluster, compared with the
//! HDFS-like baseline.

use blobseer::bsfs::Bsfs;
use blobseer::core::Cluster;
use blobseer::hdfs::HdfsLikeFs;
use blobseer::mapreduce::{wordcount_job, BsfsStorage, HdfsStorage, JobStorage, MapReduceEngine};
use blobseer::types::{BlobConfig, BlobError, ClusterConfig};
use std::sync::Arc;

fn bsfs() -> Arc<Bsfs> {
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        ..ClusterConfig::default()
    })
    .unwrap();
    Arc::new(
        Bsfs::new(
            Arc::new(cluster.client()),
            BlobConfig::new(4096, 1).unwrap(),
        )
        .unwrap(),
    )
}

#[test]
fn bsfs_supports_concurrent_appenders_to_the_same_file() {
    let fs = bsfs();
    fs.create_file("/shared.log").unwrap();
    std::thread::scope(|scope| {
        for w in 0..6u8 {
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                for i in 0..10u8 {
                    fs.append("/shared.log", format!("w{w}r{i};").as_bytes())
                        .unwrap();
                }
            });
        }
    });
    let body = String::from_utf8(fs.read_file("/shared.log").unwrap()).unwrap();
    assert_eq!(body.matches(';').count(), 60, "no append may be lost");
}

#[test]
fn hdfs_baseline_rejects_what_bsfs_allows() {
    // The functional difference the paper exploits: HDFS-like files have a
    // single writer and no random writes; BSFS supports both.
    let fs = bsfs();
    fs.create_file("/f").unwrap();
    fs.append("/f", b"0123456789").unwrap();
    fs.write_at("/f", 4, b"XY").unwrap();
    assert_eq!(fs.read_file("/f").unwrap(), b"0123XY6789");

    let hdfs = Arc::new(HdfsLikeFs::new(4, 1024, 1).unwrap());
    hdfs.create_file("/f").unwrap();
    hdfs.append("/f", b"0123456789").unwrap();
    assert!(matches!(
        hdfs.write_at("/f", 4, b"XY"),
        Err(BlobError::WriterConflict(_))
    ));
    let _writer = hdfs.open_for_append("/f").unwrap();
    assert!(hdfs.open_for_append("/f").is_err());
}

#[test]
fn identical_wordcount_results_on_both_backends() {
    let corpus: String = (0..500)
        .map(|i| {
            format!(
                "alpha beta {} gamma\n",
                if i % 2 == 0 { "delta" } else { "epsilon" }
            )
        })
        .collect();

    let run = |storage: Arc<dyn JobStorage>| -> Vec<String> {
        storage.create_file("/in/c.txt").unwrap();
        storage.append("/in/c.txt", corpus.as_bytes()).unwrap();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 4);
        let report = engine
            .run(&wordcount_job(vec!["/in/c.txt".into()], "/out", 3, 2048))
            .unwrap();
        let mut lines: Vec<String> = report
            .outputs
            .iter()
            .flat_map(|p| {
                String::from_utf8(storage.read_file(p).unwrap())
                    .unwrap()
                    .lines()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        lines
    };

    let bsfs_counts = run(Arc::new(BsfsStorage::new(bsfs())));
    let hdfs_counts = run(Arc::new(HdfsStorage::new(Arc::new(
        HdfsLikeFs::new(4, 4096, 1).unwrap(),
    ))));
    assert_eq!(bsfs_counts, hdfs_counts);
    assert!(bsfs_counts.contains(&"alpha\t500".to_string()));
    assert!(bsfs_counts.contains(&"delta\t250".to_string()));
}

#[test]
fn streaming_writer_reader_handle_large_files() {
    let fs = bsfs();
    fs.create_dir_all("/data").unwrap();
    fs.create_file("/data/big").unwrap();
    let mut writer = fs.writer("/data/big", 16 << 10).unwrap();
    for i in 0..2_000u32 {
        writer.write(format!("{i:08}\n").as_bytes()).unwrap();
    }
    writer.flush().unwrap();
    assert_eq!(fs.file_size("/data/big").unwrap(), 2_000 * 9);

    let mut reader = fs.reader("/data/big", 8 << 10).unwrap();
    let mut count = 0u32;
    while let Some(line) = reader.read_line().unwrap() {
        assert_eq!(line.trim().parse::<u32>().unwrap(), count);
        count += 1;
    }
    assert_eq!(count, 2_000);
    assert!(reader.fetches() < 40, "prefetching must batch the reads");
}
