//! Overload admission on a real cluster: greedy tenants flooding the shared
//! transfer pool next to one interactive tenant. The virtual-time latency
//! story (bounded interactive p99 with the throttle on, unbounded off) lives
//! in `sim_experiments::admission_window_bounds_the_interactive_tenants_tail_latency`;
//! here the real [`AdmissionController`] must enforce the mechanism those
//! numbers rest on — per-client in-flight caps, greedy tenants queueing
//! behind themselves, QoS pressure shrinking the budget — under actual
//! thread concurrency.

use blobseer::core::Cluster;
use blobseer::net::NetCluster;
use blobseer::types::{BlobConfig, ClusterConfig, FaultPlan, PlacementPolicy, Version};

const CS: u64 = 4 << 10;

fn config(admission_limit: usize) -> ClusterConfig {
    ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        transfer_workers: 4,
        admission_limit,
        // Cold data plane: cache hits would bypass the transfer pool and
        // with it the admission gate this test is about.
        chunk_cache_bytes: 0,
        ..ClusterConfig::default()
    }
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

#[test]
fn greedy_tenants_queue_behind_themselves_never_past_the_cap() {
    let cluster = Cluster::new(config(2)).unwrap();
    let admission = cluster.admission().expect("admission configured").clone();
    let interactive = cluster.client();
    let blob = interactive
        .create_blob(BlobConfig::new(CS, 1).unwrap())
        .unwrap();

    // Three greedy tenants each append 32-chunk bursts while the
    // interactive tenant keeps issuing single-chunk appends.
    std::thread::scope(|scope| {
        for g in 0..3u8 {
            let greedy = cluster.client();
            scope.spawn(move || {
                for burst in 0..3u8 {
                    let data = pattern(32 * CS as usize, g.wrapping_mul(7) + burst);
                    greedy.append(blob, &data).unwrap();
                }
            });
        }
        for i in 0..8u8 {
            interactive.append(blob, pattern(CS as usize, i)).unwrap();
        }
    });

    let stats = admission.stats();
    assert!(
        stats.peak_in_flight <= 2,
        "no tenant may ever exceed its admission budget: {stats:?}"
    );
    assert!(
        stats.throttled_waits > 0,
        "a 32-chunk burst against a budget of 2 must block at submission: {stats:?}"
    );
    // A permit covers one pool task — one store group per distinct replica
    // set. Round-robin striping of a 32-chunk burst over 4 providers makes
    // 4 groups per burst; each interactive single-chunk append is 1 group.
    assert_eq!(stats.admitted, 9 * 4 + 8, "{stats:?}");

    // The flood never corrupts anything: all versions published, the full
    // history reads back.
    let latest = interactive.read_all(blob, None).unwrap();
    assert_eq!(latest.len(), (9 * 32 + 8) * CS as usize);
    // Publication order under concurrency is a race, but every version is
    // one whole append: either a greedy burst or an interactive chunk.
    let first = interactive.read_all(blob, Some(Version(1))).unwrap().len();
    assert!(
        first == 32 * CS as usize || first == CS as usize,
        "version 1 must be exactly one append, got {first} bytes"
    );
}

#[test]
fn networked_clients_share_the_same_admission_gate() {
    let cluster = NetCluster::new_channel(config(3), FaultPlan::none()).unwrap();
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    let data = pattern(24 * CS as usize, 5);
    client.append(blob, &data).unwrap();
    assert_eq!(client.read_all(blob, None).unwrap(), data);

    let stats = cluster.inner().admission().unwrap().stats();
    assert!(stats.peak_in_flight <= 3, "{stats:?}");
    // The store side admits per group, but the uncached read fetches each
    // of the 24 chunks through its own permit.
    assert!(
        stats.admitted >= 24,
        "transfers crossing the wire still take permits: {stats:?}"
    );
}

#[test]
fn qos_pressure_shrinks_the_effective_budget_on_the_maintenance_tick() {
    let cluster = Cluster::new(ClusterConfig {
        placement: PlacementPolicy::QosAware,
        qos_states: 3,
        qos_horizon: 2,
        ..config(8)
    })
    .unwrap();
    let admission = cluster.admission().unwrap().clone();
    assert!(cluster.qos_controller().is_some(), "QosAware turns QoS on");
    assert_eq!(admission.effective_limit(), 8);

    // Generate provider traffic so the monitoring windows carry signal,
    // then drive the maintenance tick the daemon's lifecycle thread runs:
    // sample windows, refit the behaviour model, feed scores to placement
    // and pressure to admission.
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    for i in 0..4u8 {
        client.append(blob, pattern(8 * CS as usize, i)).unwrap();
        cluster.run_maintenance();
    }
    // A healthy, evenly loaded fleet must not be throttled...
    assert_eq!(
        admission.effective_limit(),
        8,
        "healthy providers keep the full budget"
    );
    // ...while QoS pressure (what the feedback loop applies when providers
    // misbehave) shrinks the budget without ever reaching zero.
    admission.set_pressure(0.25);
    assert_eq!(admission.effective_limit(), 2);
    admission.set_pressure(0.0);
    assert_eq!(admission.effective_limit(), 1, "liveness floor");
    admission.set_pressure(1.0);
    assert_eq!(admission.effective_limit(), 8);
}
