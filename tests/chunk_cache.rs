//! Differential tests of the zero-copy data plane and the client chunk
//! cache: cached reads must be byte-identical to uncached reads across
//! random version histories and cache budgets (including budgets small
//! enough to force eviction), `read` must equal `read_bytes` flattened, and
//! both properties must hold while writers are publishing concurrently.

use blobseer::core::Cluster;
use blobseer::types::{BlobConfig, ClusterConfig};
use proptest::prelude::*;

const CS: u64 = 256;

fn cluster_with_cache(cache_bytes: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        data_providers: 4,
        metadata_providers: 2,
        chunk_cache_bytes: cache_bytes,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Replays a random (unaligned) write history and returns every published
/// version's contents, read twice: the first pass fills any cache, the
/// second pass must observe identical bytes from it. Along the way, every
/// snapshot is also read through `read_bytes` and compared flattened.
fn replay(cache_bytes: u64, ops: &[(u64, u64, u8)]) -> Vec<Vec<u8>> {
    let cluster = cluster_with_cache(cache_bytes);
    let client = cluster.client();
    let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    for &(slot, len_slots, seed) in ops {
        let len = len_slots * CS + u64::from(seed) % CS;
        let data: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect();
        client
            .write(blob, slot * CS + u64::from(seed) % 11, data)
            .unwrap();
    }
    let versions = client.published_versions(blob).unwrap();
    let mut contents = Vec::with_capacity(versions.len());
    for &v in &versions {
        let flat = client.read_all(blob, Some(v)).unwrap();
        let slice = client.read_all_bytes(blob, Some(v)).unwrap();
        assert_eq!(flat, slice.to_vec(), "read and read_bytes must agree");
        contents.push(flat);
    }
    for (expected, &v) in contents.iter().zip(&versions) {
        assert_eq!(
            &client.read_all(blob, Some(v)).unwrap(),
            expected,
            "cache-hot re-read of {v:?} diverged"
        );
    }
    contents
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The chunk cache is an optimisation, not a semantic change: for any
    /// write history and any cache budget (including ones small enough to
    /// evict constantly), every published snapshot reads byte-identically
    /// with and without the cache.
    #[test]
    fn prop_cached_and_uncached_reads_agree(
        ops in proptest::collection::vec((0u64..12, 1u64..4, 1u8..255), 1..6),
        budget_chunks in 1u64..64,
    ) {
        let uncached = replay(0, &ops);
        let cached = replay(budget_chunks * CS, &ops);
        prop_assert_eq!(uncached, cached);
    }

    /// `read` is `read_bytes` flattened for arbitrary sub-ranges, not just
    /// whole snapshots (holes, partial chunks, segment boundaries).
    #[test]
    fn prop_read_equals_read_bytes_on_random_ranges(
        ops in proptest::collection::vec((0u64..8, 1u64..3, 1u8..255), 1..4),
        offset in 0u64..(4 * CS),
        len in 0u64..(4 * CS),
    ) {
        let cluster = cluster_with_cache(1 << 20);
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        for &(slot, len_slots, seed) in &ops {
            let data: Vec<u8> = (0..len_slots * CS).map(|i| (i as u8) ^ seed).collect();
            client.write(blob, slot * CS, data).unwrap();
        }
        let size = client.size(blob, None).unwrap();
        // Clamp the window into bounds (reads past the size are rejected).
        let offset = offset.min(size);
        let len = len.min(size - offset);
        let flat = client.read(blob, None, offset, len).unwrap();
        let slice = client.read_bytes(blob, None, offset, len).unwrap();
        prop_assert_eq!(slice.len(), len);
        prop_assert_eq!(&flat, &slice.to_vec());
        // copy_range_to agrees with the flatten on a sub-window too.
        let mid = len / 2;
        let mut window = vec![0u8; (len - mid) as usize];
        slice.copy_range_to(mid, &mut window);
        prop_assert_eq!(&flat[mid as usize..], &window[..]);
    }
}

#[test]
fn cached_reads_agree_with_uncached_under_concurrent_writers() {
    // Writers keep publishing new snapshots while two readers — one with a
    // cache, one without — pin published versions and compare both read
    // APIs byte for byte. Versioning guarantees a pinned snapshot never
    // changes, so the cached reader must never observe a divergence no
    // matter how the writers race it.
    let cluster = Cluster::new(ClusterConfig {
        data_providers: 8,
        metadata_providers: 4,
        chunk_cache_bytes: 1 << 20,
        ..ClusterConfig::default()
    })
    .unwrap();
    let setup = cluster.client();
    let blob = setup.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
    setup.append(blob, vec![1u8; 4 * CS as usize]).unwrap();

    std::thread::scope(|scope| {
        for w in 0..3u8 {
            let client = cluster.client();
            scope.spawn(move || {
                for i in 0..12 {
                    let fill = 10 + w * 12 + i;
                    client.append(blob, vec![fill; (CS + 13) as usize]).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let cached = cluster.client();
            let uncached = cluster.client().with_chunk_cache(None);
            scope.spawn(move || {
                for _ in 0..25 {
                    let versions = cached.published_versions(blob).unwrap();
                    let &v = versions.last().unwrap();
                    let a = cached.read_all(blob, Some(v)).unwrap();
                    let b = cached.read_all_bytes(blob, Some(v)).unwrap();
                    let c = uncached.read_all(blob, Some(v)).unwrap();
                    assert_eq!(a, b.to_vec(), "read != read_bytes under writers");
                    assert_eq!(a, c, "cached != uncached under writers");
                    // Re-read the same pinned version: the cache-hot pass
                    // must be identical.
                    assert_eq!(a, cached.read_all(blob, Some(v)).unwrap());
                }
            });
        }
    });
}
