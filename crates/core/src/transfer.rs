//! The shared chunk-transfer pool.
//!
//! The first prototype spawned up to eight fresh OS threads per read/write
//! operation (`std::thread::scope` inside the client), which put thread
//! creation and teardown on every hot path and let N concurrent clients
//! burst into `8·N` threads. A [`TransferPool`] replaces that: a fixed set
//! of worker threads owned by the cluster, fed through a channel, shared by
//! every client of the deployment. Clients submit a batch of independent
//! transfer tasks and block until all of them finish; parallelism is bounded
//! by the pool size no matter how many clients are active.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters of the pool's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferPoolStats {
    /// Tasks executed on a pool worker.
    pub tasks_run: u64,
    /// Tasks executed inline on the caller thread (single-task batches and
    /// zero-worker pools skip the queue entirely).
    pub tasks_inline: u64,
    /// Submitted tasks that panicked.
    pub tasks_panicked: u64,
}

struct PoolShared {
    tasks_run: AtomicU64,
    tasks_inline: AtomicU64,
    tasks_panicked: AtomicU64,
}

/// A fixed-size worker pool for parallel chunk pushes and fetches.
pub struct TransferPool {
    /// `None` when the pool was built with zero workers (fully inline mode).
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl TransferPool {
    /// Starts a pool with `workers` threads. A pool of zero workers is
    /// valid: every batch then runs inline on the submitting thread (useful
    /// for debugging and deterministic tests).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            tasks_run: AtomicU64::new(0),
            tasks_inline: AtomicU64::new(0),
            tasks_panicked: AtomicU64::new(0),
        });
        if workers == 0 {
            return TransferPool {
                sender: None,
                workers: Vec::new(),
                shared,
            };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("blobseer-transfer-{i}"))
                    .spawn(move || Self::worker_loop(&receiver, &shared))
                    .expect("cannot spawn transfer worker")
            })
            .collect();
        TransferPool {
            sender: Some(sender),
            workers: handles,
            shared,
        }
    }

    fn worker_loop(receiver: &Mutex<Receiver<Job>>, shared: &PoolShared) {
        loop {
            // Take the next job while holding the receiver lock, then run it
            // with the lock released so workers actually execute in parallel.
            let job = {
                let rx = receiver.lock().unwrap_or_else(|e| e.into_inner());
                rx.recv()
            };
            let Ok(job) = job else {
                return; // every sender dropped: the pool is shutting down
            };
            shared.tasks_run.fetch_add(1, Ordering::Relaxed);
            // A panicking task must not kill the worker: the panic is
            // reported to the submitting client (its result slot stays
            // empty), not to unrelated clients sharing the pool.
            if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.tasks_panicked.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Lifetime activity counters.
    #[must_use]
    pub fn stats(&self) -> TransferPoolStats {
        TransferPoolStats {
            tasks_run: self.shared.tasks_run.load(Ordering::Relaxed),
            tasks_inline: self.shared.tasks_inline.load(Ordering::Relaxed),
            tasks_panicked: self.shared.tasks_panicked.load(Ordering::Relaxed),
        }
    }

    /// Runs every task (in parallel on the pool workers) and returns their
    /// results in task order. Blocks until the whole batch is done.
    ///
    /// Single-task batches and zero-worker pools run inline on the calling
    /// thread: the queue only pays off when there is actual parallelism.
    ///
    /// # Panics
    ///
    /// If a task panics on a worker, the batch panics here (mirroring the
    /// `join().expect(...)` of the old per-operation scoped threads).
    pub fn execute<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some(sender) = &self.sender else {
            return self.run_inline(tasks);
        };
        if tasks.len() <= 1 {
            return self.run_inline(tasks);
        }
        let count = tasks.len();
        let (tx, rx) = channel::<(usize, T)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            let job: Job = Box::new(move || {
                let result = task();
                // The receiver only disappears if the submitting thread
                // panicked; dropping the result is the right fallback.
                let _ = tx.send((index, result));
            });
            sender.send(job).expect("transfer pool workers are gone");
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (index, result) in rx {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("a transfer task panicked"))
            .collect()
    }

    fn run_inline<T, F: FnOnce() -> T>(&self, tasks: Vec<F>) -> Vec<T> {
        self.shared
            .tasks_inline
            .fetch_add(tasks.len() as u64, Ordering::Relaxed);
        tasks.into_iter().map(|task| task()).collect()
    }
}

impl Drop for TransferPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail and exit.
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TransferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferPool")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = TransferPool::new(4);
        let tasks: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    // Stagger finish times so completion order differs from
                    // submission order.
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
                    i * 2
                }
            })
            .collect();
        let results = pool.execute(tasks);
        assert_eq!(results, (0..32u64).map(|i| i * 2).collect::<Vec<_>>());
        assert!(pool.stats().tasks_run >= 32);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = TransferPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        let results = pool.execute((0..8).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        assert_eq!(pool.stats().tasks_inline, 8);
        assert_eq!(pool.stats().tasks_run, 0);
    }

    #[test]
    fn single_task_batches_skip_the_queue() {
        let pool = TransferPool::new(2);
        assert_eq!(pool.execute(vec![|| 41 + 1]), vec![42]);
        assert_eq!(pool.stats().tasks_inline, 1);
        assert_eq!(pool.stats().tasks_run, 0);
    }

    #[test]
    fn concurrent_batches_share_the_workers() {
        let pool = Arc::new(TransferPool::new(4));
        let mut clients = Vec::new();
        for c in 0..8u64 {
            let pool = Arc::clone(&pool);
            clients.push(std::thread::spawn(move || {
                for round in 0..10u64 {
                    let tasks: Vec<_> = (0..4u64)
                        .map(|i| move || c * 1000 + round * 10 + i)
                        .collect();
                    let expected: Vec<u64> = (0..4u64).map(|i| c * 1000 + round * 10 + i).collect();
                    assert_eq!(pool.execute(tasks), expected);
                }
            }));
        }
        for client in clients {
            client.join().unwrap();
        }
    }

    #[test]
    fn a_panicking_task_fails_the_batch_but_not_the_pool() {
        let pool = TransferPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute(
                (0..4)
                    .map(|i| {
                        move || {
                            assert!(i != 2, "task 2 blows up");
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(
            outcome.is_err(),
            "the submitting batch must observe the panic"
        );
        // The pool survives and keeps serving.
        assert_eq!(pool.execute(vec![|| 1, || 2]), vec![1, 2]);
        // The worker's bookkeeping races with the caller observing the
        // failed batch; give it a moment.
        for _ in 0..100 {
            if pool.stats().tasks_panicked == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.stats().tasks_panicked, 1);
    }

    #[test]
    fn drop_joins_all_workers() {
        static RUNNING: AtomicUsize = AtomicUsize::new(0);
        let pool = TransferPool::new(3);
        pool.execute(
            (0..6)
                .map(|_| {
                    || {
                        RUNNING.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect::<Vec<_>>(),
        );
        drop(pool);
        assert_eq!(RUNNING.load(Ordering::SeqCst), 6);
    }
}
