//! The shared chunk-transfer scheduler.
//!
//! The first prototype spawned up to eight fresh OS threads per read/write
//! operation (`std::thread::scope` inside the client), which put thread
//! creation and teardown on every hot path and let N concurrent clients
//! burst into `8·N` threads. A [`TransferPool`] replaces that: a fixed set
//! of worker threads owned by the cluster, fed through a channel, shared by
//! every client of the deployment.
//!
//! The pool is a *submission/completion* scheduler, not a batch barrier:
//! [`TransferPool::submit`] enqueues one task and immediately returns a
//! [`Completion`] handle, so a client can keep producing work — assembling
//! the next payload, descending the next metadata tree level, weaving
//! metadata — while earlier transfers are still in flight, and join the
//! completions only where the protocol actually requires the data to have
//! moved (before publication, before assembling the read buffer). The
//! barrier-style [`TransferPool::execute`] survives as a thin convenience
//! built on top of submission.
//!
//! Tasks may be tagged with the data provider they talk to
//! ([`TransferPool::submit_for`]); the pool keeps a live per-provider
//! in-flight gauge that the cluster heartbeat folds into
//! `ProviderManager::report_load`, so placement decisions see the transfer
//! load that is on the wire *right now*, not just what the last completed
//! heartbeat stored.

use blobseer_types::{BlobError, ProviderId, Result};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters of the pool's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferPoolStats {
    /// Tasks executed on a pool worker.
    pub tasks_run: u64,
    /// Tasks executed inline on the caller thread (single-task batches and
    /// zero-worker pools skip the queue entirely).
    pub tasks_inline: u64,
    /// Submitted tasks that panicked.
    pub tasks_panicked: u64,
}

struct PoolShared {
    tasks_run: AtomicU64,
    tasks_inline: AtomicU64,
    tasks_panicked: AtomicU64,
    /// Live per-provider in-flight transfer counts (tagged submissions
    /// only). Entries are removed when they reach zero so the map stays as
    /// small as the set of providers with traffic on the wire.
    in_flight: Mutex<HashMap<ProviderId, u64>>,
}

impl PoolShared {
    fn transfer_started(&self, provider: ProviderId) {
        *self
            .in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(provider)
            .or_insert(0) += 1;
    }

    fn transfer_finished(&self, provider: ProviderId) {
        let mut map = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(count) = map.get_mut(&provider) {
            *count -= 1;
            if *count == 0 {
                map.remove(&provider);
            }
        }
    }
}

/// Decrements the in-flight gauge when dropped, so a panicking task still
/// releases its slot.
struct InFlightGuard {
    shared: Arc<PoolShared>,
    provider: ProviderId,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.shared.transfer_finished(self.provider);
    }
}

/// Completion handle of one submitted transfer task.
///
/// [`Completion::join`] blocks until the task has run and yields its result.
/// Dropping the handle without joining is allowed: the task still runs (and
/// still updates the in-flight gauge), its result is discarded.
#[must_use = "a dropped completion silently discards the task's result"]
pub struct Completion<T> {
    inner: CompletionInner<T>,
}

enum CompletionInner<T> {
    /// The result was available at submission time (chunk-cache hits): no
    /// channel, no allocation — the hot hit path hands the value through.
    Ready(T),
    Pending(Receiver<T>),
}

impl<T> Completion<T> {
    /// An already-fulfilled completion holding `value`. Used where a result
    /// is available without any transfer at all (chunk-cache hits), so
    /// submission-site code can treat cached and fetched chunks uniformly.
    pub fn ready(value: T) -> Self {
        Completion {
            inner: CompletionInner::Ready(value),
        }
    }

    fn pending(rx: Receiver<T>) -> Self {
        Completion {
            inner: CompletionInner::Pending(rx),
        }
    }

    /// Waits for the task to finish and returns its result.
    ///
    /// # Panics
    ///
    /// If the task panicked on a worker (mirroring the `join().expect(...)`
    /// of the old per-operation scoped threads).
    pub fn join(self) -> T {
        match self.inner {
            CompletionInner::Ready(value) => value,
            CompletionInner::Pending(rx) => rx.recv().expect("a transfer task panicked"),
        }
    }

    /// Waits at most `timeout` (forever when `None`) for the task to finish.
    /// Returns `None` on timeout — the task itself keeps running on its
    /// worker (threads cannot be cancelled); only the *waiter* gives up, so
    /// a hung endpoint fails the waiting operation instead of wedging it.
    ///
    /// # Panics
    ///
    /// If the task panicked on a worker, exactly like [`Completion::join`].
    pub fn join_for(self, timeout: Option<Duration>) -> Option<T> {
        match self.inner {
            CompletionInner::Ready(value) => Some(value),
            CompletionInner::Pending(rx) => match timeout {
                None => Some(rx.recv().expect("a transfer task panicked")),
                Some(timeout) => match rx.recv_timeout(timeout) {
                    Ok(value) => Some(value),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => panic!("a transfer task panicked"),
                },
            },
        }
    }
}

/// A fixed-size worker pool for parallel chunk pushes and fetches.
pub struct TransferPool {
    /// `None` when the pool was built with zero workers (fully inline mode).
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<PoolShared>,
    /// Bound on how long [`TransferPool::join_within`] waits for one
    /// completion (`None` = forever). Threaded from the deployment's
    /// `io_timeout` so a transfer stuck on a hung endpoint fails the waiting
    /// operation instead of blocking the scheduler forever.
    join_timeout: Option<Duration>,
}

impl TransferPool {
    /// Starts a pool with `workers` threads. A pool of zero workers is
    /// valid: every task then runs inline at submission time (useful for
    /// debugging and deterministic tests).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            tasks_run: AtomicU64::new(0),
            tasks_inline: AtomicU64::new(0),
            tasks_panicked: AtomicU64::new(0),
            in_flight: Mutex::new(HashMap::new()),
        });
        if workers == 0 {
            return TransferPool {
                sender: None,
                workers: Vec::new(),
                shared,
                join_timeout: None,
            };
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("blobseer-transfer-{i}"))
                    .spawn(move || Self::worker_loop(&receiver, &shared))
                    .expect("cannot spawn transfer worker")
            })
            .collect();
        TransferPool {
            sender: Some(sender),
            workers: handles,
            shared,
            join_timeout: None,
        }
    }

    /// Sets the bound [`TransferPool::join_within`] waits for one completion
    /// (`None` = wait forever, the default).
    #[must_use]
    pub fn with_join_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.join_timeout = timeout;
        self
    }

    /// The configured join timeout, if any.
    #[must_use]
    pub fn join_timeout(&self) -> Option<Duration> {
        self.join_timeout
    }

    /// Joins one completion under the pool's configured timeout. A task that
    /// does not complete in time yields [`BlobError::Transport`] — the
    /// retryable error class — while the task itself keeps running on its
    /// worker (its eventual result is discarded). Zero-worker pools and
    /// cache-hit completions are always ready, so they never time out.
    ///
    /// # Panics
    ///
    /// If the task panicked on a worker, exactly like [`Completion::join`].
    pub fn join_within<T>(&self, completion: Completion<T>) -> Result<T> {
        completion.join_for(self.join_timeout).ok_or_else(|| {
            BlobError::Transport(format!(
                "transfer did not complete within {:?} (hung endpoint?)",
                self.join_timeout.unwrap_or_default()
            ))
        })
    }

    fn worker_loop(receiver: &Mutex<Receiver<Job>>, shared: &PoolShared) {
        loop {
            // Take the next job while holding the receiver lock, then run it
            // with the lock released so workers actually execute in parallel.
            let job = {
                let rx = receiver.lock().unwrap_or_else(|e| e.into_inner());
                rx.recv()
            };
            let Ok(job) = job else {
                return; // every sender dropped: the pool is shutting down
            };
            shared.tasks_run.fetch_add(1, Ordering::Relaxed);
            // A panicking task must not kill the worker: the panic is
            // reported to the submitting client (its completion channel
            // closes unfulfilled), not to unrelated clients sharing the pool.
            if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.tasks_panicked.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Lifetime activity counters.
    #[must_use]
    pub fn stats(&self) -> TransferPoolStats {
        TransferPoolStats {
            tasks_run: self.shared.tasks_run.load(Ordering::Relaxed),
            tasks_inline: self.shared.tasks_inline.load(Ordering::Relaxed),
            tasks_panicked: self.shared.tasks_panicked.load(Ordering::Relaxed),
        }
    }

    /// Transfers currently in flight for one provider (tagged submissions).
    #[must_use]
    pub fn in_flight(&self, provider: ProviderId) -> u64 {
        self.shared
            .in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&provider)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of every provider with transfers currently on the wire.
    #[must_use]
    pub fn in_flight_counts(&self) -> HashMap<ProviderId, u64> {
        self.shared
            .in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Submits one task and returns its completion handle immediately.
    ///
    /// Zero-worker pools run the task inline before returning (the handle is
    /// then already fulfilled), so submission-site code works identically in
    /// deterministic inline mode.
    pub fn submit<T, F>(&self, task: F) -> Completion<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        self.submit_for(None, task)
    }

    /// Submits one task tagged with the data provider it primarily talks
    /// to. The per-provider in-flight gauge is incremented now and released
    /// when the task finishes (or panics).
    pub fn submit_for<T, F>(&self, provider: Option<ProviderId>, task: F) -> Completion<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let guard = provider.map(|provider| {
            self.shared.transfer_started(provider);
            InFlightGuard {
                shared: Arc::clone(&self.shared),
                provider,
            }
        });
        let (tx, rx) = channel::<T>();
        match &self.sender {
            Some(sender) => {
                let job: Job = Box::new(move || {
                    let _guard = guard;
                    let result = task();
                    // The receiver only disappears if the submitter dropped
                    // the handle (or panicked); discarding is the fallback.
                    let _ = tx.send(result);
                });
                sender.send(job).expect("transfer pool workers are gone");
            }
            None => {
                self.shared.tasks_inline.fetch_add(1, Ordering::Relaxed);
                let _guard = guard;
                let _ = tx.send(task());
            }
        }
        Completion::pending(rx)
    }

    /// Runs every task (in parallel on the pool workers) and returns their
    /// results in task order. Blocks until the whole batch is done.
    ///
    /// This is the explicit batch join over [`TransferPool::submit`]:
    /// single-task batches and zero-worker pools run inline on the calling
    /// thread, everything else is submitted up front and joined in order.
    ///
    /// # Panics
    ///
    /// If a task panics on a worker, the batch panics here (mirroring the
    /// `join().expect(...)` of the old per-operation scoped threads).
    pub fn execute<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if self.sender.is_none() || tasks.len() <= 1 {
            return self.run_inline(tasks);
        }
        let completions: Vec<Completion<T>> = tasks.into_iter().map(|t| self.submit(t)).collect();
        completions.into_iter().map(Completion::join).collect()
    }

    /// Waits until every task submitted *before* this call has finished.
    ///
    /// Implemented as a worker rendezvous: one sentinel per worker is
    /// enqueued, and the sentinels block on a shared barrier until all of
    /// them are running at once. The queue is FIFO, so a worker can only be
    /// parked in its sentinel after completing every earlier job it picked
    /// up — when the rendezvous resolves, the pre-quiesce backlog is done.
    /// Tasks submitted concurrently with the call may or may not be covered.
    /// Zero-worker pools run everything inline and are always quiescent.
    pub fn quiesce(&self) {
        let workers = self.workers.len();
        if workers == 0 {
            return;
        }
        let barrier = Arc::new(std::sync::Barrier::new(workers));
        let sentinels: Vec<Completion<()>> = (0..workers)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                self.submit(move || {
                    barrier.wait();
                })
            })
            .collect();
        for sentinel in sentinels {
            sentinel.join();
        }
    }

    fn run_inline<T, F: FnOnce() -> T>(&self, tasks: Vec<F>) -> Vec<T> {
        self.shared
            .tasks_inline
            .fetch_add(tasks.len() as u64, Ordering::Relaxed);
        tasks.into_iter().map(|task| task()).collect()
    }
}

impl Drop for TransferPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail and exit.
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TransferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferPool")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = TransferPool::new(4);
        let tasks: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    // Stagger finish times so completion order differs from
                    // submission order.
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
                    i * 2
                }
            })
            .collect();
        let results = pool.execute(tasks);
        assert_eq!(results, (0..32u64).map(|i| i * 2).collect::<Vec<_>>());
        assert!(pool.stats().tasks_run >= 32);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = TransferPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        let results = pool.execute((0..8).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        assert_eq!(pool.stats().tasks_inline, 8);
        assert_eq!(pool.stats().tasks_run, 0);
    }

    #[test]
    fn single_task_batches_skip_the_queue() {
        let pool = TransferPool::new(2);
        assert_eq!(pool.execute(vec![|| 41 + 1]), vec![42]);
        assert_eq!(pool.stats().tasks_inline, 1);
        assert_eq!(pool.stats().tasks_run, 0);
    }

    #[test]
    fn submitted_tasks_complete_out_of_band() {
        let pool = TransferPool::new(2);
        // Submit slow work first, fast work second; both handles resolve
        // with their own result regardless of completion order.
        let slow = pool.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            "slow"
        });
        let fast = pool.submit(|| "fast");
        assert_eq!(fast.join(), "fast");
        assert_eq!(slow.join(), "slow");
    }

    #[test]
    fn submission_overlaps_with_caller_work() {
        // The defining property of the scheduler: the caller keeps running
        // while a submitted task is in flight.
        let pool = TransferPool::new(1);
        let (gate_tx, gate_rx) = channel::<()>();
        let pending = pool.submit(move || {
            gate_rx.recv().unwrap();
            7
        });
        // Caller-side work happens while the task is parked on the gate.
        let local = 35;
        gate_tx.send(()).unwrap();
        assert_eq!(pending.join() + local, 42);
    }

    #[test]
    fn tagged_submissions_track_per_provider_in_flight() {
        let pool = TransferPool::new(2);
        let p = ProviderId(3);
        let (gate_tx, gate_rx) = channel::<()>();
        let pending = pool.submit_for(Some(p), move || {
            gate_rx.recv().unwrap();
        });
        // The gauge counts the task while it is queued/running...
        assert_eq!(pool.in_flight(p), 1);
        assert_eq!(pool.in_flight_counts().get(&p), Some(&1));
        gate_tx.send(()).unwrap();
        pending.join();
        // ...and releases it on completion.
        assert_eq!(pool.in_flight(p), 0);
        assert!(pool.in_flight_counts().is_empty());
    }

    #[test]
    fn panicking_tagged_tasks_release_their_in_flight_slot() {
        let pool = TransferPool::new(1);
        let p = ProviderId(0);
        let boom = pool.submit_for(Some(p), || panic!("transfer died"));
        assert!(std::panic::catch_unwind(AssertUnwindSafe(move || boom.join())).is_err());
        // The guard drops during the unwind and the worker records the panic
        // after it; both race with this thread observing the failed join.
        for _ in 0..500 {
            if pool.in_flight(p) == 0 && pool.stats().tasks_panicked == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.in_flight(p), 0);
        assert_eq!(pool.stats().tasks_panicked, 1);
    }

    #[test]
    fn concurrent_batches_share_the_workers() {
        let pool = Arc::new(TransferPool::new(4));
        let mut clients = Vec::new();
        for c in 0..8u64 {
            let pool = Arc::clone(&pool);
            clients.push(std::thread::spawn(move || {
                for round in 0..10u64 {
                    let tasks: Vec<_> = (0..4u64)
                        .map(|i| move || c * 1000 + round * 10 + i)
                        .collect();
                    let expected: Vec<u64> = (0..4u64).map(|i| c * 1000 + round * 10 + i).collect();
                    assert_eq!(pool.execute(tasks), expected);
                }
            }));
        }
        for client in clients {
            client.join().unwrap();
        }
    }

    #[test]
    fn a_panicking_task_fails_the_batch_but_not_the_pool() {
        let pool = TransferPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute(
                (0..4)
                    .map(|i| {
                        move || {
                            assert!(i != 2, "task 2 blows up");
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(
            outcome.is_err(),
            "the submitting batch must observe the panic"
        );
        // The pool survives and keeps serving.
        assert_eq!(pool.execute(vec![|| 1, || 2]), vec![1, 2]);
        // The worker's bookkeeping races with the caller observing the
        // failed batch; give it a moment.
        for _ in 0..100 {
            if pool.stats().tasks_panicked == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.stats().tasks_panicked, 1);
    }

    #[test]
    fn join_within_times_out_on_a_stalled_task_without_wedging_the_pool() {
        let pool =
            TransferPool::new(1).with_join_timeout(Some(std::time::Duration::from_millis(30)));
        assert_eq!(
            pool.join_timeout(),
            Some(std::time::Duration::from_millis(30))
        );
        let (gate_tx, gate_rx) = channel::<()>();
        // The task stalls until released — a stand-in for a hung endpoint.
        let hung = pool.submit(move || {
            gate_rx.recv().ok();
            1u32
        });
        let err = pool.join_within(hung).unwrap_err();
        assert!(matches!(err, blobseer_types::BlobError::Transport(_)));
        // Release the stalled task: the pool worker survives the abandoned
        // completion and keeps serving.
        gate_tx.send(()).unwrap();
        let next = pool.submit(|| 2u32);
        assert_eq!(pool.join_within(next).unwrap(), 2);
    }

    #[test]
    fn join_within_without_timeout_waits_and_ready_completions_never_time_out() {
        let pool = TransferPool::new(1);
        assert_eq!(pool.join_timeout(), None);
        let slow = pool.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            7u32
        });
        assert_eq!(pool.join_within(slow).unwrap(), 7);
        // A ready completion (cache hit) is immune even on a pool with a
        // tiny timeout.
        let strict =
            TransferPool::new(0).with_join_timeout(Some(std::time::Duration::from_nanos(1)));
        assert_eq!(strict.join_within(Completion::ready(9u32)).unwrap(), 9);
    }

    #[test]
    fn quiesce_waits_for_the_submitted_backlog() {
        let pool = TransferPool::new(3);
        static DONE: AtomicUsize = AtomicUsize::new(0);
        for i in 0..12u64 {
            // Dropped completions: quiesce must not depend on joining them.
            let _ = pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_micros(200 * (i % 4)));
                DONE.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.quiesce();
        assert_eq!(DONE.load(Ordering::SeqCst), 12);
        // A quiescent pool keeps serving afterwards.
        assert_eq!(pool.execute(vec![|| 5, || 6]), vec![5, 6]);
        // Zero-worker pools are trivially quiescent.
        TransferPool::new(0).quiesce();
    }

    #[test]
    fn drop_joins_all_workers() {
        static RUNNING: AtomicUsize = AtomicUsize::new(0);
        let pool = TransferPool::new(3);
        pool.execute(
            (0..6)
                .map(|_| {
                    || {
                        RUNNING.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect::<Vec<_>>(),
        );
        drop(pool);
        assert_eq!(RUNNING.load(Ordering::SeqCst), 6);
    }
}
