//! The client-side chunk cache: a byte-budget, sharded LRU over immutable
//! chunk payloads.
//!
//! Versioning with immutable snapshots means a chunk, once published under a
//! [`ChunkId`], can never change — so a cached copy is correct *forever* and
//! the cache needs no invalidation protocol at all. Entries only ever leave
//! by LRU eviction when the byte budget is exceeded. The cache is consulted
//! by both read schedules before any fetch is submitted to the transfer
//! scheduler, and the write path populates it write-through, which makes
//! read-your-writes round-trip-free.
//!
//! Hits hand back the *same* [`Bytes`] the cache holds (a reference-count
//! bump, no copy); the caller slices what it needs zero-copy. Inserts of
//! payloads that are sub-views of larger buffers pay one bounded compaction
//! memcpy (see [`ChunkCache::insert`]) so the budget bounds real memory.
//!
//! The map is sharded so concurrent readers sharing a client (or a future
//! node-local cache shared by many clients) do not serialise on one lock:
//! each shard owns a hash map plus an LRU order keyed by a per-shard tick.

use blobseer_types::ChunkId;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. Public because the per-entry
/// admission limit is derived from it (`budget / SHARDS`): the simulator
/// mirrors the rule and must never drift from the real cache.
pub const SHARDS: usize = 16;

/// Counters describing the cache's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Chunks inserted (fetch fills and write-through).
    pub insertions: u64,
    /// Chunks evicted to stay within the byte budget.
    pub evictions: u64,
    /// Payload bytes memcpy'd to compact zero-copy views on insert (see
    /// [`ChunkCache::insert`]): the cost of caching a chunk that was a
    /// sub-slice of a larger buffer. Zero when every inserted payload owns
    /// its allocation.
    pub bytes_compacted: u64,
    /// Payload bytes currently held.
    pub bytes: u64,
    /// Chunks currently held.
    pub entries: u64,
}

#[derive(Default)]
struct Shard {
    /// Chunk payloads plus the LRU tick of their last touch.
    entries: HashMap<ChunkId, (Bytes, u64)>,
    /// LRU order: tick of last touch → chunk. Ticks are unique per shard.
    order: BTreeMap<u64, ChunkId>,
    bytes: u64,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, id: ChunkId, old_tick: u64) {
        self.tick += 1;
        let tick = self.tick;
        self.order.remove(&old_tick);
        self.order.insert(tick, id);
        if let Some((_, t)) = self.entries.get_mut(&id) {
            *t = tick;
        }
    }
}

/// A sharded, byte-budgeted LRU cache of immutable chunk payloads.
pub struct ChunkCache {
    shards: Vec<Mutex<Shard>>,
    /// Budget of each shard (the total budget split evenly).
    shard_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    bytes_compacted: AtomicU64,
}

impl ChunkCache {
    /// Creates a cache holding at most `budget_bytes` of chunk payload.
    #[must_use]
    pub fn new(budget_bytes: u64) -> Self {
        ChunkCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes.div_ceil(SHARDS as u64),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_compacted: AtomicU64::new(0),
        }
    }

    /// Total byte budget (the per-shard budgets summed).
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.shard_budget * SHARDS as u64
    }

    fn shard(&self, id: &ChunkId) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a chunk, refreshing its LRU position. The returned [`Bytes`]
    /// is the cached buffer itself — a reference-count bump, never a copy.
    pub fn get(&self, id: &ChunkId) -> Option<Bytes> {
        let mut shard = self.shard(id).lock();
        let Some((data, tick)) = shard.entries.get(id).map(|(d, t)| (d.clone(), *t)) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        shard.touch(*id, tick);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(data)
    }

    /// Inserts a chunk payload, evicting least-recently-used entries until
    /// the shard fits its budget again. Payloads larger than a whole shard's
    /// budget are not cached (they would evict everything for one entry that
    /// is itself evicted next). Re-inserting an existing chunk only
    /// refreshes its LRU position — immutability guarantees the payload is
    /// identical.
    ///
    /// A payload that is a sub-view of a larger buffer is *compacted* (one
    /// memcpy, bounded by the chunk size, counted in
    /// [`ChunkCacheStats::bytes_compacted`]): caching the view verbatim
    /// would keep its whole backing allocation alive, letting a megabyte
    /// budget pin gigabytes. This is the one place the cached configuration
    /// pays a copy — the same per-chunk copy the pre-zero-copy write path
    /// always paid — and only for payloads that arrive as views.
    pub fn insert(&self, id: ChunkId, data: Bytes) {
        let len = data.len() as u64;
        if len == 0 || len > self.shard_budget {
            return;
        }
        let mut shard = self.shard(&id).lock();
        // Duplicate insert (write-through of an already-read chunk, racing
        // fetch fills): refresh the LRU position before paying any copy.
        if let Some(&(_, tick)) = shard.entries.get(&id) {
            shard.touch(id, tick);
            return;
        }
        let data = if data.is_compact() {
            data
        } else {
            // Compacting under the shard lock is deliberate: the copy is
            // chunk-bounded and doing it outside would let two racing
            // inserters both pay it.
            self.bytes_compacted.fetch_add(len, Ordering::Relaxed);
            Bytes::copy_from_slice(&data)
        };
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert(id, (data, tick));
        shard.order.insert(tick, id);
        shard.bytes += len;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.bytes > self.shard_budget {
            let (&oldest, &victim) = shard
                .order
                .iter()
                .next()
                .expect("bytes > 0 implies entries");
            shard.order.remove(&oldest);
            let (evicted, _) = shard.entries.remove(&victim).expect("order and map agree");
            shard.bytes -= evicted.len() as u64;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops a chunk from the cache, if present. Chunk ids are never
    /// reused, so this is pure hygiene: a server-side cache evicts chunks
    /// the lifecycle sweeper reclaimed instead of letting dead entries age
    /// out of the budget.
    pub fn remove(&self, id: &ChunkId) {
        let mut shard = self.shard(id).lock();
        if let Some((data, tick)) = shard.entries.remove(id) {
            shard.order.remove(&tick);
            shard.bytes -= data.len() as u64;
        }
    }

    /// Lifetime counters plus the current occupancy.
    pub fn stats(&self) -> ChunkCacheStats {
        let mut bytes = 0;
        let mut entries = 0;
        for shard in &self.shards {
            let shard = shard.lock();
            bytes += shard.bytes;
            entries += shard.entries.len() as u64;
        }
        ChunkCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_compacted: self.bytes_compacted.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCache")
            .field("budget_bytes", &self.budget_bytes())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::BlobId;

    fn cid(slot: u64) -> ChunkId {
        ChunkId {
            blob: BlobId(1),
            write_tag: 7,
            slot,
        }
    }

    fn payload(len: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; len])
    }

    #[test]
    fn hits_return_the_cached_buffer_without_copying() {
        let cache = ChunkCache::new(1 << 20);
        assert!(cache.get(&cid(0)).is_none());
        cache.insert(cid(0), payload(100, 3));
        let hit = cache.get(&cid(0)).unwrap();
        assert_eq!(hit, payload(100, 3));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.bytes, 100);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn eviction_respects_the_byte_budget_in_lru_order() {
        // One shard's worth of traffic: same blob/tag, slots hashed apart —
        // use a budget small enough that evictions must happen regardless of
        // shard spread.
        let cache = ChunkCache::new(SHARDS as u64 * 256);
        for slot in 0..64 {
            cache.insert(cid(slot), payload(128, slot as u8));
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "64 * 128 bytes cannot fit the budget");
        assert!(stats.bytes <= cache.budget_bytes());
        assert_eq!(stats.bytes, stats.entries * 128);
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        // Everything lands in one shard? Not guaranteed — instead verify the
        // LRU property within however entries are spread: insert two, touch
        // the first, then flood; the flooded shard evicts its oldest first.
        let cache = ChunkCache::new(SHARDS as u64 * 300);
        cache.insert(cid(0), payload(100, 1));
        cache.insert(cid(1), payload(100, 2));
        assert!(cache.get(&cid(0)).is_some()); // refresh slot 0
        for slot in 2..200 {
            cache.insert(cid(slot), payload(100, 9));
        }
        // Slot 0 was the most recently used of the first two; if its shard
        // evicted anything, slot 1 (same shard or not) is at least as likely
        // gone. The hard property: occupancy never exceeds the budget.
        assert!(cache.stats().bytes <= cache.budget_bytes());
    }

    #[test]
    fn oversized_and_empty_payloads_are_not_cached() {
        let cache = ChunkCache::new(SHARDS as u64 * 64);
        cache.insert(cid(0), payload(65, 1)); // larger than one shard budget
        cache.insert(cid(1), Bytes::new());
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(&cid(0)).is_none());
    }

    #[test]
    fn views_are_compacted_so_the_budget_bounds_real_memory() {
        let cache = ChunkCache::new(1 << 20);
        // A 100-byte slice of a 1 MiB buffer: caching the view verbatim
        // would pin the whole megabyte against a 100-byte account.
        let big = payload(1 << 20, 9);
        let view = big.slice(500..600);
        assert!(!view.is_compact());
        cache.insert(cid(0), view.clone());
        let cached = cache.get(&cid(0)).unwrap();
        assert_eq!(cached, view);
        assert!(cached.is_compact(), "the cache must hold a compact copy");
        assert_eq!(cache.stats().bytes, 100);
    }

    #[test]
    fn reinsertion_refreshes_instead_of_duplicating() {
        let cache = ChunkCache::new(1 << 20);
        cache.insert(cid(0), payload(100, 1));
        cache.insert(cid(0), payload(100, 1));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 100);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn concurrent_clients_share_the_cache_safely() {
        let cache = std::sync::Arc::new(ChunkCache::new(1 << 20));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        let id = cid(t * 100 + i);
                        cache.insert(id, payload(64, t as u8));
                        assert_eq!(cache.get(&id).unwrap(), payload(64, t as u8));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 800);
    }
}
