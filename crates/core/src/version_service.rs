//! The client-facing version-manager boundary, as a service trait.
//!
//! The version manager is the last plane a [`crate::BlobClient`] reaches
//! through a concrete in-process handle; everything else (chunks, metadata)
//! already goes through a service trait with both in-process and networked
//! implementations. [`VersionService`] closes that gap: `VersionManager`
//! implements it directly, and `blobseer-net` provides a framed-RPC
//! implementation so a client can run against a remote version manager —
//! which is what the `blobseer-server` daemon serves.
//!
//! Pinning across the wire uses lease tokens: [`VersionService::pin`]
//! returns an opaque `u64` the remote endpoint minted for the pin it holds
//! server-side, and [`VersionService::unpin`] releases it. The in-process
//! implementation needs no lease state (its pins are reference counts keyed
//! by version), so it always answers token 0.

use crate::version_manager::{ArtifactKind, NodeArtifact, WriteKind, WriteTicket};
use blobseer_meta::SnapshotDescriptor;
use blobseer_types::wire::{Wire, WireReader, WireWriter};
use blobseer_types::{BlobConfig, BlobError, BlobId, Result, Version};
use std::sync::Arc;

/// The version-manager operations a client performs, over any transport.
pub trait VersionService: Send + Sync {
    /// Registers a new blob and returns its id.
    fn create_blob(&self, config: BlobConfig) -> Result<BlobId>;
    /// The configuration a blob was created with.
    fn blob_config(&self, blob: BlobId) -> Result<BlobConfig>;
    /// Descriptor of the latest published snapshot.
    fn latest_snapshot(&self, blob: BlobId) -> Result<SnapshotDescriptor>;
    /// Descriptor of an arbitrary published snapshot.
    fn snapshot(&self, blob: BlobId, version: Version) -> Result<SnapshotDescriptor>;
    /// All currently published versions of a blob, in ascending order.
    fn published_versions(&self, blob: BlobId) -> Result<Vec<Version>>;
    /// Assigns a version and reference chain to one write.
    fn assign_ticket(&self, blob: BlobId, kind: WriteKind) -> Result<WriteTicket>;
    /// Publishes a completed write (with the node artifacts it stored).
    fn complete_write(
        &self,
        blob: BlobId,
        version: Version,
        artifacts: Option<Vec<NodeArtifact>>,
    ) -> Result<Version>;
    /// Abandons an assigned write.
    fn abort_write(
        &self,
        blob: BlobId,
        version: Version,
        artifacts: Option<Vec<NodeArtifact>>,
    ) -> Result<Version>;
    /// Resolves and pins a snapshot (`None` — the latest published one),
    /// returning its descriptor plus an opaque lease token for the pin.
    fn pin(&self, blob: BlobId, version: Option<Version>) -> Result<(SnapshotDescriptor, u64)>;
    /// Releases a pin taken by [`VersionService::pin`]. Infallible by
    /// design: release runs from guard drops, where an error has no
    /// receiver; implementations swallow transport failures (an unreachable
    /// endpoint is tearing down its lease table anyway).
    fn unpin(&self, blob: BlobId, version: Version, token: u64);
}

/// RAII pin on one published version, resolved through any
/// [`VersionService`]. While alive, the lifecycle sweeper of the serving
/// deployment treats the version (and everything its tree reaches) as live;
/// dropping the guard releases it.
pub struct VersionPin {
    svc: Arc<dyn VersionService>,
    blob: BlobId,
    version: Version,
    token: u64,
}

impl VersionPin {
    /// Wraps a raw `(service, lease)` pin into a guard.
    #[must_use]
    pub fn new(svc: Arc<dyn VersionService>, blob: BlobId, version: Version, token: u64) -> Self {
        VersionPin {
            svc,
            blob,
            version,
            token,
        }
    }

    /// The pinned version.
    #[must_use]
    pub fn version(&self) -> Version {
        self.version
    }
}

impl Drop for VersionPin {
    fn drop(&mut self) {
        self.svc.unpin(self.blob, self.version, self.token);
    }
}

// --- wire layouts of the version plane ---------------------------------
//
// These live next to the trait (not in `blobseer-net`) for the same reason
// the metadata node codec lives in `blobseer-meta`: the crate owning a type
// owns its bytes. `ReferenceChain` and `SnapshotDescriptor` encode in
// `blobseer_meta::codec`; `BlobConfig` in `blobseer_types::wire`.

impl Wire for WriteKind {
    fn put(&self, w: &mut WireWriter) {
        match self {
            WriteKind::Write { offset, len } => {
                w.put_u8(0);
                w.put_u64(*offset);
                w.put_u64(*len);
            }
            WriteKind::Append { len } => {
                w.put_u8(1);
                w.put_u64(*len);
            }
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => WriteKind::Write {
                offset: r.get_u64()?,
                len: r.get_u64()?,
            },
            1 => WriteKind::Append { len: r.get_u64()? },
            tag => {
                return Err(BlobError::Transport(format!(
                    "wire: unknown WriteKind tag {tag}"
                )))
            }
        })
    }
}

impl Wire for WriteTicket {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.blob);
        w.put(&self.version);
        w.put_u64(self.offset);
        w.put_u64(self.len);
        w.put_u64(self.new_size);
        w.put_u64(self.chunk_size);
        w.put(&self.chain);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(WriteTicket {
            blob: r.get()?,
            version: r.get()?,
            offset: r.get_u64()?,
            len: r.get_u64()?,
            new_size: r.get_u64()?,
            chunk_size: r.get_u64()?,
            chain: r.get()?,
        })
    }
}

impl Wire for ArtifactKind {
    fn put(&self, w: &mut WireWriter) {
        match self {
            ArtifactKind::Alias => w.put_u8(0),
            ArtifactKind::Inner => w.put_u8(1),
            ArtifactKind::Leaf { chunk } => {
                w.put_u8(2);
                w.put(chunk);
            }
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => ArtifactKind::Alias,
            1 => ArtifactKind::Inner,
            2 => ArtifactKind::Leaf { chunk: r.get()? },
            tag => {
                return Err(BlobError::Transport(format!(
                    "wire: unknown ArtifactKind tag {tag}"
                )))
            }
        })
    }
}

impl Wire for NodeArtifact {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.range);
        w.put(&self.kind);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(NodeArtifact {
            range: r.get()?,
            kind: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_meta::ReferenceChain;
    use blobseer_types::wire::{decode, encode};
    use blobseer_types::{ByteRange, ChunkId, ProviderId};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(decode::<T>(&encode(&value)).unwrap(), value);
    }

    #[test]
    fn version_plane_requests_roundtrip() {
        roundtrip(WriteKind::Write {
            offset: 128,
            len: 64,
        });
        roundtrip(WriteKind::Append { len: 4096 });
        roundtrip(WriteTicket {
            blob: BlobId(3),
            version: Version(9),
            offset: 64,
            len: 128,
            new_size: 192,
            chunk_size: 64,
            chain: ReferenceChain::published_only(SnapshotDescriptor::initial(64)),
        });
        roundtrip(vec![
            NodeArtifact {
                range: ByteRange::new(0, 64),
                kind: ArtifactKind::Leaf {
                    chunk: Some((
                        ChunkId {
                            blob: BlobId(3),
                            write_tag: 7,
                            slot: 0,
                        },
                        vec![ProviderId(1), ProviderId(2)],
                    )),
                },
            },
            NodeArtifact {
                range: ByteRange::new(0, 128),
                kind: ArtifactKind::Inner,
            },
            NodeArtifact {
                range: ByteRange::new(64, 64),
                kind: ArtifactKind::Alias,
            },
        ]);
        roundtrip(BlobConfig::default());
    }
}
