//! The version manager.
//!
//! The version manager is the (lightweight) serialisation point of BlobSeer:
//! it assigns a version to every write or append, resolves the offset of
//! appends, hands writers the [`ReferenceChain`] they weave their metadata
//! against, and publishes versions **strictly in assignment order** once
//! their metadata is complete. Reads only ever observe published versions,
//! which is what makes the whole protocol linearizable while keeping readers
//! and writers fully decoupled.

use crate::version_service::{VersionPin, VersionService};
use blobseer_meta::{
    NodeBody, NodeKey, ReferenceChain, SnapshotDescriptor, WriteMetadata, WriteSummary,
};
use blobseer_persist::Journal;
use blobseer_types::{
    chunk_span, BlobConfig, BlobError, BlobId, ByteRange, ChunkId, IdGenerator, ProviderId, Result,
    Version,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of mutation a client asks a ticket for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Write `len` bytes at an explicit `offset`.
    Write {
        /// First byte written.
        offset: u64,
        /// Number of bytes written.
        len: u64,
    },
    /// Append `len` bytes at the current end of the blob (the offset is
    /// resolved by the version manager at assignment time).
    Append {
        /// Number of bytes appended.
        len: u64,
    },
}

impl WriteKind {
    fn len(&self) -> u64 {
        match self {
            WriteKind::Write { len, .. } | WriteKind::Append { len } => *len,
        }
    }
}

/// Everything a writer needs to perform its write: the assigned version, the
/// resolved offset, and the reference chain to weave metadata against.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteTicket {
    /// Blob being written.
    pub blob: BlobId,
    /// Version assigned to this write.
    pub version: Version,
    /// Resolved first byte of the write (equals the snapshot size at
    /// assignment time for appends).
    pub offset: u64,
    /// Number of bytes the write covers.
    pub len: u64,
    /// Blob size once this write is applied.
    pub new_size: u64,
    /// Chunk size of the blob.
    pub chunk_size: u64,
    /// Reference view the writer resolves borrowed subtrees against.
    pub chain: ReferenceChain,
}

/// Statistics of the version manager, used by monitoring and the benchmark
/// harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionManagerStats {
    /// Blobs created.
    pub blobs: u64,
    /// Tickets assigned.
    pub tickets: u64,
    /// Versions published.
    pub published: u64,
    /// Writes aborted.
    pub aborted: u64,
}

/// What a published version stored at one tree range, as reported by the
/// writer when it completes. The version manager folds these into its
/// per-range reference chains, which is how the lifecycle sweeper learns
/// which tree nodes and chunks became unreachable once old versions are
/// evicted.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeArtifact {
    /// Range the node covers (single slot for leaves).
    pub range: ByteRange,
    /// What kind of node was stored there.
    pub kind: ArtifactKind,
}

/// The node kinds the lifecycle tracker distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactKind {
    /// A forwarding node woven by repair: it borrows the node currently
    /// resolving at its range, so it *extends* that node's liveness instead
    /// of superseding it.
    Alias,
    /// An inner tree node (supersedes the previous node at its range).
    Inner,
    /// A leaf. `chunk` names the sealed chunk the leaf points at together
    /// with its replica set; `None` for hole leaves.
    Leaf {
        /// Chunk referenced by the leaf, with the providers storing it.
        chunk: Option<(ChunkId, Vec<ProviderId>)>,
    },
}

impl NodeArtifact {
    /// Derives the artifact list of a woven write from its metadata. Called
    /// by writers (and the flattener) right before completing a version, so
    /// the version manager learns exactly which nodes the version stored
    /// without ever touching the metadata plane itself.
    #[must_use]
    pub fn from_metadata(meta: &WriteMetadata) -> Vec<NodeArtifact> {
        meta.nodes
            .iter()
            .map(|(key, body)| NodeArtifact {
                range: key.range,
                kind: match body {
                    NodeBody::Alias(_) => ArtifactKind::Alias,
                    NodeBody::Inner(_) => ArtifactKind::Inner,
                    NodeBody::Leaf(leaf) => ArtifactKind::Leaf {
                        chunk: if leaf.is_hole() {
                            None
                        } else {
                            Some((leaf.chunk, leaf.providers.clone()))
                        },
                    },
                },
            })
            .collect()
    }
}

/// Everything the lifecycle sweeper may reclaim right now for one blob:
/// tree nodes and chunks unreachable from every retained (or pinned)
/// version. Produced by [`VersionManager::take_collectable`]; once taken,
/// the entries are the caller's responsibility to delete.
#[derive(Debug, Clone, Default)]
pub struct CollectableSet {
    /// Metadata-tree nodes to delete.
    pub nodes: Vec<NodeKey>,
    /// Chunks to remove, each with the providers believed to store it.
    pub chunks: Vec<(ChunkId, Vec<ProviderId>)>,
}

impl CollectableSet {
    /// Whether there is nothing to reclaim.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.chunks.is_empty()
    }
}

/// Ticket handed to the flattener: the version reserved for the consolidated
/// snapshot and the published snapshot it materialises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlattenTicket {
    /// Blob being flattened.
    pub blob: BlobId,
    /// Version reserved for the flat snapshot.
    pub version: Version,
    /// Snapshot whose content the flat version reproduces.
    pub source: SnapshotDescriptor,
}

/// The versions whose trees reference the node currently resolving at one
/// range: the first entry created the node, later entries are repair aliases
/// borrowing it. The group lives until a later version stores a fresh
/// (non-alias) node at the same range.
#[derive(Debug, Clone)]
struct ChainGroup {
    versions: Vec<Version>,
    /// Chunk the current leaf at this range points at (leaves only).
    chunk: Option<(ChunkId, Vec<ProviderId>)>,
}

/// A chain group superseded by a newer node: its nodes (and chunk, unless
/// ownership was transferred to the superseding leaf) are referenced only by
/// versions older than `superseded_at`, so they become garbage as soon as
/// every such version is evicted and unpinned.
#[derive(Debug, Clone)]
struct RetiredGroup {
    /// First version whose tree no longer references this group.
    superseded_at: u64,
    range: ByteRange,
    versions: Vec<Version>,
    chunk: Option<(ChunkId, Vec<ProviderId>)>,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    summary: WriteSummary,
    complete: bool,
    aborted: bool,
    /// Nodes the writer stored, reported at completion time (`None` until
    /// then, and forever for writers predating lifecycle tracking — those
    /// versions simply never become collectable, which is safe).
    artifacts: Option<Vec<NodeArtifact>>,
    /// Whether this version is a flat (consolidated) snapshot.
    flat: bool,
    /// Version pinned on behalf of this writer while it weaves (its chain
    /// base, or the flatten source); unpinned when the write settles.
    base_pin: Option<u64>,
}

#[derive(Debug)]
struct BlobState {
    config: BlobConfig,
    /// Published snapshot descriptors, indexed by version number.
    published: Vec<SnapshotDescriptor>,
    /// Assigned but not yet published writes, keyed by version number.
    pending: BTreeMap<u64, PendingWrite>,
    /// Next version to assign.
    next_version: u64,
    /// Blob size after the latest assigned (not necessarily published)
    /// write; appends are placed here.
    assigned_size: u64,
    /// Live chain group per tree range: which versions reference the node
    /// currently resolving there.
    ranges: HashMap<ByteRange, ChainGroup>,
    /// Superseded chain groups awaiting collection, oldest supersession
    /// first (supersession versions are published in order, so pushing at
    /// the back keeps the queue sorted).
    retired: VecDeque<RetiredGroup>,
    /// Oldest version still readable; versions below were evicted by the
    /// retention policy and answer [`BlobError::VersionRetired`].
    first_retained: u64,
    /// Reference counts of versions pinned by in-flight readers and
    /// writers. The sweep floor never passes a pinned version, which is
    /// what lets the sweeper run concurrently with reads without ever
    /// blocking them.
    pins: HashMap<u64, usize>,
    /// Non-flat versions published since the last flat snapshot — the
    /// flattener's trigger counter.
    writes_since_flatten: u64,
}

impl BlobState {
    fn new(config: BlobConfig) -> Self {
        BlobState {
            published: vec![SnapshotDescriptor::initial(config.chunk_size)],
            pending: BTreeMap::new(),
            next_version: 1,
            assigned_size: 0,
            ranges: HashMap::new(),
            retired: VecDeque::new(),
            first_retained: 0,
            pins: HashMap::new(),
            writes_since_flatten: 0,
            config,
        }
    }

    fn latest_published(&self) -> SnapshotDescriptor {
        *self
            .published
            .last()
            .expect("a blob always has at least the empty snapshot")
    }

    /// The chain a new writer links against: the latest published snapshot
    /// plus every live pending write, in version order.
    fn reference_chain(&self) -> ReferenceChain {
        ReferenceChain {
            base: self.latest_published(),
            pending: self
                .pending
                .values()
                .filter(|p| !p.aborted)
                .map(|p| p.summary)
                .collect(),
        }
    }

    /// Publishes every complete pending write that directly follows the
    /// published prefix; returns the newly published descriptors in version
    /// order (the caller journals them, in that order, when a durability
    /// journal is installed).
    fn advance_publication(&mut self) -> Vec<SnapshotDescriptor> {
        let mut published = Vec::new();
        loop {
            let next = self.published.len() as u64;
            let ready = matches!(self.pending.get(&next), Some(p) if p.aborted || p.complete);
            if !ready {
                break;
            }
            let p = self.pending.remove(&next).expect("readiness checked above");
            // Aborted writes publish with the size they claimed: the repair
            // weave (see `blobseer_meta::build_repair_metadata`) gives the
            // claimed-but-unwritten region hole semantics, so readers of the
            // aborted version see zeros there. An aborted flatten is just an
            // ordinary no-op version — its descriptor must not claim flat
            // layout.
            let descriptor = SnapshotDescriptor {
                version: Version(next),
                size: p.summary.size,
                chunk_size: p.summary.chunk_size,
                flat: p.flat && !p.aborted,
            };
            self.published.push(descriptor);
            published.push(descriptor);
            // Artifacts must be folded into the range chains strictly in
            // version order — supersession is defined by "next creator at
            // the same range" — which publishing in order gives us for free.
            if let Some(artifacts) = p.artifacts {
                for artifact in &artifacts {
                    self.apply_artifact(Version(next), artifact);
                }
            }
            if p.flat && !p.aborted {
                self.writes_since_flatten = 0;
            } else {
                self.writes_since_flatten += 1;
            }
        }
        published
    }

    /// Folds one stored node into the per-range chain groups.
    fn apply_artifact(&mut self, version: Version, artifact: &NodeArtifact) {
        if let ArtifactKind::Alias = artifact.kind {
            // The alias borrows whatever currently resolves at this range:
            // the live group gains one referencing version and nothing
            // retires.
            self.ranges
                .entry(artifact.range)
                .or_insert_with(|| ChainGroup {
                    versions: Vec::new(),
                    chunk: None,
                })
                .versions
                .push(version);
            return;
        }
        let chunk = match &artifact.kind {
            ArtifactKind::Leaf { chunk } => chunk.clone(),
            _ => None,
        };
        let new_chunk_id = chunk.as_ref().map(|(id, _)| *id);
        let replaced = self.ranges.insert(
            artifact.range,
            ChainGroup {
                versions: vec![version],
                chunk,
            },
        );
        if let Some(mut old) = replaced {
            // Chunk ownership transfer: a flat snapshot (or an idempotent
            // rewrite) stores a fresh leaf pointing at the *same* chunk the
            // superseded leaf held. The chunk stays live with the new
            // group; only the old tree nodes retire.
            if new_chunk_id.is_some() && old.chunk.as_ref().map(|(id, _)| *id) == new_chunk_id {
                old.chunk = None;
            }
            self.retired.push_back(RetiredGroup {
                superseded_at: version.0,
                range: artifact.range,
                versions: old.versions,
                chunk: old.chunk,
            });
        }
    }

    /// Looks up a published snapshot descriptor, honouring the retention
    /// gate.
    fn lookup(&self, blob: BlobId, version: Version) -> Result<SnapshotDescriptor> {
        if version.0 < self.first_retained {
            return Err(BlobError::VersionRetired {
                blob,
                version,
                first_retained: Version(self.first_retained),
            });
        }
        self.published
            .get(version.0 as usize)
            .copied()
            .ok_or(BlobError::UnknownVersion(blob, version))
    }

    fn pin(&mut self, version: u64) {
        *self.pins.entry(version).or_insert(0) += 1;
    }

    fn unpin(&mut self, version: u64) {
        if let Some(count) = self.pins.get_mut(&version) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&version);
            }
        }
    }

    /// The version below which nothing is readable any more: everything
    /// retired before it is collectable. Pins hold the floor down, which is
    /// the whole no-blocking story — a sweep racing a reader merely defers
    /// the reader's nodes to a later pass.
    fn sweep_floor(&self) -> u64 {
        let min_pin = self.pins.keys().copied().min().unwrap_or(u64::MAX);
        self.first_retained.min(min_pin)
    }
}

/// Number of shards the blob map is split into. A power of two so the shard
/// index is a mask; 32 shards keep the map-level critical sections invisible
/// even with hundreds of client threads creating blobs.
const VM_SHARDS: usize = 32;

/// The version manager service. One instance serves every blob of a
/// deployment; all methods are safe to call from many client threads.
///
/// The serialisation the paper's protocol actually needs is *per blob*
/// (version assignment and in-order publication of one blob's writes), so
/// that is the only lock this type takes on the hot path: blob states live
/// behind individual mutexes inside a sharded, read-mostly outer map.
/// Operations on distinct blobs never contend on any shared lock — the shard
/// maps are only write-locked by blob creation — and the global counters are
/// plain atomics.
pub struct VersionManager {
    shards: Vec<RwLock<HashMap<BlobId, Arc<Mutex<BlobState>>>>>,
    blob_ids: IdGenerator,
    stat_blobs: AtomicU64,
    stat_tickets: AtomicU64,
    stat_published: AtomicU64,
    stat_aborted: AtomicU64,
    /// Durability hook: when set (durable deployments), blob creations,
    /// publications and retention moves are journaled through it. `None`
    /// for the RAM-resident deployments tests and benchmarks run.
    journal: RwLock<Option<Arc<dyn Journal>>>,
}

impl VersionManager {
    /// Creates an empty version manager.
    #[must_use]
    pub fn new() -> Self {
        VersionManager {
            shards: (0..VM_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            blob_ids: IdGenerator::starting_at(1),
            stat_blobs: AtomicU64::new(0),
            stat_tickets: AtomicU64::new(0),
            stat_published: AtomicU64::new(0),
            stat_aborted: AtomicU64::new(0),
            journal: RwLock::new(None),
        }
    }

    /// Installs the durability journal. Called once at cluster construction,
    /// before any client operation; every subsequent blob creation,
    /// publication and retention move is journaled through it.
    pub fn set_journal(&self, journal: Arc<dyn Journal>) {
        *self.journal.write() = Some(journal);
    }

    fn shard(&self, blob: BlobId) -> &RwLock<HashMap<BlobId, Arc<Mutex<BlobState>>>> {
        &self.shards[(blob.0 as usize) & (VM_SHARDS - 1)]
    }

    /// The state handle of one blob: cloned out of the shard map under a
    /// read lock, so holding the returned per-blob mutex never blocks
    /// operations on other blobs.
    fn state(&self, blob: BlobId) -> Result<Arc<Mutex<BlobState>>> {
        self.shard(blob)
            .read()
            .get(&blob)
            .cloned()
            .ok_or(BlobError::UnknownBlob(blob))
    }

    /// Registers a new blob and returns its identifier. The blob starts at
    /// version 0 (the empty snapshot).
    pub fn create_blob(&self, config: BlobConfig) -> Result<BlobId> {
        config.validate()?;
        let id = BlobId(self.blob_ids.next_id());
        // Journal before the id becomes visible: a restart that forgot a
        // handed-out blob id would mint it twice.
        if let Some(journal) = self.journal.read().as_ref() {
            journal.record_create_blob(id, &config)?;
        }
        self.shard(id)
            .write()
            .insert(id, Arc::new(Mutex::new(BlobState::new(config))));
        self.stat_blobs.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Re-registers a blob recovered from the durability journal: its
    /// creation-time configuration, the contiguous published prefix (the
    /// initial empty snapshot included) and the replayed retention floor.
    /// The blob-id generator is advanced past the restored id so new blobs
    /// never collide with recovered ones.
    ///
    /// Restored blobs start with empty reference chains: nodes published
    /// before the restart never become collectable again (a bounded leak the
    /// WAL checkpoint's compaction documents), which is safe — the sweeper
    /// can only leak, never double-free.
    pub fn restore_blob(
        &self,
        id: BlobId,
        config: BlobConfig,
        published: Vec<SnapshotDescriptor>,
        first_retained: Version,
    ) -> Result<()> {
        config.validate()?;
        if published.is_empty() || published[0].version != Version::ZERO {
            return Err(BlobError::Internal(
                "a restored blob needs its contiguous published prefix, version 0 first"
                    .to_string(),
            ));
        }
        let mut state = BlobState::new(config);
        state.next_version = published.len() as u64;
        state.assigned_size = published.last().expect("checked non-empty").size;
        state.first_retained = first_retained.0;
        state.writes_since_flatten = published
            .iter()
            .rev()
            .take_while(|d| !d.flat && d.version.0 > 0)
            .count() as u64;
        state.published = published;
        self.shard(id)
            .write()
            .insert(id, Arc::new(Mutex::new(state)));
        self.blob_ids.advance_past(id.0);
        self.stat_blobs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The configuration a blob was created with.
    pub fn blob_config(&self, blob: BlobId) -> Result<BlobConfig> {
        Ok(self.state(blob)?.lock().config)
    }

    /// All blobs currently registered.
    pub fn blob_ids(&self) -> Vec<BlobId> {
        let mut ids: Vec<BlobId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Assigns a version (and, for appends, an offset) to a write.
    pub fn assign_ticket(&self, blob: BlobId, kind: WriteKind) -> Result<WriteTicket> {
        if kind.len() == 0 {
            return Err(BlobError::EmptyWrite);
        }
        let state = self.state(blob)?;
        let mut state = state.lock();
        let chunk_size = state.config.chunk_size;
        let (offset, len) = match kind {
            WriteKind::Write { offset, len } => (offset, len),
            WriteKind::Append { len } => (state.assigned_size, len),
        };
        let new_size = state.assigned_size.max(offset + len);
        let chain = state.reference_chain();
        let version = Version(state.next_version);
        state.next_version += 1;
        state.assigned_size = new_size;

        // Pin the chain base for the duration of the weave: the writer
        // descends the base tree to find borrowable subtrees, and the pin
        // keeps the sweeper from collecting those nodes under its feet even
        // if the retention policy evicts the base version meanwhile.
        let base_version = chain.base.version.0;
        state.pin(base_version);

        // Slot-aligned region the write rebuilds leaves for (used by later
        // writers to link against this one before it finishes weaving).
        let slots = chunk_span(ByteRange::new(offset, len), chunk_size);
        let first = slots.first().expect("len > 0 yields at least one slot");
        let written_slots =
            ByteRange::new(first.index * chunk_size, slots.len() as u64 * chunk_size);
        state.pending.insert(
            version.0,
            PendingWrite {
                summary: WriteSummary {
                    version,
                    written_slots,
                    size: new_size,
                    chunk_size,
                },
                complete: false,
                aborted: false,
                artifacts: None,
                flat: false,
                base_pin: Some(base_version),
            },
        );
        self.stat_tickets.fetch_add(1, Ordering::Relaxed);
        Ok(WriteTicket {
            blob,
            version,
            offset,
            len,
            new_size,
            chunk_size,
            chain,
        })
    }

    /// Reports that the metadata of `version` is fully woven. The version
    /// manager publishes it (and any directly following complete versions)
    /// in order; returns the latest published version after the call.
    ///
    /// Versions completed through this entry point report no node
    /// artifacts, so the lifecycle tracker never considers their nodes (or
    /// the nodes they superseded) collectable — safe, merely unreclaimed.
    /// Lifecycle-aware writers use
    /// [`VersionManager::complete_write_with_artifacts`].
    pub fn complete_write(&self, blob: BlobId, version: Version) -> Result<Version> {
        self.complete_write_with_artifacts(blob, version, None)
    }

    /// [`VersionManager::complete_write`] plus the list of nodes the writer
    /// stored, which feeds snapshot flattening and garbage collection.
    pub fn complete_write_with_artifacts(
        &self,
        blob: BlobId,
        version: Version,
        artifacts: Option<Vec<NodeArtifact>>,
    ) -> Result<Version> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        let pending = state
            .pending
            .get_mut(&version.0)
            .ok_or(BlobError::UnknownVersion(blob, version))?;
        pending.complete = true;
        pending.artifacts = artifacts;
        if let Some(base) = pending.base_pin.take() {
            state.unpin(base);
        }
        let published = state.advance_publication();
        self.journal_commits(blob, &published)?;
        self.stat_published
            .fetch_add(published.len() as u64, Ordering::Relaxed);
        Ok(state.latest_published().version)
    }

    /// Reports that the writer of `version` failed and will never weave its
    /// metadata. The version is published as a no-op snapshot (identical to
    /// its predecessor) so that later writers and readers are not blocked.
    ///
    /// Later writers may have linked against the ranges this write claimed;
    /// those links resolve to nodes the aborted writer never stored, so the
    /// caller (the cluster layer) is expected to weave *repair metadata* for
    /// the aborted version before calling this. See
    /// [`crate::client::BlobClient::repair_aborted_write`].
    pub fn abort_write(&self, blob: BlobId, version: Version) -> Result<Version> {
        self.abort_write_with_artifacts(blob, version, None)
    }

    /// [`VersionManager::abort_write`] plus the artifacts of the *repair*
    /// weave published on the aborted writer's behalf (aliases extending
    /// their borrowed subtrees, hole leaves for the claimed region).
    pub fn abort_write_with_artifacts(
        &self,
        blob: BlobId,
        version: Version,
        artifacts: Option<Vec<NodeArtifact>>,
    ) -> Result<Version> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        let pending = state
            .pending
            .get_mut(&version.0)
            .ok_or(BlobError::UnknownVersion(blob, version))?;
        pending.aborted = true;
        pending.artifacts = artifacts;
        if let Some(base) = pending.base_pin.take() {
            state.unpin(base);
        }
        let published = state.advance_publication();
        self.journal_commits(blob, &published)?;
        self.stat_aborted.fetch_add(1, Ordering::Relaxed);
        self.stat_published
            .fetch_add(published.len() as u64, Ordering::Relaxed);
        Ok(state.latest_published().version)
    }

    /// Journals newly published descriptors, in version order, while the
    /// caller still holds the blob lock — commit records must hit the WAL in
    /// the order they published, or recovery's contiguous-prefix rule would
    /// drop them as torn.
    fn journal_commits(&self, blob: BlobId, published: &[SnapshotDescriptor]) -> Result<()> {
        if published.is_empty() {
            return Ok(());
        }
        if let Some(journal) = self.journal.read().as_ref() {
            for descriptor in published {
                journal.record_commit(blob, descriptor)?;
            }
        }
        Ok(())
    }

    /// Summaries of the writes assigned after the latest published snapshot
    /// (used by repair weaving).
    pub fn pending_summaries(&self, blob: BlobId) -> Result<Vec<WriteSummary>> {
        let state = self.state(blob)?;
        let state = state.lock();
        Ok(state
            .pending
            .values()
            .filter(|p| !p.aborted)
            .map(|p| p.summary)
            .collect())
    }

    /// Descriptor of the latest published snapshot.
    pub fn latest_snapshot(&self, blob: BlobId) -> Result<SnapshotDescriptor> {
        Ok(self.state(blob)?.lock().latest_published())
    }

    /// Descriptor of an arbitrary published snapshot. Versions evicted by
    /// the retention policy answer [`BlobError::VersionRetired`].
    pub fn snapshot(&self, blob: BlobId, version: Version) -> Result<SnapshotDescriptor> {
        self.state(blob)?.lock().lookup(blob, version)
    }

    /// Resolves a snapshot descriptor and pins its version until the
    /// returned guard drops. Readers take a pin before descending the
    /// metadata tree: while any pin on a version is held, the lifecycle
    /// sweeper will not collect a single node or chunk that version can
    /// reach, so a concurrent sweep can never tear an in-flight read.
    /// `version: None` pins the latest published snapshot.
    pub fn pin_snapshot(
        self: &Arc<Self>,
        blob: BlobId,
        version: Option<Version>,
    ) -> Result<(SnapshotDescriptor, VersionPin)> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        let descriptor = match version {
            Some(v) => state.lookup(blob, v)?,
            None => state.latest_published(),
        };
        state.pin(descriptor.version.0);
        let me: Arc<VersionManager> = Arc::clone(self);
        let svc: Arc<dyn VersionService> = me;
        Ok((
            descriptor,
            VersionPin::new(svc, blob, descriptor.version, 0),
        ))
    }

    fn unpin_version(&self, blob: BlobId, version: Version) {
        // The blob may have vanished (nothing deletes blobs today, but stay
        // graceful): a missing state simply means there is nothing to
        // unpin.
        if let Ok(state) = self.state(blob) {
            state.lock().unpin(version.0);
        }
    }

    /// Reserves the next version for a flat (consolidated) snapshot of the
    /// latest published state and pins the source snapshot for the
    /// flattener. Returns `Ok(None)` when flattening is not possible or
    /// pointless right now: writes are in flight (the flattener needs a
    /// quiescent chain so it never blocks or is raced by writers — it
    /// simply retries later), the blob is empty, or the latest snapshot is
    /// already flat.
    ///
    /// The flattener materialises every slot of the blob as a leaf of the
    /// reserved version (chunks are re-referenced, not copied) and then
    /// completes the version like any writer. Readers of a flat snapshot
    /// address its leaves directly instead of descending the tree.
    pub fn begin_flatten(&self, blob: BlobId) -> Result<Option<FlattenTicket>> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        if !state.pending.is_empty() {
            return Ok(None);
        }
        let source = state.latest_published();
        if source.size == 0 || source.flat {
            return Ok(None);
        }
        let chunk_size = source.chunk_size;
        let version = Version(state.next_version);
        state.next_version += 1;
        state.pin(source.version.0);
        let slots = chunk_span(ByteRange::new(0, source.size), chunk_size);
        let first = slots.first().expect("non-empty blob has slots");
        let written_slots =
            ByteRange::new(first.index * chunk_size, slots.len() as u64 * chunk_size);
        state.pending.insert(
            version.0,
            PendingWrite {
                summary: WriteSummary {
                    version,
                    written_slots,
                    size: source.size,
                    chunk_size,
                },
                complete: false,
                aborted: false,
                artifacts: None,
                flat: true,
                base_pin: Some(source.version.0),
            },
        );
        self.stat_tickets.fetch_add(1, Ordering::Relaxed);
        Ok(Some(FlattenTicket {
            blob,
            version,
            source,
        }))
    }

    /// Number of non-flat versions published since the last flat snapshot
    /// (the flattener's trigger counter).
    pub fn writes_since_flatten(&self, blob: BlobId) -> Result<u64> {
        Ok(self.state(blob)?.lock().writes_since_flatten)
    }

    /// Applies the retention policy: evicts every published version older
    /// than the newest `retained` ones. Evicted versions answer
    /// [`BlobError::VersionRetired`] to new readers; in-flight readers that
    /// pinned an evicted version before the call keep reading safely,
    /// because the sweeper honours their pins. `retained == 0` means "keep
    /// everything" (the policy is off). Returns the oldest retained
    /// version.
    pub fn evict_versions(&self, blob: BlobId, retained: usize) -> Result<Version> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        if retained > 0 {
            let target = state.published.len().saturating_sub(retained) as u64;
            if target > state.first_retained {
                state.first_retained = target;
                // Journal the new floor so a restart does not resurrect
                // versions whose chunks the sweeper may already have
                // tombstoned.
                if let Some(journal) = self.journal.read().as_ref() {
                    journal.record_retire(blob, Version(target))?;
                }
            }
        }
        Ok(Version(state.first_retained))
    }

    /// Oldest version still readable for the blob.
    pub fn first_retained(&self, blob: BlobId) -> Result<Version> {
        Ok(Version(self.state(blob)?.lock().first_retained))
    }

    /// Drains every retired chain group that no retained or pinned version
    /// can reach and returns its nodes and chunks for deletion. The caller
    /// (the lifecycle sweeper) performs the actual deletes *without any
    /// version-manager lock held*; once taken, the entries will not be
    /// handed out again, so a sweeper that dies mid-delete leaks at worst —
    /// it never double-frees live data.
    pub fn take_collectable(&self, blob: BlobId) -> Result<CollectableSet> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        let floor = state.sweep_floor();
        let mut set = CollectableSet::default();
        while let Some(front) = state.retired.front() {
            if front.superseded_at > floor {
                break;
            }
            let group = state.retired.pop_front().expect("front checked above");
            for version in group.versions {
                set.nodes.push(NodeKey {
                    blob,
                    version,
                    range: group.range,
                });
            }
            if let Some(chunk) = group.chunk {
                set.chunks.push(chunk);
            }
        }
        Ok(set)
    }

    /// Returns entries a sweeper failed to delete back to the head of the
    /// retired queue, immediately collectable by the next pass. This closes
    /// the sweeper's single-shot leak: [`VersionManager::take_collectable`]
    /// hands entries out exactly once, so without requeueing, a delete that
    /// failed (provider down mid-sweep, metadata plane unreachable) leaked
    /// its garbage forever.
    pub fn requeue_collectable(&self, blob: BlobId, set: CollectableSet) -> Result<()> {
        if set.is_empty() {
            return Ok(());
        }
        let state = self.state(blob)?;
        let mut state = state.lock();
        // `superseded_at: 0` sorts at (and is pushed to) the front, keeping
        // the queue ordered and the entries collectable on any floor.
        for key in set.nodes {
            state.retired.push_front(RetiredGroup {
                superseded_at: 0,
                range: key.range,
                versions: vec![key.version],
                chunk: None,
            });
        }
        for chunk in set.chunks {
            state.retired.push_front(RetiredGroup {
                superseded_at: 0,
                range: ByteRange::new(0, 0),
                versions: Vec::new(),
                chunk: Some(chunk),
            });
        }
        Ok(())
    }

    /// Number of retired chain groups currently queued (collectable or
    /// not), for monitoring and tests.
    pub fn retired_group_count(&self, blob: BlobId) -> Result<usize> {
        Ok(self.state(blob)?.lock().retired.len())
    }

    /// Exports every blob's durable image — id, creation config, published
    /// prefix and retention floor — for a WAL checkpoint.
    pub fn export_blobs(&self) -> Vec<(BlobId, BlobConfig, Vec<SnapshotDescriptor>, Version)> {
        let mut out = Vec::new();
        for id in self.blob_ids() {
            if let Ok(state) = self.state(id) {
                let state = state.lock();
                out.push((
                    id,
                    state.config,
                    state.published.clone(),
                    Version(state.first_retained),
                ));
            }
        }
        out
    }

    /// Every published version of the blob, oldest first.
    pub fn published_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        let state = self.state(blob)?;
        let state = state.lock();
        Ok(state.published.iter().map(|d| d.version).collect())
    }

    /// Number of writes assigned but not yet published for the blob.
    pub fn pending_count(&self, blob: BlobId) -> Result<usize> {
        Ok(self.state(blob)?.lock().pending.len())
    }

    /// Global operation counters.
    pub fn stats(&self) -> VersionManagerStats {
        VersionManagerStats {
            blobs: self.stat_blobs.load(Ordering::Relaxed),
            tickets: self.stat_tickets.load(Ordering::Relaxed),
            published: self.stat_published.load(Ordering::Relaxed),
            aborted: self.stat_aborted.load(Ordering::Relaxed),
        }
    }
}

impl Default for VersionManager {
    fn default() -> Self {
        VersionManager::new()
    }
}

impl VersionService for VersionManager {
    fn create_blob(&self, config: BlobConfig) -> Result<BlobId> {
        VersionManager::create_blob(self, config)
    }

    fn blob_config(&self, blob: BlobId) -> Result<BlobConfig> {
        VersionManager::blob_config(self, blob)
    }

    fn latest_snapshot(&self, blob: BlobId) -> Result<SnapshotDescriptor> {
        VersionManager::latest_snapshot(self, blob)
    }

    fn snapshot(&self, blob: BlobId, version: Version) -> Result<SnapshotDescriptor> {
        VersionManager::snapshot(self, blob, version)
    }

    fn published_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        VersionManager::published_versions(self, blob)
    }

    fn assign_ticket(&self, blob: BlobId, kind: WriteKind) -> Result<WriteTicket> {
        VersionManager::assign_ticket(self, blob, kind)
    }

    fn complete_write(
        &self,
        blob: BlobId,
        version: Version,
        artifacts: Option<Vec<NodeArtifact>>,
    ) -> Result<Version> {
        self.complete_write_with_artifacts(blob, version, artifacts)
    }

    fn abort_write(
        &self,
        blob: BlobId,
        version: Version,
        artifacts: Option<Vec<NodeArtifact>>,
    ) -> Result<Version> {
        self.abort_write_with_artifacts(blob, version, artifacts)
    }

    fn pin(&self, blob: BlobId, version: Option<Version>) -> Result<(SnapshotDescriptor, u64)> {
        // The in-process pin is a reference count keyed by version — no
        // lease state to name, so the token is always 0.
        let state = self.state(blob)?;
        let mut state = state.lock();
        let descriptor = match version {
            Some(v) => state.lookup(blob, v)?,
            None => state.latest_published(),
        };
        state.pin(descriptor.version.0);
        Ok((descriptor, 0))
    }

    fn unpin(&self, blob: BlobId, version: Version, _token: u64) {
        self.unpin_version(blob, version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CS: u64 = 64;

    fn vm_with_blob() -> (VersionManager, BlobId) {
        let vm = VersionManager::new();
        let blob = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        (vm, blob)
    }

    #[test]
    fn create_blob_starts_at_the_empty_snapshot() {
        let (vm, blob) = vm_with_blob();
        let latest = vm.latest_snapshot(blob).unwrap();
        assert_eq!(latest.version, Version::ZERO);
        assert_eq!(latest.size, 0);
        assert_eq!(vm.published_versions(blob).unwrap(), vec![Version::ZERO]);
        assert_eq!(vm.blob_config(blob).unwrap().chunk_size, CS);
        assert_eq!(vm.blob_ids(), vec![blob]);
    }

    #[test]
    fn unknown_blob_is_an_error() {
        let vm = VersionManager::new();
        let ghost = BlobId(999);
        assert!(matches!(
            vm.latest_snapshot(ghost),
            Err(BlobError::UnknownBlob(_))
        ));
        assert!(vm
            .assign_ticket(ghost, WriteKind::Append { len: 1 })
            .is_err());
        assert!(vm.complete_write(ghost, Version(1)).is_err());
        assert!(vm.blob_config(ghost).is_err());
    }

    #[test]
    fn invalid_blob_config_is_rejected() {
        let vm = VersionManager::new();
        assert!(vm
            .create_blob(BlobConfig {
                chunk_size: 0,
                ..BlobConfig::default()
            })
            .is_err());
    }

    #[test]
    fn ticket_resolves_append_offsets_in_assignment_order() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: 100 })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: 50 })
            .unwrap();
        assert_eq!(t1.version, Version(1));
        assert_eq!(t1.offset, 0);
        assert_eq!(t1.new_size, 100);
        assert_eq!(t2.version, Version(2));
        assert_eq!(t2.offset, 100);
        assert_eq!(t2.new_size, 150);
        // The second ticket's chain contains the first writer's summary.
        assert_eq!(t2.chain.pending.len(), 1);
        assert_eq!(t2.chain.pending[0].version, Version(1));
        assert_eq!(t2.chain.base.version, Version::ZERO);
    }

    #[test]
    fn publication_is_strictly_in_version_order() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // Writer 2 finishes first: nothing is published yet.
        let latest = vm.complete_write(blob, t2.version).unwrap();
        assert_eq!(latest, Version::ZERO);
        assert_eq!(vm.pending_count(blob).unwrap(), 2);
        // Writer 1 finishes: both versions become visible at once.
        let latest = vm.complete_write(blob, t1.version).unwrap();
        assert_eq!(latest, Version(2));
        assert_eq!(vm.pending_count(blob).unwrap(), 0);
        assert_eq!(
            vm.published_versions(blob).unwrap(),
            vec![Version(0), Version(1), Version(2)]
        );
        assert_eq!(vm.snapshot(blob, Version(1)).unwrap().size, CS);
        assert_eq!(vm.snapshot(blob, Version(2)).unwrap().size, 2 * CS);
    }

    #[test]
    fn writes_extend_size_only_when_past_the_end() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(
                blob,
                WriteKind::Write {
                    offset: 0,
                    len: 4 * CS,
                },
            )
            .unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        // Overwrite inside the blob: size unchanged.
        let t2 = vm
            .assign_ticket(
                blob,
                WriteKind::Write {
                    offset: CS,
                    len: CS,
                },
            )
            .unwrap();
        assert_eq!(t2.new_size, 4 * CS);
        // Write past the end: size grows.
        let t3 = vm
            .assign_ticket(
                blob,
                WriteKind::Write {
                    offset: 6 * CS,
                    len: CS,
                },
            )
            .unwrap();
        assert_eq!(t3.new_size, 7 * CS);
    }

    #[test]
    fn empty_writes_are_rejected() {
        let (vm, blob) = vm_with_blob();
        assert!(matches!(
            vm.assign_ticket(blob, WriteKind::Append { len: 0 }),
            Err(BlobError::EmptyWrite)
        ));
        assert!(matches!(
            vm.assign_ticket(blob, WriteKind::Write { offset: 10, len: 0 }),
            Err(BlobError::EmptyWrite)
        ));
    }

    #[test]
    fn snapshot_lookup_rejects_unpublished_versions() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        assert!(matches!(
            vm.snapshot(blob, t1.version),
            Err(BlobError::UnknownVersion(_, _))
        ));
        vm.complete_write(blob, t1.version).unwrap();
        assert!(vm.snapshot(blob, t1.version).is_ok());
        assert!(vm.snapshot(blob, Version(99)).is_err());
    }

    #[test]
    fn aborted_writes_publish_as_no_ops() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        // Writer 2 dies.
        let latest = vm.abort_write(blob, t2.version).unwrap();
        assert_eq!(latest, Version(2));
        // Version 2 exists with the size it claimed; its appended region is
        // repaired to holes (zeros) by the repair weave.
        assert_eq!(vm.snapshot(blob, Version(2)).unwrap().size, 2 * CS);
        assert_eq!(vm.stats().aborted, 1);
    }

    #[test]
    fn ticket_chain_excludes_aborted_predecessors() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let _t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.abort_write(blob, Version(2)).unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        let t3 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // Both predecessors already published (v1 complete, v2 aborted), so
        // the chain is empty and based on v2.
        assert!(t3.chain.pending.is_empty());
        assert_eq!(t3.chain.base.version, Version(2));
        // The aborted append still consumed its byte range: the next append
        // lands after it.
        assert_eq!(t3.offset, 2 * CS);
    }

    #[test]
    fn aborting_the_head_of_the_chain_unblocks_successors() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // Writer 2 completes first: still unpublished behind writer 1.
        vm.complete_write(blob, t2.version).unwrap();
        assert_eq!(vm.latest_snapshot(blob).unwrap().version, Version::ZERO);
        // Writer 1 dies. Aborting it must publish both versions at once:
        // v1 as a no-op snapshot, v2 with its data.
        let latest = vm.abort_write(blob, t1.version).unwrap();
        assert_eq!(latest, Version(2));
        assert_eq!(vm.pending_count(blob).unwrap(), 0);
        assert_eq!(vm.snapshot(blob, Version(1)).unwrap().size, CS);
        assert_eq!(vm.snapshot(blob, Version(2)).unwrap().size, 2 * CS);
        assert_eq!(vm.stats().aborted, 1);
        assert_eq!(vm.stats().published, 2);
    }

    #[test]
    fn every_abort_is_counted() {
        let (vm, blob) = vm_with_blob();
        for expected in 1..=3u64 {
            let t = vm
                .assign_ticket(blob, WriteKind::Append { len: CS })
                .unwrap();
            vm.abort_write(blob, t.version).unwrap();
            assert_eq!(vm.stats().aborted, expected);
        }
        // Three aborted appends: three no-op snapshots, size still grows
        // because each aborted append consumed its byte range.
        assert_eq!(vm.latest_snapshot(blob).unwrap().version, Version(3));
        assert_eq!(vm.latest_snapshot(blob).unwrap().size, 3 * CS);
    }

    #[test]
    fn abort_of_unknown_or_settled_versions_is_rejected() {
        let (vm, blob) = vm_with_blob();
        assert!(matches!(
            vm.abort_write(blob, Version(9)),
            Err(BlobError::UnknownVersion(_, _))
        ));
        let t = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.complete_write(blob, t.version).unwrap();
        // Already published: there is no pending entry left to abort.
        assert!(vm.abort_write(blob, t.version).is_err());
        assert_eq!(vm.stats().aborted, 0);
        assert!(vm.abort_write(BlobId(999), Version(1)).is_err());
    }

    #[test]
    fn stats_track_operations() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        let stats = vm.stats();
        assert_eq!(stats.blobs, 1);
        assert_eq!(stats.tickets, 1);
        assert_eq!(stats.published, 1);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn distinct_blobs_never_share_a_lock() {
        use std::sync::mpsc;
        use std::time::Duration;
        let vm = Arc::new(VersionManager::new());
        let a = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let b = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        // Hold blob a's per-blob lock for the whole test, as a stuck writer
        // would.
        let a_state = vm.state(a).unwrap();
        let _guard = a_state.lock();
        // A full ticket + publish cycle on blob b must complete anyway: with
        // the old global blob map mutex this deadlocked.
        let (tx, rx) = mpsc::channel();
        let vm2 = Arc::clone(&vm);
        let worker = std::thread::spawn(move || {
            let t = vm2.assign_ticket(b, WriteKind::Append { len: CS }).unwrap();
            vm2.complete_write(b, t.version).unwrap();
            let _ = tx.send(t.version);
        });
        let version = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("operations on blob b blocked behind blob a's lock");
        assert_eq!(version, Version(1));
        worker.join().unwrap();
        assert_eq!(vm.latest_snapshot(b).unwrap().version, Version(1));
    }

    #[test]
    fn many_threads_get_distinct_versions() {
        use std::sync::Arc;
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let vm = Arc::clone(&vm);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|_| {
                        let t = vm
                            .assign_ticket(blob, WriteKind::Append { len: CS })
                            .unwrap();
                        vm.complete_write(blob, t.version).unwrap();
                        t.version.0
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut versions: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        versions.sort_unstable();
        versions.dedup();
        assert_eq!(versions.len(), 400, "versions must be unique");
        // After all writers completed, everything is published.
        assert_eq!(vm.latest_snapshot(blob).unwrap().version, Version(400));
        assert_eq!(vm.latest_snapshot(blob).unwrap().size, 400 * CS);
        assert_eq!(vm.pending_count(blob).unwrap(), 0);
    }

    // ------------------------------------------------------------------
    // Version lifecycle: retention, pins, flattening, collection.
    // ------------------------------------------------------------------

    fn chunk_for(blob: BlobId, tag: u64) -> ChunkId {
        ChunkId {
            blob,
            write_tag: tag,
            slot: 0,
        }
    }

    fn leaf_artifact(chunk: Option<ChunkId>) -> Vec<NodeArtifact> {
        vec![NodeArtifact {
            range: ByteRange::new(0, CS),
            kind: ArtifactKind::Leaf {
                chunk: chunk.map(|c| (c, vec![ProviderId(0)])),
            },
        }]
    }

    /// Publishes one slot-0 overwrite carrying a leaf artifact for `chunk`.
    fn publish_leaf(vm: &VersionManager, blob: BlobId, chunk: Option<ChunkId>) -> Version {
        let t = vm
            .assign_ticket(blob, WriteKind::Write { offset: 0, len: CS })
            .unwrap();
        vm.complete_write_with_artifacts(blob, t.version, Some(leaf_artifact(chunk)))
            .unwrap();
        t.version
    }

    #[test]
    fn eviction_gates_reads_and_is_monotone() {
        let (vm, blob) = vm_with_blob();
        for _ in 0..4 {
            publish_leaf(&vm, blob, None);
        }
        // retained == 0 means the policy is off: nothing is evicted.
        assert_eq!(vm.evict_versions(blob, 0).unwrap(), Version::ZERO);
        assert!(vm.snapshot(blob, Version::ZERO).is_ok());
        // Keep the newest two of the five published versions (0..=4).
        assert_eq!(vm.evict_versions(blob, 2).unwrap(), Version(3));
        assert_eq!(vm.first_retained(blob).unwrap(), Version(3));
        for evicted in 0..3 {
            assert!(matches!(
                vm.snapshot(blob, Version(evicted)),
                Err(BlobError::VersionRetired { .. })
            ));
        }
        assert!(vm.snapshot(blob, Version(3)).is_ok());
        assert!(vm.snapshot(blob, Version(4)).is_ok());
        // A wider window later never resurrects evicted versions: the
        // retention floor only moves forward.
        assert_eq!(vm.evict_versions(blob, 100).unwrap(), Version(3));
        assert!(matches!(
            vm.snapshot(blob, Version(2)),
            Err(BlobError::VersionRetired { .. })
        ));
    }

    #[test]
    fn supersession_retires_nodes_and_chunks() {
        let (vm, blob) = vm_with_blob();
        let old_chunk = chunk_for(blob, 1);
        let v1 = publish_leaf(&vm, blob, Some(old_chunk));
        publish_leaf(&vm, blob, Some(chunk_for(blob, 2)));
        assert_eq!(vm.retired_group_count(blob).unwrap(), 1);
        // The superseding version (2) is still below the sweep floor until
        // eviction passes it: nothing is collectable yet.
        assert!(vm.take_collectable(blob).unwrap().is_empty());
        vm.evict_versions(blob, 1).unwrap();
        let set = vm.take_collectable(blob).unwrap();
        assert_eq!(
            set.nodes,
            vec![NodeKey {
                blob,
                version: v1,
                range: ByteRange::new(0, CS),
            }]
        );
        assert_eq!(set.chunks.len(), 1);
        assert_eq!(set.chunks[0].0, old_chunk);
        // Collection is single-shot: once taken, the entries are gone.
        assert!(vm.take_collectable(blob).unwrap().is_empty());
        assert_eq!(vm.retired_group_count(blob).unwrap(), 0);
    }

    #[test]
    fn reader_pins_defer_collection_without_blocking_it() {
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let v1 = publish_leaf(&vm, blob, Some(chunk_for(blob, 1)));
        let (descriptor, pin) = vm.pin_snapshot(blob, Some(v1)).unwrap();
        assert_eq!(descriptor.version, v1);
        assert_eq!(pin.version(), v1);
        publish_leaf(&vm, blob, Some(chunk_for(blob, 2)));
        vm.evict_versions(blob, 1).unwrap();
        // The reader pinned v1 before eviction: its group stays uncollectable
        // (the sweeper defers, it never waits), and the pinned version keeps
        // answering lookups for in-flight use.
        assert!(vm.take_collectable(blob).unwrap().is_empty());
        assert_eq!(vm.retired_group_count(blob).unwrap(), 1);
        drop(pin);
        let set = vm.take_collectable(blob).unwrap();
        assert_eq!(set.nodes.len(), 1);
        assert_eq!(set.chunks.len(), 1);
    }

    #[test]
    fn pinning_an_evicted_version_is_rejected() {
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        publish_leaf(&vm, blob, None);
        publish_leaf(&vm, blob, None);
        vm.evict_versions(blob, 1).unwrap();
        assert!(matches!(
            vm.pin_snapshot(blob, Some(Version(1))),
            Err(BlobError::VersionRetired { .. })
        ));
        // The latest snapshot is always pinnable.
        assert!(vm.pin_snapshot(blob, None).is_ok());
    }

    #[test]
    fn repair_aliases_extend_the_borrowed_group() {
        let (vm, blob) = vm_with_blob();
        let old_chunk = chunk_for(blob, 1);
        let v1 = publish_leaf(&vm, blob, Some(old_chunk));
        // A repair weave aliases the range instead of storing a fresh node:
        // the alias joins v1's group rather than retiring it.
        let t = vm
            .assign_ticket(blob, WriteKind::Write { offset: 0, len: CS })
            .unwrap();
        vm.complete_write_with_artifacts(
            blob,
            t.version,
            Some(vec![NodeArtifact {
                range: ByteRange::new(0, CS),
                kind: ArtifactKind::Alias,
            }]),
        )
        .unwrap();
        assert_eq!(vm.retired_group_count(blob).unwrap(), 0);
        // A later fresh leaf retires the whole group: both referencing
        // versions' nodes plus the chunk go together.
        let v3 = publish_leaf(&vm, blob, Some(chunk_for(blob, 2)));
        vm.evict_versions(blob, 1).unwrap();
        let set = vm.take_collectable(blob).unwrap();
        let mut versions: Vec<Version> = set.nodes.iter().map(|k| k.version).collect();
        versions.sort();
        assert_eq!(versions, vec![v1, t.version]);
        assert_eq!(set.chunks[0].0, old_chunk);
        assert_eq!(vm.first_retained(blob).unwrap(), v3);
    }

    #[test]
    fn chunk_ownership_transfers_to_a_re_referencing_leaf() {
        let (vm, blob) = vm_with_blob();
        let shared = chunk_for(blob, 1);
        let v1 = publish_leaf(&vm, blob, Some(shared));
        // A flat snapshot stores a fresh leaf pointing at the *same* chunk:
        // the old tree node retires, the chunk stays live with the new leaf.
        publish_leaf(&vm, blob, Some(shared));
        vm.evict_versions(blob, 1).unwrap();
        let set = vm.take_collectable(blob).unwrap();
        assert_eq!(set.nodes.len(), 1);
        assert_eq!(set.nodes[0].version, v1);
        assert!(
            set.chunks.is_empty(),
            "a chunk re-referenced by the superseding leaf must never be freed"
        );
    }

    #[test]
    fn begin_flatten_requires_a_quiescent_non_flat_chain() {
        let (vm, blob) = vm_with_blob();
        // Empty blob: nothing to flatten.
        assert!(vm.begin_flatten(blob).unwrap().is_none());
        let t = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // A write is in flight: the flattener backs off instead of racing it.
        assert!(vm.begin_flatten(blob).unwrap().is_none());
        vm.complete_write(blob, t.version).unwrap();
        assert_eq!(vm.writes_since_flatten(blob).unwrap(), 1);
        let ticket = vm.begin_flatten(blob).unwrap().expect("flatten possible");
        assert_eq!(ticket.source.version, t.version);
        assert_eq!(ticket.version, Version(2));
        // The reserved flatten version occupies the chain: no second
        // flattener can start meanwhile.
        assert!(vm.begin_flatten(blob).unwrap().is_none());
        vm.complete_write_with_artifacts(
            blob,
            ticket.version,
            Some(leaf_artifact(Some(chunk_for(blob, 1)))),
        )
        .unwrap();
        let latest = vm.latest_snapshot(blob).unwrap();
        assert!(latest.flat, "a completed flatten publishes a flat snapshot");
        assert_eq!(latest.size, CS);
        assert_eq!(vm.writes_since_flatten(blob).unwrap(), 0);
        // Already flat: flattening again is pointless.
        assert!(vm.begin_flatten(blob).unwrap().is_none());
    }

    #[test]
    fn aborted_flatten_publishes_a_non_flat_no_op() {
        let (vm, blob) = vm_with_blob();
        publish_leaf(&vm, blob, None);
        let ticket = vm.begin_flatten(blob).unwrap().expect("flatten possible");
        vm.abort_write(blob, ticket.version).unwrap();
        let latest = vm.latest_snapshot(blob).unwrap();
        assert_eq!(latest.version, ticket.version);
        assert!(
            !latest.flat,
            "an aborted flatten must not claim flat layout"
        );
        // The counter keeps growing: the aborted attempt consolidated
        // nothing.
        assert_eq!(vm.writes_since_flatten(blob).unwrap(), 2);
        // And the blob can be flattened again afterwards.
        assert!(vm.begin_flatten(blob).unwrap().is_some());
    }

    #[test]
    fn writer_base_pins_hold_the_sweep_floor_while_weaving() {
        let (vm, blob) = vm_with_blob();
        let old_chunk = chunk_for(blob, 1);
        publish_leaf(&vm, blob, Some(old_chunk));
        // A writer starts weaving against v1 (its chain base is pinned),
        // then a faster writer supersedes the range and eviction passes v1.
        let slow = vm
            .assign_ticket(blob, WriteKind::Write { offset: 0, len: CS })
            .unwrap();
        assert_eq!(slow.chain.base.version, Version(1));
        let fast = vm
            .assign_ticket(blob, WriteKind::Write { offset: 0, len: CS })
            .unwrap();
        vm.complete_write_with_artifacts(
            blob,
            fast.version,
            Some(leaf_artifact(Some(chunk_for(blob, 2)))),
        )
        .unwrap();
        // fast cannot publish while slow is unsettled (in-order publication),
        // so nothing retires yet; but even after slow settles and everything
        // publishes, the base pin must have protected v1's nodes while the
        // slow writer was still descending them.
        assert!(vm.take_collectable(blob).unwrap().is_empty());
        vm.complete_write_with_artifacts(blob, slow.version, Some(leaf_artifact(None)))
            .unwrap();
        vm.evict_versions(blob, 1).unwrap();
        let set = vm.take_collectable(blob).unwrap();
        // Both superseded groups (v1's leaf via slow's hole leaf, slow's via
        // fast's) are reclaimed now that no writer pins the chain.
        assert_eq!(set.nodes.len(), 2);
        assert_eq!(set.chunks.len(), 1);
        assert_eq!(set.chunks[0].0, old_chunk);
    }
}
