//! The version manager.
//!
//! The version manager is the (lightweight) serialisation point of BlobSeer:
//! it assigns a version to every write or append, resolves the offset of
//! appends, hands writers the [`ReferenceChain`] they weave their metadata
//! against, and publishes versions **strictly in assignment order** once
//! their metadata is complete. Reads only ever observe published versions,
//! which is what makes the whole protocol linearizable while keeping readers
//! and writers fully decoupled.

use blobseer_meta::{ReferenceChain, SnapshotDescriptor, WriteSummary};
use blobseer_types::{
    chunk_span, BlobConfig, BlobError, BlobId, ByteRange, IdGenerator, Result, Version,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of mutation a client asks a ticket for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Write `len` bytes at an explicit `offset`.
    Write {
        /// First byte written.
        offset: u64,
        /// Number of bytes written.
        len: u64,
    },
    /// Append `len` bytes at the current end of the blob (the offset is
    /// resolved by the version manager at assignment time).
    Append {
        /// Number of bytes appended.
        len: u64,
    },
}

impl WriteKind {
    fn len(&self) -> u64 {
        match self {
            WriteKind::Write { len, .. } | WriteKind::Append { len } => *len,
        }
    }
}

/// Everything a writer needs to perform its write: the assigned version, the
/// resolved offset, and the reference chain to weave metadata against.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteTicket {
    /// Blob being written.
    pub blob: BlobId,
    /// Version assigned to this write.
    pub version: Version,
    /// Resolved first byte of the write (equals the snapshot size at
    /// assignment time for appends).
    pub offset: u64,
    /// Number of bytes the write covers.
    pub len: u64,
    /// Blob size once this write is applied.
    pub new_size: u64,
    /// Chunk size of the blob.
    pub chunk_size: u64,
    /// Reference view the writer resolves borrowed subtrees against.
    pub chain: ReferenceChain,
}

/// Statistics of the version manager, used by monitoring and the benchmark
/// harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionManagerStats {
    /// Blobs created.
    pub blobs: u64,
    /// Tickets assigned.
    pub tickets: u64,
    /// Versions published.
    pub published: u64,
    /// Writes aborted.
    pub aborted: u64,
}

#[derive(Debug, Clone)]
struct PendingWrite {
    summary: WriteSummary,
    complete: bool,
    aborted: bool,
}

#[derive(Debug)]
struct BlobState {
    config: BlobConfig,
    /// Published snapshot descriptors, indexed by version number.
    published: Vec<SnapshotDescriptor>,
    /// Assigned but not yet published writes, keyed by version number.
    pending: BTreeMap<u64, PendingWrite>,
    /// Next version to assign.
    next_version: u64,
    /// Blob size after the latest assigned (not necessarily published)
    /// write; appends are placed here.
    assigned_size: u64,
}

impl BlobState {
    fn new(config: BlobConfig) -> Self {
        BlobState {
            published: vec![SnapshotDescriptor::initial(config.chunk_size)],
            pending: BTreeMap::new(),
            next_version: 1,
            assigned_size: 0,
            config,
        }
    }

    fn latest_published(&self) -> SnapshotDescriptor {
        *self
            .published
            .last()
            .expect("a blob always has at least the empty snapshot")
    }

    /// The chain a new writer links against: the latest published snapshot
    /// plus every live pending write, in version order.
    fn reference_chain(&self) -> ReferenceChain {
        ReferenceChain {
            base: self.latest_published(),
            pending: self
                .pending
                .values()
                .filter(|p| !p.aborted)
                .map(|p| p.summary)
                .collect(),
        }
    }

    /// Publishes every complete pending write that directly follows the
    /// published prefix; returns how many versions were published.
    fn advance_publication(&mut self) -> u64 {
        let mut published = 0;
        loop {
            let next = self.published.len() as u64;
            match self.pending.get(&next) {
                Some(p) if p.aborted || p.complete => {
                    // Aborted writes publish with the size they claimed: the
                    // repair weave (see `blobseer_meta::build_repair_metadata`)
                    // gives the claimed-but-unwritten region hole semantics,
                    // so readers of the aborted version see zeros there.
                    self.published.push(SnapshotDescriptor {
                        version: Version(next),
                        size: p.summary.size,
                        chunk_size: p.summary.chunk_size,
                    });
                    self.pending.remove(&next);
                    published += 1;
                }
                _ => break,
            }
        }
        published
    }
}

/// Number of shards the blob map is split into. A power of two so the shard
/// index is a mask; 32 shards keep the map-level critical sections invisible
/// even with hundreds of client threads creating blobs.
const VM_SHARDS: usize = 32;

/// The version manager service. One instance serves every blob of a
/// deployment; all methods are safe to call from many client threads.
///
/// The serialisation the paper's protocol actually needs is *per blob*
/// (version assignment and in-order publication of one blob's writes), so
/// that is the only lock this type takes on the hot path: blob states live
/// behind individual mutexes inside a sharded, read-mostly outer map.
/// Operations on distinct blobs never contend on any shared lock — the shard
/// maps are only write-locked by blob creation — and the global counters are
/// plain atomics.
pub struct VersionManager {
    shards: Vec<RwLock<HashMap<BlobId, Arc<Mutex<BlobState>>>>>,
    blob_ids: IdGenerator,
    stat_blobs: AtomicU64,
    stat_tickets: AtomicU64,
    stat_published: AtomicU64,
    stat_aborted: AtomicU64,
}

impl VersionManager {
    /// Creates an empty version manager.
    #[must_use]
    pub fn new() -> Self {
        VersionManager {
            shards: (0..VM_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            blob_ids: IdGenerator::starting_at(1),
            stat_blobs: AtomicU64::new(0),
            stat_tickets: AtomicU64::new(0),
            stat_published: AtomicU64::new(0),
            stat_aborted: AtomicU64::new(0),
        }
    }

    fn shard(&self, blob: BlobId) -> &RwLock<HashMap<BlobId, Arc<Mutex<BlobState>>>> {
        &self.shards[(blob.0 as usize) & (VM_SHARDS - 1)]
    }

    /// The state handle of one blob: cloned out of the shard map under a
    /// read lock, so holding the returned per-blob mutex never blocks
    /// operations on other blobs.
    fn state(&self, blob: BlobId) -> Result<Arc<Mutex<BlobState>>> {
        self.shard(blob)
            .read()
            .get(&blob)
            .cloned()
            .ok_or(BlobError::UnknownBlob(blob))
    }

    /// Registers a new blob and returns its identifier. The blob starts at
    /// version 0 (the empty snapshot).
    pub fn create_blob(&self, config: BlobConfig) -> Result<BlobId> {
        config.validate()?;
        let id = BlobId(self.blob_ids.next_id());
        self.shard(id)
            .write()
            .insert(id, Arc::new(Mutex::new(BlobState::new(config))));
        self.stat_blobs.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// The configuration a blob was created with.
    pub fn blob_config(&self, blob: BlobId) -> Result<BlobConfig> {
        Ok(self.state(blob)?.lock().config)
    }

    /// All blobs currently registered.
    pub fn blob_ids(&self) -> Vec<BlobId> {
        let mut ids: Vec<BlobId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Assigns a version (and, for appends, an offset) to a write.
    pub fn assign_ticket(&self, blob: BlobId, kind: WriteKind) -> Result<WriteTicket> {
        if kind.len() == 0 {
            return Err(BlobError::EmptyWrite);
        }
        let state = self.state(blob)?;
        let mut state = state.lock();
        let chunk_size = state.config.chunk_size;
        let (offset, len) = match kind {
            WriteKind::Write { offset, len } => (offset, len),
            WriteKind::Append { len } => (state.assigned_size, len),
        };
        let new_size = state.assigned_size.max(offset + len);
        let chain = state.reference_chain();
        let version = Version(state.next_version);
        state.next_version += 1;
        state.assigned_size = new_size;

        // Slot-aligned region the write rebuilds leaves for (used by later
        // writers to link against this one before it finishes weaving).
        let slots = chunk_span(ByteRange::new(offset, len), chunk_size);
        let first = slots.first().expect("len > 0 yields at least one slot");
        let written_slots =
            ByteRange::new(first.index * chunk_size, slots.len() as u64 * chunk_size);
        state.pending.insert(
            version.0,
            PendingWrite {
                summary: WriteSummary {
                    version,
                    written_slots,
                    size: new_size,
                    chunk_size,
                },
                complete: false,
                aborted: false,
            },
        );
        self.stat_tickets.fetch_add(1, Ordering::Relaxed);
        Ok(WriteTicket {
            blob,
            version,
            offset,
            len,
            new_size,
            chunk_size,
            chain,
        })
    }

    /// Reports that the metadata of `version` is fully woven. The version
    /// manager publishes it (and any directly following complete versions)
    /// in order; returns the latest published version after the call.
    pub fn complete_write(&self, blob: BlobId, version: Version) -> Result<Version> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        let pending = state
            .pending
            .get_mut(&version.0)
            .ok_or(BlobError::UnknownVersion(blob, version))?;
        pending.complete = true;
        let published = state.advance_publication();
        self.stat_published.fetch_add(published, Ordering::Relaxed);
        Ok(state.latest_published().version)
    }

    /// Reports that the writer of `version` failed and will never weave its
    /// metadata. The version is published as a no-op snapshot (identical to
    /// its predecessor) so that later writers and readers are not blocked.
    ///
    /// Later writers may have linked against the ranges this write claimed;
    /// those links resolve to nodes the aborted writer never stored, so the
    /// caller (the cluster layer) is expected to weave *repair metadata* for
    /// the aborted version before calling this. See
    /// [`crate::client::BlobClient::repair_aborted_write`].
    pub fn abort_write(&self, blob: BlobId, version: Version) -> Result<Version> {
        let state = self.state(blob)?;
        let mut state = state.lock();
        let pending = state
            .pending
            .get_mut(&version.0)
            .ok_or(BlobError::UnknownVersion(blob, version))?;
        pending.aborted = true;
        let published = state.advance_publication();
        self.stat_aborted.fetch_add(1, Ordering::Relaxed);
        self.stat_published.fetch_add(published, Ordering::Relaxed);
        Ok(state.latest_published().version)
    }

    /// Summaries of the writes assigned after the latest published snapshot
    /// (used by repair weaving).
    pub fn pending_summaries(&self, blob: BlobId) -> Result<Vec<WriteSummary>> {
        let state = self.state(blob)?;
        let state = state.lock();
        Ok(state
            .pending
            .values()
            .filter(|p| !p.aborted)
            .map(|p| p.summary)
            .collect())
    }

    /// Descriptor of the latest published snapshot.
    pub fn latest_snapshot(&self, blob: BlobId) -> Result<SnapshotDescriptor> {
        Ok(self.state(blob)?.lock().latest_published())
    }

    /// Descriptor of an arbitrary published snapshot.
    pub fn snapshot(&self, blob: BlobId, version: Version) -> Result<SnapshotDescriptor> {
        self.state(blob)?
            .lock()
            .published
            .get(version.0 as usize)
            .copied()
            .ok_or(BlobError::UnknownVersion(blob, version))
    }

    /// Every published version of the blob, oldest first.
    pub fn published_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        let state = self.state(blob)?;
        let state = state.lock();
        Ok(state.published.iter().map(|d| d.version).collect())
    }

    /// Number of writes assigned but not yet published for the blob.
    pub fn pending_count(&self, blob: BlobId) -> Result<usize> {
        Ok(self.state(blob)?.lock().pending.len())
    }

    /// Global operation counters.
    pub fn stats(&self) -> VersionManagerStats {
        VersionManagerStats {
            blobs: self.stat_blobs.load(Ordering::Relaxed),
            tickets: self.stat_tickets.load(Ordering::Relaxed),
            published: self.stat_published.load(Ordering::Relaxed),
            aborted: self.stat_aborted.load(Ordering::Relaxed),
        }
    }
}

impl Default for VersionManager {
    fn default() -> Self {
        VersionManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CS: u64 = 64;

    fn vm_with_blob() -> (VersionManager, BlobId) {
        let vm = VersionManager::new();
        let blob = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        (vm, blob)
    }

    #[test]
    fn create_blob_starts_at_the_empty_snapshot() {
        let (vm, blob) = vm_with_blob();
        let latest = vm.latest_snapshot(blob).unwrap();
        assert_eq!(latest.version, Version::ZERO);
        assert_eq!(latest.size, 0);
        assert_eq!(vm.published_versions(blob).unwrap(), vec![Version::ZERO]);
        assert_eq!(vm.blob_config(blob).unwrap().chunk_size, CS);
        assert_eq!(vm.blob_ids(), vec![blob]);
    }

    #[test]
    fn unknown_blob_is_an_error() {
        let vm = VersionManager::new();
        let ghost = BlobId(999);
        assert!(matches!(
            vm.latest_snapshot(ghost),
            Err(BlobError::UnknownBlob(_))
        ));
        assert!(vm
            .assign_ticket(ghost, WriteKind::Append { len: 1 })
            .is_err());
        assert!(vm.complete_write(ghost, Version(1)).is_err());
        assert!(vm.blob_config(ghost).is_err());
    }

    #[test]
    fn invalid_blob_config_is_rejected() {
        let vm = VersionManager::new();
        assert!(vm
            .create_blob(BlobConfig {
                chunk_size: 0,
                ..BlobConfig::default()
            })
            .is_err());
    }

    #[test]
    fn ticket_resolves_append_offsets_in_assignment_order() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: 100 })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: 50 })
            .unwrap();
        assert_eq!(t1.version, Version(1));
        assert_eq!(t1.offset, 0);
        assert_eq!(t1.new_size, 100);
        assert_eq!(t2.version, Version(2));
        assert_eq!(t2.offset, 100);
        assert_eq!(t2.new_size, 150);
        // The second ticket's chain contains the first writer's summary.
        assert_eq!(t2.chain.pending.len(), 1);
        assert_eq!(t2.chain.pending[0].version, Version(1));
        assert_eq!(t2.chain.base.version, Version::ZERO);
    }

    #[test]
    fn publication_is_strictly_in_version_order() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // Writer 2 finishes first: nothing is published yet.
        let latest = vm.complete_write(blob, t2.version).unwrap();
        assert_eq!(latest, Version::ZERO);
        assert_eq!(vm.pending_count(blob).unwrap(), 2);
        // Writer 1 finishes: both versions become visible at once.
        let latest = vm.complete_write(blob, t1.version).unwrap();
        assert_eq!(latest, Version(2));
        assert_eq!(vm.pending_count(blob).unwrap(), 0);
        assert_eq!(
            vm.published_versions(blob).unwrap(),
            vec![Version(0), Version(1), Version(2)]
        );
        assert_eq!(vm.snapshot(blob, Version(1)).unwrap().size, CS);
        assert_eq!(vm.snapshot(blob, Version(2)).unwrap().size, 2 * CS);
    }

    #[test]
    fn writes_extend_size_only_when_past_the_end() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(
                blob,
                WriteKind::Write {
                    offset: 0,
                    len: 4 * CS,
                },
            )
            .unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        // Overwrite inside the blob: size unchanged.
        let t2 = vm
            .assign_ticket(
                blob,
                WriteKind::Write {
                    offset: CS,
                    len: CS,
                },
            )
            .unwrap();
        assert_eq!(t2.new_size, 4 * CS);
        // Write past the end: size grows.
        let t3 = vm
            .assign_ticket(
                blob,
                WriteKind::Write {
                    offset: 6 * CS,
                    len: CS,
                },
            )
            .unwrap();
        assert_eq!(t3.new_size, 7 * CS);
    }

    #[test]
    fn empty_writes_are_rejected() {
        let (vm, blob) = vm_with_blob();
        assert!(matches!(
            vm.assign_ticket(blob, WriteKind::Append { len: 0 }),
            Err(BlobError::EmptyWrite)
        ));
        assert!(matches!(
            vm.assign_ticket(blob, WriteKind::Write { offset: 10, len: 0 }),
            Err(BlobError::EmptyWrite)
        ));
    }

    #[test]
    fn snapshot_lookup_rejects_unpublished_versions() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        assert!(matches!(
            vm.snapshot(blob, t1.version),
            Err(BlobError::UnknownVersion(_, _))
        ));
        vm.complete_write(blob, t1.version).unwrap();
        assert!(vm.snapshot(blob, t1.version).is_ok());
        assert!(vm.snapshot(blob, Version(99)).is_err());
    }

    #[test]
    fn aborted_writes_publish_as_no_ops() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        // Writer 2 dies.
        let latest = vm.abort_write(blob, t2.version).unwrap();
        assert_eq!(latest, Version(2));
        // Version 2 exists with the size it claimed; its appended region is
        // repaired to holes (zeros) by the repair weave.
        assert_eq!(vm.snapshot(blob, Version(2)).unwrap().size, 2 * CS);
        assert_eq!(vm.stats().aborted, 1);
    }

    #[test]
    fn ticket_chain_excludes_aborted_predecessors() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let _t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.abort_write(blob, Version(2)).unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        let t3 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // Both predecessors already published (v1 complete, v2 aborted), so
        // the chain is empty and based on v2.
        assert!(t3.chain.pending.is_empty());
        assert_eq!(t3.chain.base.version, Version(2));
        // The aborted append still consumed its byte range: the next append
        // lands after it.
        assert_eq!(t3.offset, 2 * CS);
    }

    #[test]
    fn aborting_the_head_of_the_chain_unblocks_successors() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        let t2 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        // Writer 2 completes first: still unpublished behind writer 1.
        vm.complete_write(blob, t2.version).unwrap();
        assert_eq!(vm.latest_snapshot(blob).unwrap().version, Version::ZERO);
        // Writer 1 dies. Aborting it must publish both versions at once:
        // v1 as a no-op snapshot, v2 with its data.
        let latest = vm.abort_write(blob, t1.version).unwrap();
        assert_eq!(latest, Version(2));
        assert_eq!(vm.pending_count(blob).unwrap(), 0);
        assert_eq!(vm.snapshot(blob, Version(1)).unwrap().size, CS);
        assert_eq!(vm.snapshot(blob, Version(2)).unwrap().size, 2 * CS);
        assert_eq!(vm.stats().aborted, 1);
        assert_eq!(vm.stats().published, 2);
    }

    #[test]
    fn every_abort_is_counted() {
        let (vm, blob) = vm_with_blob();
        for expected in 1..=3u64 {
            let t = vm
                .assign_ticket(blob, WriteKind::Append { len: CS })
                .unwrap();
            vm.abort_write(blob, t.version).unwrap();
            assert_eq!(vm.stats().aborted, expected);
        }
        // Three aborted appends: three no-op snapshots, size still grows
        // because each aborted append consumed its byte range.
        assert_eq!(vm.latest_snapshot(blob).unwrap().version, Version(3));
        assert_eq!(vm.latest_snapshot(blob).unwrap().size, 3 * CS);
    }

    #[test]
    fn abort_of_unknown_or_settled_versions_is_rejected() {
        let (vm, blob) = vm_with_blob();
        assert!(matches!(
            vm.abort_write(blob, Version(9)),
            Err(BlobError::UnknownVersion(_, _))
        ));
        let t = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.complete_write(blob, t.version).unwrap();
        // Already published: there is no pending entry left to abort.
        assert!(vm.abort_write(blob, t.version).is_err());
        assert_eq!(vm.stats().aborted, 0);
        assert!(vm.abort_write(BlobId(999), Version(1)).is_err());
    }

    #[test]
    fn stats_track_operations() {
        let (vm, blob) = vm_with_blob();
        let t1 = vm
            .assign_ticket(blob, WriteKind::Append { len: CS })
            .unwrap();
        vm.complete_write(blob, t1.version).unwrap();
        let stats = vm.stats();
        assert_eq!(stats.blobs, 1);
        assert_eq!(stats.tickets, 1);
        assert_eq!(stats.published, 1);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn distinct_blobs_never_share_a_lock() {
        use std::sync::mpsc;
        use std::time::Duration;
        let vm = Arc::new(VersionManager::new());
        let a = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let b = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        // Hold blob a's per-blob lock for the whole test, as a stuck writer
        // would.
        let a_state = vm.state(a).unwrap();
        let _guard = a_state.lock();
        // A full ticket + publish cycle on blob b must complete anyway: with
        // the old global blob map mutex this deadlocked.
        let (tx, rx) = mpsc::channel();
        let vm2 = Arc::clone(&vm);
        let worker = std::thread::spawn(move || {
            let t = vm2.assign_ticket(b, WriteKind::Append { len: CS }).unwrap();
            vm2.complete_write(b, t.version).unwrap();
            let _ = tx.send(t.version);
        });
        let version = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("operations on blob b blocked behind blob a's lock");
        assert_eq!(version, Version(1));
        worker.join().unwrap();
        assert_eq!(vm.latest_snapshot(b).unwrap().version, Version(1));
    }

    #[test]
    fn many_threads_get_distinct_versions() {
        use std::sync::Arc;
        let vm = Arc::new(VersionManager::new());
        let blob = vm.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let vm = Arc::clone(&vm);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|_| {
                        let t = vm
                            .assign_ticket(blob, WriteKind::Append { len: CS })
                            .unwrap();
                        vm.complete_write(blob, t.version).unwrap();
                        t.version.0
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut versions: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        versions.sort_unstable();
        versions.dedup();
        assert_eq!(versions.len(), 400, "versions must be unique");
        // After all writers completed, everything is published.
        assert_eq!(vm.latest_snapshot(blob).unwrap().version, Version(400));
        assert_eq!(vm.latest_snapshot(blob).unwrap().size, 400 * CS);
        assert_eq!(vm.pending_count(blob).unwrap(), 0);
    }
}
