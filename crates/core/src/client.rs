//! The BlobSeer client library.
//!
//! A [`BlobClient`] implements the access interface of the paper: create a
//! blob, read a range of any published snapshot, write a range (producing a
//! new snapshot) and append (producing a new snapshot whose offset is
//! resolved by the version manager). All the heavy lifting — chunking,
//! boundary merging, placement, replication, parallel chunk transfer,
//! metadata weaving and publication — happens here, so that the service
//! processes stay as small as the paper describes them.
//!
//! Clients are decoupled from the deployment: they talk to metadata through
//! a [`MetadataService`] trait object, to the data plane through a
//! [`ChunkService`] trait object, and move chunks through the cluster-owned
//! [`TransferPool`] instead of spawning threads per operation (see
//! [`crate::services`]).
//!
//! Both hot paths are *pipelined* (when `pipeline_depth > 0`): the data and
//! metadata planes proceed in parallel instead of strictly phasing. A read
//! submits chunk fetches to the transfer scheduler level by level while the
//! segment-tree descent is still batching deeper levels; a write submits
//! each chunk store the moment its payload is assembled and weaves the
//! write's metadata while those transfers are on the wire, joining the
//! completions only right before publication.
//!
//! The data plane is *zero-copy* end to end: payloads enter as [`Bytes`]
//! (`impl Into<Bytes>` on [`BlobClient::write`]/[`BlobClient::append`]), a
//! chunk slot fully covered by the write becomes a reference-counted
//! sub-slice of the caller's buffer — no allocation, no memcpy, proven by
//! [`ClientStats::payload_bytes_copied`] — and reads return a scatter-gather
//! [`BlobSlice`] of the fetched chunks ([`BlobClient::read_bytes`]); the
//! contiguous `Vec<u8>` API is reimplemented on top of it. An optional
//! client [`ChunkCache`] (`ClusterConfig::chunk_cache_bytes`) exploits chunk
//! immutability: both read schedules consult it before submitting a fetch,
//! writes populate it write-through, and re-reading a published version
//! costs no data round-trips at all.

use crate::admission::AdmissionController;
use crate::chunk_cache::ChunkCache;
use crate::services::{ChunkService, MetadataService};
use crate::transfer::{Completion, TransferPool};
use crate::version_manager::{NodeArtifact, WriteKind, WriteTicket};
use crate::version_service::{VersionPin, VersionService};
use blobseer_meta::{
    build_repair_metadata, build_write_metadata_chained, collect_leaves, collect_leaves_streaming,
    publish_metadata, LeafNode, SnapshotDescriptor, WriteMetadata, WriteSummary, WrittenChunk,
};
use blobseer_provider::PlacementRequest;
use blobseer_types::{
    chunk_span, BlobConfig, BlobError, BlobId, BlobSlice, ByteRange, ChunkCodec, ChunkEnvelope,
    ChunkId, ChunkSlot, ClientId, ProviderId, Result, RetryPolicy, Version,
};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pipeline depth clients default to when built directly through
/// [`BlobClient::new`] (clusters pass their configured depth instead).
const DEFAULT_PIPELINE_DEPTH: usize = 4;

/// Per-client operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Completed write operations.
    pub writes: u64,
    /// Completed append operations.
    pub appends: u64,
    /// Completed read operations.
    pub reads: u64,
    /// Payload bytes written (excluding replication copies).
    pub bytes_written: u64,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Chunks pushed to providers (replication copies included).
    pub chunks_written: u64,
    /// Chunks fetched from providers.
    pub chunks_read: u64,
    /// Metadata tree nodes created by this client's writes.
    pub meta_nodes_written: u64,
    /// Write operations that failed and were repaired/aborted.
    pub failed_writes: u64,
    /// Payload bytes memcpy'd while assembling chunk payloads. Chunk-aligned
    /// writes report zero: a slot fully covered by the caller's buffer is
    /// shipped as a reference-counted sub-slice, never copied. Only boundary
    /// slots (unaligned edges merging predecessor bytes) copy, and only the
    /// bytes they must.
    pub payload_bytes_copied: u64,
    /// Chunk lookups served by the client chunk cache (zero round-trips).
    pub cache_hits: u64,
    /// Chunk lookups that missed the cache and went to the providers. Zero
    /// when no cache is configured.
    pub cache_misses: u64,
    /// Total frame bytes this client's transport moved (sent and received).
    /// Zero for in-process clients — nothing crosses a wire.
    pub bytes_on_wire: u64,
    /// Request frames this client's transport sent. Zero for in-process
    /// clients.
    pub frames_sent: u64,
    /// Request frames that shared a syscall with another frame (small-frame
    /// coalescing): a batch of `n` frames flushed by one vectored write
    /// contributes `n - 1`. Zero for in-process clients.
    pub frames_coalesced: u64,
    /// Chunks this client sealed compressed (codec `Fast` and the codec
    /// won). Chunks shipped verbatim — codec `Off`, tiny chunks,
    /// incompressible data — are not counted.
    pub chunks_compressed: u64,
    /// Payload bytes the chunk codec saved across all compressed chunks
    /// (logical minus physical, summed). Zero when nothing compressed.
    pub compress_saved_bytes: u64,
    /// Chunk payload bytes this client's transport moved, counted at their
    /// logical (decompressed) size. Zero for in-process clients.
    pub bytes_on_wire_logical: u64,
    /// Chunk payload bytes this client's transport moved, counted at their
    /// physical (possibly compressed) size. Zero for in-process clients.
    pub bytes_on_wire_physical: u64,
}

/// The client's live counters: one atomic per field, so concurrent readers
/// and writers sharing a client never serialise on bookkeeping (the old
/// single `Mutex<ClientStats>` was taken on every chunk operation).
#[derive(Debug, Default)]
struct AtomicClientStats {
    writes: AtomicU64,
    appends: AtomicU64,
    reads: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    chunks_written: AtomicU64,
    chunks_read: AtomicU64,
    meta_nodes_written: AtomicU64,
    failed_writes: AtomicU64,
    payload_bytes_copied: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    chunks_compressed: AtomicU64,
    compress_saved_bytes: AtomicU64,
}

impl AtomicClientStats {
    fn snapshot(&self) -> ClientStats {
        ClientStats {
            writes: self.writes.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            chunks_written: self.chunks_written.load(Ordering::Relaxed),
            chunks_read: self.chunks_read.load(Ordering::Relaxed),
            meta_nodes_written: self.meta_nodes_written.load(Ordering::Relaxed),
            failed_writes: self.failed_writes.load(Ordering::Relaxed),
            payload_bytes_copied: self.payload_bytes_copied.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            chunks_compressed: self.chunks_compressed.load(Ordering::Relaxed),
            compress_saved_bytes: self.compress_saved_bytes.load(Ordering::Relaxed),
            // Filled from the transport metrics (if any) by the caller.
            bytes_on_wire: 0,
            frames_sent: 0,
            frames_coalesced: 0,
            bytes_on_wire_logical: 0,
            bytes_on_wire_physical: 0,
        }
    }
}

/// A client of a BlobSeer deployment.
///
/// Clients are cheap to create (one per thread is the intended usage) and
/// hold only shared handles to the services plus private statistics, a
/// private write-tag generator and an optional private metadata cache. The
/// services are named only by their traits — [`MetadataService`] and
/// [`ChunkService`] — so the same client runs unchanged against the
/// in-process wiring, a simulator shim or a future networked transport.
pub struct BlobClient {
    id: ClientId,
    version_manager: Arc<dyn VersionService>,
    chunks: Arc<dyn ChunkService>,
    metadata: Arc<dyn MetadataService>,
    transfers: Arc<TransferPool>,
    /// Transfer-pipeline depth: how many tree levels' worth of chunk
    /// transfers (per pool worker) this client keeps in flight while the
    /// metadata plane is still being walked. Zero = legacy phased schedule.
    pipeline_depth: usize,
    /// Client-owned generator for write tags and replica-rotation offsets,
    /// seeded once at creation so the hot paths never touch thread-local
    /// storage.
    rng: Mutex<StdRng>,
    /// Optional chunk cache, consulted before any fetch is submitted and
    /// populated write-through. `None` when `chunk_cache_bytes` is zero.
    /// Always holds *decompressed* chunk bytes — a hit never pays the codec.
    chunk_cache: Option<Arc<ChunkCache>>,
    /// Chunk codec applied when sealing payloads into envelopes on the
    /// write path. `Off` ships every chunk verbatim (refcounted, no copy).
    codec: ChunkCodec,
    /// Optional per-client admission throttle over the shared transfer
    /// pool; permits are taken on the submitting thread (see
    /// [`crate::admission`]).
    admission: Option<Arc<AdmissionController>>,
    /// Shared with the transfer closures, which account fetches and cache
    /// fills from the pool workers.
    stats: Arc<AtomicClientStats>,
    /// Counters of the transport carrying this client's service calls, when
    /// the services run remotely (`None` for in-process wiring). The
    /// transport layer owns and updates them; [`BlobClient::stats`] folds a
    /// snapshot into `bytes_on_wire`/`frames_sent`.
    transport_metrics: Option<Arc<blobseer_types::TransportMetrics>>,
}

impl BlobClient {
    /// Creates a client from service handles. Most users obtain clients from
    /// [`crate::cluster::Cluster::client`] instead.
    pub fn new(
        id: ClientId,
        version_manager: Arc<dyn VersionService>,
        chunks: Arc<dyn ChunkService>,
        metadata: Arc<dyn MetadataService>,
        transfers: Arc<TransferPool>,
    ) -> Self {
        BlobClient {
            id,
            version_manager,
            chunks,
            metadata,
            transfers,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            rng: Mutex::new(StdRng::from_entropy()),
            chunk_cache: None,
            codec: ChunkCodec::Off,
            admission: None,
            stats: Arc::new(AtomicClientStats::default()),
            transport_metrics: None,
        }
    }

    /// Attaches a per-client admission controller (`None` disables
    /// throttling). When set, every chunk transfer this client submits to
    /// the shared pool first takes a permit *on the submitting thread*, so
    /// a client over its budget blocks itself instead of crowding the pool.
    #[must_use]
    pub fn with_admission(mut self, admission: Option<Arc<AdmissionController>>) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the transfer-pipeline depth (zero = legacy phased schedule:
    /// the metadata descent fully completes before the first chunk fetch,
    /// and every chunk store completes before metadata weaving starts).
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Attaches a chunk cache (`None` disables caching). The cache may be
    /// private to this client or shared with other clients of the same
    /// process — chunk immutability makes sharing trivially safe.
    #[must_use]
    pub fn with_chunk_cache(mut self, cache: Option<Arc<ChunkCache>>) -> Self {
        self.chunk_cache = cache;
        self
    }

    /// The client's chunk cache, if one is attached.
    pub fn chunk_cache(&self) -> Option<&Arc<ChunkCache>> {
        self.chunk_cache.as_ref()
    }

    /// Sets the chunk codec this client seals written chunks with.
    /// Compression happens once, here at the writing client; providers and
    /// the wire carry the sealed envelope verbatim, and the reading client
    /// decompresses once. Readers are codec-agnostic — the envelope tags
    /// each chunk — so mixed-codec clusters interoperate freely.
    #[must_use]
    pub fn with_chunk_codec(mut self, codec: ChunkCodec) -> Self {
        self.codec = codec;
        self
    }

    /// The chunk codec this client writes with.
    pub fn chunk_codec(&self) -> ChunkCodec {
        self.codec
    }

    /// Attaches the transport counters of the services this client talks to
    /// (`None` for in-process wiring). Set by networked deployments so
    /// [`ClientStats::bytes_on_wire`]/[`ClientStats::frames_sent`] report
    /// real wire traffic.
    #[must_use]
    pub fn with_transport_metrics(
        mut self,
        metrics: Option<Arc<blobseer_types::TransportMetrics>>,
    ) -> Self {
        self.transport_metrics = metrics;
        self
    }

    /// The transport counters of this client's services, if networked.
    pub fn transport_metrics(&self) -> Option<&Arc<blobseer_types::TransportMetrics>> {
        self.transport_metrics.as_ref()
    }

    /// The client's transfer-pipeline depth.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// This client's identifier.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Counters accumulated by this client.
    pub fn stats(&self) -> ClientStats {
        let mut stats = self.stats.snapshot();
        if let Some(metrics) = &self.transport_metrics {
            let wire = metrics.snapshot();
            stats.bytes_on_wire = wire.bytes_on_wire;
            stats.frames_sent = wire.frames_sent;
            stats.frames_coalesced = wire.frames_coalesced;
            stats.bytes_on_wire_logical = wire.bytes_on_wire_logical;
            stats.bytes_on_wire_physical = wire.bytes_on_wire_physical;
        }
        stats
    }

    /// Creates a new blob and returns its identifier.
    pub fn create_blob(&self, config: BlobConfig) -> Result<BlobId> {
        self.version_manager.create_blob(config)
    }

    /// The latest published version of a blob.
    pub fn latest_version(&self, blob: BlobId) -> Result<Version> {
        Ok(self.version_manager.latest_snapshot(blob)?.version)
    }

    /// Every published version of a blob, oldest first.
    pub fn published_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        self.version_manager.published_versions(blob)
    }

    /// Size in bytes of a snapshot (`None` means the latest published one).
    pub fn size(&self, blob: BlobId, version: Option<Version>) -> Result<u64> {
        Ok(self.snapshot(blob, version)?.size)
    }

    /// Writes `data` at `offset`, producing (and returning) a new version.
    ///
    /// Accepts anything convertible to [`Bytes`]; passing an owned `Vec<u8>`
    /// or a `Bytes` makes chunk-aligned writes fully zero-copy (chunk slots
    /// ship as reference-counted sub-slices of the caller's buffer).
    pub fn write(&self, blob: BlobId, offset: u64, data: impl Into<Bytes>) -> Result<Version> {
        let data = data.into();
        let len = data.len() as u64;
        let version = self.mutate(blob, WriteKind::Write { offset, len }, data)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(len, Ordering::Relaxed);
        Ok(version)
    }

    /// Appends `data` at the end of the blob, producing (and returning) a
    /// new version. Accepts anything convertible to [`Bytes`] (see
    /// [`BlobClient::write`] for the zero-copy contract).
    pub fn append(&self, blob: BlobId, data: impl Into<Bytes>) -> Result<Version> {
        let data = data.into();
        let len = data.len() as u64;
        let version = self.mutate(blob, WriteKind::Append { len }, data)?;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(len, Ordering::Relaxed);
        Ok(version)
    }

    /// Reads `len` bytes starting at `offset` from the given snapshot
    /// (`None` means the latest published one) as a scatter-gather
    /// [`BlobSlice`]: the fetched chunks stay exactly as the providers (or
    /// the chunk cache) handed them back — zero-copy sub-slices — and holes
    /// are implicit, backed by a shared static zero page when iterated.
    pub fn read_bytes(
        &self,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> Result<BlobSlice> {
        let (snapshot, _pin) = self.pinned_snapshot(blob, version)?;
        let range = ByteRange::new(offset, len);
        if range.is_empty() {
            return Ok(BlobSlice::empty());
        }
        let fetched = if self.pipeline_depth == 0 {
            // Phased: finish the whole metadata descent, then move data.
            let leaves = collect_leaves(self.metadata.as_ref(), blob, &snapshot, range)?;
            let jobs: Vec<(ByteRange, LeafNode)> = leaves
                .into_iter()
                .filter_map(|m| m.leaf.map(|leaf| (m.slot_range, leaf)))
                .filter(|(_, leaf)| !leaf.is_hole())
                .collect();
            self.fetch_chunks(jobs)?
        } else {
            self.fetch_chunks_pipelined(blob, &snapshot, range)?
        };
        let mut segments = Vec::with_capacity(fetched.len());
        for (slot_range, leaf, data) in fetched {
            let valid = ByteRange::new(slot_range.offset, leaf.len.min(data.len() as u64));
            let Some(need) = valid.intersect(&range) else {
                continue;
            };
            let src = (need.offset - valid.offset) as usize;
            segments.push((
                need.offset - range.offset,
                data.slice(src..src + need.len as usize),
            ));
        }
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        // Count the bytes the snapshot serves. Today the descent rejects any
        // range past the snapshot size, so `served == len` on every path
        // that reaches here; the clamp pins that invariant down so the
        // counter stays honest if short reads (POSIX-style clamping at EOF)
        // are ever allowed instead of rejected.
        let served = len.min(snapshot.size.saturating_sub(offset));
        debug_assert_eq!(served, len, "out-of-bounds reads are rejected");
        self.stats.bytes_read.fetch_add(served, Ordering::Relaxed);
        Ok(BlobSlice::new(len, segments))
    }

    /// Reads an entire snapshot as a scatter-gather [`BlobSlice`].
    pub fn read_all_bytes(&self, blob: BlobId, version: Option<Version>) -> Result<BlobSlice> {
        let size = self.size(blob, version)?;
        self.read_bytes(blob, version, 0, size)
    }

    /// Reads `len` bytes starting at `offset` from the given snapshot
    /// (`None` means the latest published one) into one contiguous buffer.
    /// Holes read back as zeros. This is [`BlobClient::read_bytes`] plus one
    /// flatten; segment-at-a-time consumers should prefer the slice API.
    pub fn read(
        &self,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>> {
        Ok(self.read_bytes(blob, version, offset, len)?.to_vec())
    }

    /// Reads an entire snapshot (`None` means the latest published one).
    pub fn read_all(&self, blob: BlobId, version: Option<Version>) -> Result<Vec<u8>> {
        let size = self.size(blob, version)?;
        self.read(blob, version, 0, size)
    }

    /// Returns, for every chunk slot intersecting `range` in the given
    /// snapshot, the slot's byte range and the providers holding its chunk.
    /// Slots that are holes map to an empty provider list.
    ///
    /// This is the "expose the data location" interface BSFS uses to let the
    /// MapReduce scheduler place computation close to the data.
    pub fn chunk_locations(
        &self,
        blob: BlobId,
        version: Option<Version>,
        range: ByteRange,
    ) -> Result<Vec<(ByteRange, Vec<ProviderId>)>> {
        let (snapshot, _pin) = self.pinned_snapshot(blob, version)?;
        let leaves = collect_leaves(self.metadata.as_ref(), blob, &snapshot, range)?;
        Ok(leaves
            .into_iter()
            .map(|m| {
                let providers = m.leaf.map(|l| l.providers).unwrap_or_default();
                (m.slot_range, providers)
            })
            .collect())
    }

    /// Weaves repair metadata for a write that was assigned `ticket` but
    /// whose writer cannot complete it, so that later snapshots referencing
    /// it stay readable. Normally called internally on write failure; it is
    /// public so that an external failure detector can repair writes whose
    /// client process disappeared entirely.
    pub fn repair_aborted_write(&self, ticket: &WriteTicket) -> Result<()> {
        self.weave_repair(ticket).map(|_| ())
    }

    /// Weaves and publishes repair metadata for `ticket`, returning the
    /// node artifacts of the repair weave so the abort path can report them
    /// to the version manager's lifecycle tracker.
    fn weave_repair(&self, ticket: &WriteTicket) -> Result<Vec<NodeArtifact>> {
        let summary = Self::ticket_summary(ticket);
        let repair =
            build_repair_metadata(self.metadata.as_ref(), ticket.blob, &ticket.chain, &summary)?;
        let artifacts = NodeArtifact::from_metadata(&repair);
        publish_metadata(self.metadata.as_ref(), repair)?;
        Ok(artifacts)
    }

    // ----- internals -------------------------------------------------------

    fn snapshot(&self, blob: BlobId, version: Option<Version>) -> Result<SnapshotDescriptor> {
        match version {
            Some(v) => self.version_manager.snapshot(blob, v),
            None => self.version_manager.latest_snapshot(blob),
        }
    }

    /// Resolves a snapshot descriptor *and pins its version* for the
    /// duration of a read. The pin (released when the guard drops, on every
    /// exit path) is what makes reads and the lifecycle sweeper safely
    /// concurrent: the sweeper defers everything a pinned version reaches,
    /// so a reader that won the race against eviction never observes a torn
    /// tree or a vanished chunk.
    fn pinned_snapshot(
        &self,
        blob: BlobId,
        version: Option<Version>,
    ) -> Result<(SnapshotDescriptor, VersionPin)> {
        let (descriptor, token) = self.version_manager.pin(blob, version)?;
        let pin = VersionPin::new(
            Arc::clone(&self.version_manager),
            blob,
            descriptor.version,
            token,
        );
        Ok((descriptor, pin))
    }

    fn ticket_summary(ticket: &WriteTicket) -> WriteSummary {
        let slots = chunk_span(ByteRange::new(ticket.offset, ticket.len), ticket.chunk_size);
        let first = slots.first().expect("tickets always cover at least a byte");
        WriteSummary {
            version: ticket.version,
            written_slots: ByteRange::new(
                first.index * ticket.chunk_size,
                slots.len() as u64 * ticket.chunk_size,
            ),
            size: ticket.new_size,
            chunk_size: ticket.chunk_size,
        }
    }

    fn mutate(&self, blob: BlobId, kind: WriteKind, data: Bytes) -> Result<Version> {
        if data.is_empty() {
            return Err(BlobError::EmptyWrite);
        }
        let config = self.version_manager.blob_config(blob)?;
        let ticket = self.version_manager.assign_ticket(blob, kind)?;
        match self.perform_write(blob, &config, &ticket, &data) {
            Ok((meta_nodes, artifacts)) => {
                self.version_manager
                    .complete_write(blob, ticket.version, Some(artifacts))?;
                self.stats
                    .meta_nodes_written
                    .fetch_add(meta_nodes as u64, Ordering::Relaxed);
                Ok(ticket.version)
            }
            Err(err) => {
                // Make the claimed version harmless before giving up so that
                // concurrent writers and later readers are never blocked by
                // this failure. If even the repair weave fails, report no
                // artifacts: the version's nodes are then simply never
                // considered for collection.
                let artifacts = self.weave_repair(&ticket).ok();
                let _ = self
                    .version_manager
                    .abort_write(blob, ticket.version, artifacts);
                self.stats.failed_writes.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
        }
    }

    /// Pushes the chunks, weaves and stores the metadata. Returns the number
    /// of metadata nodes created.
    ///
    /// With `pipeline_depth > 0` the data and metadata planes overlap: each
    /// chunk store is submitted to the transfer scheduler the moment its
    /// payload is assembled, the segment-tree metadata is woven from the
    /// *planned* placement while those transfers are on the wire, and the
    /// completions are joined only right before publication (leaves whose
    /// store had to fall back to substitute providers are patched first).
    /// With depth zero the legacy phased schedule is kept: assemble all
    /// payloads, push and join them all, only then weave.
    fn perform_write(
        &self,
        blob: BlobId,
        config: &BlobConfig,
        ticket: &WriteTicket,
        data: &Bytes,
    ) -> Result<(usize, Vec<NodeArtifact>)> {
        // Per-blob codec override: a blob created with an explicit codec
        // seals with it regardless of what the cluster default (this
        // client's codec) says.
        let codec = config.chunk_codec.unwrap_or(self.codec);
        let chunk_size = ticket.chunk_size;
        let write_range = ByteRange::new(ticket.offset, data.len() as u64);
        let slots = chunk_span(write_range, chunk_size);
        let predecessor_size = ticket.chain.predecessor_size();

        // The largest offset this writer must materialise data up to: its own
        // write end, or the predecessor snapshot's extent within the touched
        // slots (a partially overwritten chunk keeps the predecessor's bytes).
        let known_size = predecessor_size.max(write_range.end());

        // Ask the chunk service where to put each chunk (the chunk count is
        // known from the slot span alone, so placement can precede payload
        // assembly and the pipelined path can push as it assembles). The tag
        // salting chunk ids is drawn from the client-owned generator: no
        // thread-local lookup on the hot path.
        let placement = self.chunks.allocate(PlacementRequest {
            chunk_count: slots.len(),
            replication: config.replication,
        })?;
        let write_tag: u64 = self.rng.lock().gen();

        let meta = if self.pipeline_depth == 0 {
            // Phased: every payload exists and every chunk is durably stored
            // before the first metadata node is woven.
            let mut payloads = Vec::with_capacity(slots.len());
            for slot in &slots {
                payloads.push(self.slot_payload(blob, config, ticket, data, slot, known_size)?);
            }
            let completions =
                self.submit_store_groups(blob, write_tag, codec, &slots, payloads, &placement);
            let chunks = self.join_stores(completions)?;
            build_write_metadata_chained(
                self.metadata.as_ref(),
                blob,
                &ticket.chain,
                ticket.version,
                ticket.new_size,
                &chunks,
            )?
        } else {
            let mut planned = Vec::with_capacity(slots.len());
            let mut payloads = Vec::with_capacity(slots.len());
            for (slot, replicas) in slots.iter().zip(&placement) {
                let payload = self.slot_payload(blob, config, ticket, data, slot, known_size)?;
                planned.push(WrittenChunk {
                    slot: slot.index,
                    chunk: ChunkId {
                        blob,
                        write_tag,
                        slot: slot.index,
                    },
                    providers: replicas.clone(),
                    len: payload.len() as u64,
                });
                payloads.push(payload);
            }
            let completions =
                self.submit_store_groups(blob, write_tag, codec, &slots, payloads, &placement);
            // Weave while the chunk transfers are in flight: the node keys
            // and chunk ids are deterministic, only the providers of a leaf
            // can differ if a store falls back mid-transfer.
            let woven = build_write_metadata_chained(
                self.metadata.as_ref(),
                blob,
                &ticket.chain,
                ticket.version,
                ticket.new_size,
                &planned,
            );
            // Join before inspecting the weaving outcome: even when weaving
            // failed, every in-flight store must be drained.
            let chunks = self.join_stores(completions)?;
            let mut meta = woven?;
            patch_stored_providers(&mut meta, ticket.version, chunk_size, &chunks);
            meta
        };

        // Upload the woven nodes in one batched, shard-grouped publish, then
        // hand the version back to the version manager for in-order
        // publication (done by the caller). The artifacts feed the
        // lifecycle tracker at completion time.
        let node_count = meta.node_count();
        let artifacts = NodeArtifact::from_metadata(&meta);
        publish_metadata(self.metadata.as_ref(), meta)?;
        Ok((node_count, artifacts))
    }

    /// Assembles the payload of one touched chunk slot.
    ///
    /// Fast path: a slot fully covered by the caller's buffer ships as a
    /// reference-counted sub-slice of it — no allocation, no memcpy
    /// ([`ClientStats::payload_bytes_copied`] stays at zero). Only boundary
    /// slots of unaligned writes assemble a fresh buffer, merging the
    /// predecessor snapshot's bytes with at most two range copies (the
    /// prefix and suffix around the written range).
    fn slot_payload(
        &self,
        blob: BlobId,
        config: &BlobConfig,
        ticket: &WriteTicket,
        data: &Bytes,
        slot: &ChunkSlot,
        known_size: u64,
    ) -> Result<Bytes> {
        let chunk_size = ticket.chunk_size;
        let write_range = ByteRange::new(ticket.offset, data.len() as u64);
        let predecessor_size = ticket.chain.predecessor_size();
        let slot_range = slot.range();
        let payload_len = chunk_size.min(known_size - slot_range.offset);
        let valid = ByteRange::new(slot_range.offset, payload_len);

        // Zero-copy fast path: the write covers the whole slot payload.
        if valid.offset >= write_range.offset && valid.end() <= write_range.end() {
            let src = (valid.offset - write_range.offset) as usize;
            return Ok(data.slice(src..src + payload_len as usize));
        }

        let mut buf = BytesMut::zeroed(payload_len as usize);
        let mut copied = 0u64;

        // Bytes coming from this write.
        if let Some(from_write) = valid.intersect(&write_range) {
            let src = (from_write.offset - write_range.offset) as usize;
            let dst = (from_write.offset - valid.offset) as usize;
            let n = from_write.len as usize;
            buf[dst..dst + n].copy_from_slice(&data[src..src + n]);
            copied += from_write.len;
        }

        // Boundary bytes preserved from the predecessor snapshot (which may
        // include concurrent writers whose versions precede ours): the slice
        // of `valid` before the write range (prefix) and after it (suffix),
        // both clamped to the predecessor's extent. One reference read
        // covers their hull — they live in the same chunk — and each lands
        // in the payload with a single range copy.
        let pred_end = predecessor_size.clamp(valid.offset, valid.end());
        let prefix = ByteRange::new(
            valid.offset,
            write_range
                .offset
                .clamp(valid.offset, pred_end)
                .saturating_sub(valid.offset),
        );
        let suffix_start = write_range.end().clamp(valid.offset, valid.end());
        let suffix = ByteRange::new(suffix_start, pred_end.saturating_sub(suffix_start));
        if !prefix.is_empty() || !suffix.is_empty() {
            let old_range = prefix.hull(&suffix);
            let old =
                self.read_reference_range(blob, &ticket.chain, old_range, &config.meta_retry)?;
            for part in [prefix, suffix] {
                if part.is_empty() {
                    continue;
                }
                let src = (part.offset - old_range.offset) as usize;
                let dst = (part.offset - valid.offset) as usize;
                let n = part.len as usize;
                buf[dst..dst + n].copy_from_slice(&old[src..src + n]);
                copied += part.len;
            }
        }
        self.stats
            .payload_bytes_copied
            .fetch_add(copied, Ordering::Relaxed);
        Ok(buf.freeze())
    }

    /// Reads a range as it appears in a writer's *predecessor* snapshot,
    /// which may include concurrent earlier writers whose metadata is still
    /// being woven (used for boundary-chunk merging of unaligned writes).
    ///
    /// When the range falls in a chunk slot an in-flight predecessor claims,
    /// the reader waits briefly for that predecessor's leaf to appear in the
    /// metadata store — the only point where two writers of the *same chunk*
    /// ever synchronise. Holes (and predecessors that died without weaving)
    /// read back as zeros.
    fn read_reference_range(
        &self,
        blob: BlobId,
        chain: &blobseer_meta::ReferenceChain,
        range: ByteRange,
        retry: &RetryPolicy,
    ) -> Result<Vec<u8>> {
        let mut out = vec![0u8; range.len as usize];
        if range.is_empty() {
            return Ok(out);
        }
        let chunk_size = chain.base.chunk_size;
        for slot in chunk_span(range, chunk_size) {
            let slot_range = slot.range();
            let Some(need) = slot_range.intersect(&range) else {
                continue;
            };
            let Some(child) = chain.resolve(self.metadata.as_ref(), blob, slot_range)? else {
                continue; // never written: zeros
            };
            let Some(leaf) = self.wait_for_leaf(blob, child, retry)? else {
                continue; // predecessor never completed: repaired to a hole
            };
            if leaf.is_hole() {
                continue;
            }
            let data = self.fetch_chunk(&leaf)?;
            let valid = ByteRange::new(slot_range.offset, leaf.len.min(data.len() as u64));
            let Some(copy) = valid.intersect(&need) else {
                continue;
            };
            let src = (copy.offset - valid.offset) as usize;
            let dst = (copy.offset - range.offset) as usize;
            let n = copy.len as usize;
            out[dst..dst + n].copy_from_slice(&data[src..src + n]);
        }
        Ok(out)
    }

    /// Fetches the leaf node referenced by `child`, following aliases and
    /// waiting (bounded exponential backoff, configured per blob) for nodes
    /// a concurrent writer has not stored yet.
    fn wait_for_leaf(
        &self,
        blob: BlobId,
        child: blobseer_meta::ChildRef,
        retry: &RetryPolicy,
    ) -> Result<Option<LeafNode>> {
        let mut target = child;
        let mut missed = 0u32;
        for attempt in 0..retry.max_attempts {
            // `Err` (metadata plane unreachable) propagates immediately: the
            // node may well exist, so treating the failure as "not written
            // yet" and eventually weaving a hole would corrupt the merge.
            // Only an authoritative `Ok(None)` keeps the backoff wait going.
            match self.metadata.get_node(&target.key(blob))? {
                Some(blobseer_meta::NodeBody::Leaf(leaf)) => return Ok(Some(leaf)),
                Some(blobseer_meta::NodeBody::Alias(next)) => target = next,
                Some(blobseer_meta::NodeBody::Inner(_)) => {
                    return Err(BlobError::Internal(format!(
                        "expected a leaf at {}, found an inner node",
                        target.key(blob)
                    )))
                }
                None => {
                    if attempt + 1 == retry.max_attempts {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(retry.delay_us(missed)));
                    missed += 1;
                }
            }
        }
        Ok(None)
    }

    /// Groups a write's chunk stores by their assigned replica set and
    /// submits one transfer-scheduler task per group. Round-robin placement
    /// gives every provider one group per write, so each group leaves the
    /// client as a single batched `put_chunks` — on a networked transport
    /// that is one pipelined send per provider (client-side frame
    /// coalescing) instead of one round of lock-step round-trips per chunk.
    fn submit_store_groups(
        &self,
        blob: BlobId,
        write_tag: u64,
        codec: ChunkCodec,
        slots: &[ChunkSlot],
        payloads: Vec<Bytes>,
        placement: &[Vec<ProviderId>],
    ) -> Vec<Completion<Result<Vec<WrittenChunk>>>> {
        // First-seen order keeps submission deterministic (and matches the
        // slot order placement was computed in).
        let mut order: Vec<&Vec<ProviderId>> = Vec::new();
        let mut groups: HashMap<&Vec<ProviderId>, Vec<(u64, Bytes)>> = HashMap::new();
        for ((slot, payload), replicas) in slots.iter().zip(payloads).zip(placement) {
            groups
                .entry(replicas)
                .or_insert_with(|| {
                    order.push(replicas);
                    Vec::new()
                })
                .push((slot.index, payload));
        }
        order
            .into_iter()
            .map(|replicas| {
                let items = groups.remove(replicas).expect("group exists");
                self.submit_store_group(blob, write_tag, codec, items, replicas.clone())
            })
            .collect()
    }

    /// Submits the store of one group of chunks sharing a replica set to
    /// the transfer scheduler, tagged with the primary provider so
    /// placement sees the in-flight load. Falls back to other live
    /// providers per chunk when an assigned one fails mid-write. Stored
    /// chunks are written through to the chunk cache so reading your own
    /// writes never costs a data round-trip; for fast-path payloads
    /// (zero-copy views of the caller's buffer) the cache compacts the view
    /// on insert — one chunk-bounded memcpy, on the pool worker, counted in
    /// `ChunkCacheStats::bytes_compacted` — so its budget bounds real
    /// memory. With the cache off the write path stays copy-free end to
    /// end.
    ///
    /// This is also where the chunk codec runs: each payload is sealed into
    /// its envelope on the pool worker (so compression overlaps other
    /// transfers), the envelope is what travels and gets stored, and the
    /// cache keeps the *decompressed* payload. With codec `Off` — or when
    /// compression does not win — sealing is a refcount bump, preserving
    /// `payload_bytes_copied == 0` for aligned writes.
    fn submit_store_group(
        &self,
        blob: BlobId,
        write_tag: u64,
        codec: ChunkCodec,
        items: Vec<(u64, Bytes)>,
        replicas: Vec<ProviderId>,
    ) -> Completion<Result<Vec<WrittenChunk>>> {
        let service = Arc::clone(&self.chunks);
        let cache = self.chunk_cache.clone();
        let stats = Arc::clone(&self.stats);
        let primary = replicas.first().copied();
        // Admission gate: taken here on the submitting thread (blocking
        // *this* client when it is over budget), released when the pool
        // task finishes because the permit moves into the closure.
        let permit = self.admission.as_ref().map(|a| a.acquire(self.id));
        self.transfers.submit_for(primary, move || {
            let _permit = permit;
            let chunks: Vec<(ChunkId, ChunkEnvelope)> = items
                .iter()
                .map(|(slot, data)| {
                    let sealed = blobseer_codec::seal(codec, data.clone());
                    if !sealed.is_verbatim() {
                        stats.chunks_compressed.fetch_add(1, Ordering::Relaxed);
                        stats.compress_saved_bytes.fetch_add(
                            sealed.logical_len() - sealed.physical_len(),
                            Ordering::Relaxed,
                        );
                    }
                    (
                        ChunkId {
                            blob,
                            write_tag,
                            slot: *slot,
                        },
                        sealed,
                    )
                })
                .collect();
            let stored = store_group_replicas(service.as_ref(), &chunks, &replicas)?;
            if let Some(cache) = &cache {
                for ((_, data), (chunk, _)) in items.iter().zip(&chunks) {
                    cache.insert(*chunk, data.clone());
                }
            }
            Ok(items
                .into_iter()
                .zip(chunks)
                .zip(stored)
                .map(|(((_, data), (chunk, _)), providers)| WrittenChunk {
                    slot: chunk.slot,
                    chunk,
                    providers,
                    len: data.len() as u64,
                })
                .collect())
        })
    }

    /// Joins every submitted store group, returning the written-chunk
    /// records in slot order. All completions are drained even when one
    /// fails, so no store is left dangling on the pool. Each join is bounded
    /// by the pool's `io_timeout`-derived join timeout: a store stuck on a
    /// hung endpoint fails this write (which then repairs and aborts)
    /// instead of blocking the scheduler forever.
    fn join_stores(
        &self,
        completions: Vec<Completion<Result<Vec<WrittenChunk>>>>,
    ) -> Result<Vec<WrittenChunk>> {
        let mut chunks = Vec::with_capacity(completions.len());
        let mut first_err = None;
        for completion in completions {
            match self.transfers.join_within(completion) {
                Ok(Ok(written)) => chunks.extend(written),
                Ok(Err(err)) | Err(err) => first_err = first_err.or(Some(err)),
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        let pushed: u64 = chunks.iter().map(|c| c.providers.len() as u64).sum();
        self.stats
            .chunks_written
            .fetch_add(pushed, Ordering::Relaxed);
        chunks.sort_by_key(|c| c.slot);
        Ok(chunks)
    }

    /// Fetches one chunk from any provider holding a replica (inline, used
    /// by the boundary-merge path which reads a handful of chunks at most).
    /// Consults the chunk cache first; immutability makes a hit correct
    /// regardless of how old the entry is.
    fn fetch_chunk(&self, leaf: &LeafNode) -> Result<Bytes> {
        if let Some(cache) = &self.chunk_cache {
            if let Some(data) = cache.get(&leaf.chunk) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let start: usize = self.rng.lock().gen();
        let data = fetch_chunk_replica(self.chunks.as_ref(), leaf, start)?;
        self.stats.chunks_read.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.chunk_cache {
            cache.insert(leaf.chunk, data.clone());
        }
        Ok(data)
    }

    /// Submits the fetch of one chunk to the transfer scheduler, tagged with
    /// the replica the rotated probe order tries first.
    ///
    /// The chunk cache is consulted *before* anything reaches the scheduler:
    /// a hit returns an already-fulfilled completion holding the cached
    /// [`Bytes`] itself — no round-trip, no queueing, no copy. Misses fetch
    /// on a pool worker and fill the cache on the way back.
    fn submit_fetch(
        &self,
        slot_range: ByteRange,
        leaf: LeafNode,
        start: usize,
    ) -> Completion<Result<(ByteRange, LeafNode, Bytes)>> {
        if let Some(cache) = &self.chunk_cache {
            if let Some(data) = cache.get(&leaf.chunk) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Completion::ready(Ok((slot_range, leaf, data)));
            }
            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let service = Arc::clone(&self.chunks);
        let cache = self.chunk_cache.clone();
        let stats = Arc::clone(&self.stats);
        let tagged =
            (!leaf.providers.is_empty()).then(|| leaf.providers[start % leaf.providers.len()]);
        // Cache hits above never consume admission budget — they touch no
        // provider. Only a real fetch takes a permit (on this thread).
        let permit = self.admission.as_ref().map(|a| a.acquire(self.id));
        self.transfers.submit_for(tagged, move || {
            let _permit = permit;
            let data = fetch_chunk_replica(service.as_ref(), &leaf, start)?;
            stats.chunks_read.fetch_add(1, Ordering::Relaxed);
            if let Some(cache) = &cache {
                cache.insert(leaf.chunk, data.clone());
            }
            Ok((slot_range, leaf, data))
        })
    }

    /// Fetches many chunks through the shared transfer scheduler (the
    /// phased read path: every fetch is submitted only after the metadata
    /// descent discovered all of them).
    fn fetch_chunks(
        &self,
        jobs: Vec<(ByteRange, LeafNode)>,
    ) -> Result<Vec<(ByteRange, LeafNode, Bytes)>> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let rotate: usize = self.rng.lock().gen();
        let completions: Vec<_> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (slot_range, leaf))| {
                self.submit_fetch(slot_range, leaf, rotate.wrapping_add(i))
            })
            .collect();
        self.join_fetches(completions, Vec::new(), None)
    }

    /// The pipelined read path: walks the snapshot's segment tree level by
    /// level and submits the chunk fetches of each level to the transfer
    /// scheduler while deeper levels are still being batched, so metadata
    /// descent and data transfer overlap. At most `pipeline_depth` levels'
    /// worth of fetches per pool worker stay in flight (older completions
    /// are harvested first — that is the backpressure of the pipeline).
    fn fetch_chunks_pipelined(
        &self,
        blob: BlobId,
        snapshot: &SnapshotDescriptor,
        range: ByteRange,
    ) -> Result<Vec<(ByteRange, LeafNode, Bytes)>> {
        let rotate: usize = self.rng.lock().gen();
        let cap = self
            .pipeline_depth
            .saturating_mul(self.transfers.worker_count().max(1))
            .max(1);
        let mut pending: VecDeque<Completion<Result<(ByteRange, LeafNode, Bytes)>>> =
            VecDeque::new();
        let mut fetched = Vec::new();
        let mut fetch_err: Option<BlobError> = None;
        let mut submitted = 0usize;
        let walk = collect_leaves_streaming(
            self.metadata.as_ref(),
            blob,
            snapshot,
            range,
            |level: &[blobseer_meta::LeafMapping]| {
                for mapping in level {
                    let Some(leaf) = mapping.leaf.clone() else {
                        continue; // hole: reads back as zeros
                    };
                    pending.push_back(self.submit_fetch(
                        mapping.slot_range,
                        leaf,
                        rotate.wrapping_add(submitted),
                    ));
                    submitted += 1;
                    while pending.len() > cap {
                        let oldest = pending.pop_front().expect("len > cap >= 1");
                        match self.transfers.join_within(oldest) {
                            Ok(Ok(item)) => fetched.push(item),
                            Ok(Err(err)) | Err(err) => {
                                fetch_err = fetch_err.take().or(Some(err));
                            }
                        }
                    }
                }
            },
        );
        // Drain every in-flight fetch before propagating any error — a
        // failing metadata shard mid-descent must never leave submissions
        // dangling on the shared pool (and must not deadlock this client).
        // A descent error still takes precedence over a fetch error.
        let joined = self.join_fetches(pending, fetched, fetch_err);
        walk?;
        joined
    }

    /// Joins submitted fetches into `out`, draining all of them even when
    /// one fails (`first_err` carries an error from completions already
    /// harvested by the caller). Joins are bounded by the pool's
    /// `io_timeout`-derived join timeout, so a fetch stuck on a hung
    /// endpoint fails the read instead of blocking it forever.
    fn join_fetches(
        &self,
        completions: impl IntoIterator<Item = Completion<Result<(ByteRange, LeafNode, Bytes)>>>,
        mut out: Vec<(ByteRange, LeafNode, Bytes)>,
        mut first_err: Option<BlobError>,
    ) -> Result<Vec<(ByteRange, LeafNode, Bytes)>> {
        for completion in completions {
            match self.transfers.join_within(completion) {
                Ok(Ok(item)) => out.push(item),
                Ok(Err(err)) | Err(err) => first_err = first_err.take().or(Some(err)),
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        // `chunks_read` is accounted by the fetch tasks themselves: cache
        // hits joined here never touched a provider and must not count.
        Ok(out)
    }
}

/// Rewrites the leaves of freshly woven (not yet published) metadata whose
/// chunk stores fell back to substitute providers mid-transfer, so readers
/// look for replicas where they actually landed. Everything else about a
/// leaf — chunk id, length, slot — is deterministic and already correct.
fn patch_stored_providers(
    meta: &mut WriteMetadata,
    version: Version,
    chunk_size: u64,
    stored: &[WrittenChunk],
) {
    let by_slot: HashMap<u64, &WrittenChunk> = stored.iter().map(|c| (c.slot, c)).collect();
    for (key, body) in &mut meta.nodes {
        if key.version != version || key.range.len != chunk_size {
            continue;
        }
        let blobseer_meta::NodeBody::Leaf(leaf) = body else {
            continue;
        };
        if let Some(actual) = by_slot.get(&(key.range.offset / chunk_size)) {
            if leaf.providers != actual.providers {
                leaf.providers = actual.providers.clone();
            }
        }
    }
}

/// Stores a group of chunks sharing one replica set, batching the puts per
/// provider (`ChunkService::put_chunks`) and substituting other live
/// providers per chunk for failed ones. Every chunk must land on at least
/// one provider; the per-chunk stored lists come back in group order.
fn store_group_replicas(
    service: &dyn ChunkService,
    chunks: &[(ChunkId, ChunkEnvelope)],
    replicas: &[ProviderId],
) -> Result<Vec<Vec<ProviderId>>> {
    let mut stored: Vec<Vec<ProviderId>> = vec![Vec::with_capacity(replicas.len()); chunks.len()];
    let mut any_failed = false;
    for &pid in replicas {
        for (chunk_stored, outcome) in stored.iter_mut().zip(service.put_chunks(pid, chunks)) {
            match outcome {
                Ok(()) => chunk_stored.push(pid),
                Err(_) => any_failed = true,
            }
        }
    }
    if any_failed {
        // Try to restore the replication level per chunk using live
        // providers outside the assigned (and already-probed) replica set.
        let mut candidates = service.live_providers();
        candidates.retain(|p| !replicas.contains(p));
        for ((chunk, data), chunk_stored) in chunks.iter().zip(stored.iter_mut()) {
            for &pid in &candidates {
                if chunk_stored.len() >= replicas.len() {
                    break;
                }
                if service.put_chunk(pid, *chunk, data.clone()).is_ok() {
                    chunk_stored.push(pid);
                }
            }
        }
    }
    if stored.iter().any(Vec::is_empty) {
        return Err(BlobError::InsufficientProviders {
            needed: 1,
            available: 0,
        });
    }
    Ok(stored)
}

/// Fetches one chunk from any replica, probing the providers in rotated
/// order starting at `start % replicas`. Probing the stored order verbatim
/// would make replica 0 of every chunk a read hotspot and leave the other
/// replicas cold; the rotation (seeded per operation from the client-owned
/// RNG) spreads concurrent readers over all replicas.
///
/// The fetched envelope is opened here — the single decompression point of
/// the read path. A replica whose envelope fails to open (a corrupted
/// compressed block) is treated exactly like an unreachable one: the probe
/// moves on to the next replica.
fn fetch_chunk_replica(service: &dyn ChunkService, leaf: &LeafNode, start: usize) -> Result<Bytes> {
    let mut last_err = BlobError::ChunkNotFound(
        leaf.chunk,
        leaf.providers.first().copied().unwrap_or(ProviderId(0)),
    );
    let replicas = leaf.providers.len();
    for k in 0..replicas {
        let pid = leaf.providers[start.wrapping_add(k) % replicas];
        match service
            .get_chunk(pid, &leaf.chunk)
            .and_then(|envelope| blobseer_codec::open(&envelope))
        {
            Ok(data) => return Ok(data),
            Err(err) => last_err = err,
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use blobseer_types::ClusterConfig;

    const CS: u64 = 64;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small()).unwrap()
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn append_then_read_roundtrip() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let data = pattern(300, 1);
        let v = client.append(blob, &data).unwrap();
        assert_eq!(v, Version(1));
        assert_eq!(client.size(blob, None).unwrap(), 300);
        assert_eq!(client.read_all(blob, None).unwrap(), data);
        assert_eq!(client.read(blob, None, 10, 50).unwrap(), data[10..60]);
    }

    #[test]
    fn writes_produce_new_versions_and_old_ones_stay_readable() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let v1_data = pattern(4 * CS as usize, 1);
        let v1 = client.append(blob, &v1_data).unwrap();

        // Overwrite the middle two chunks.
        let patch = pattern(2 * CS as usize, 9);
        let v2 = client.write(blob, CS, &patch).unwrap();
        assert_eq!(v2, Version(2));

        // v2 sees the patch, v1 does not (snapshot isolation).
        let mut expected_v2 = v1_data.clone();
        expected_v2[CS as usize..3 * CS as usize].copy_from_slice(&patch);
        assert_eq!(client.read_all(blob, Some(v2)).unwrap(), expected_v2);
        assert_eq!(client.read_all(blob, Some(v1)).unwrap(), v1_data);
        assert_eq!(
            client.published_versions(blob).unwrap(),
            vec![Version(0), Version(1), Version(2)]
        );
    }

    #[test]
    fn unaligned_writes_merge_boundary_bytes() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let base = pattern(3 * CS as usize, 2);
        client.append(blob, &base).unwrap();

        // Write 10 bytes in the middle of chunk 1.
        let patch = pattern(10, 77);
        client.write(blob, CS + 20, &patch).unwrap();
        let mut expected = base.clone();
        expected[(CS + 20) as usize..(CS + 30) as usize].copy_from_slice(&patch);
        assert_eq!(client.read_all(blob, None).unwrap(), expected);
    }

    #[test]
    fn write_past_the_end_zero_fills_the_gap() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(CS as usize, 3)).unwrap();
        // Leave a two-chunk hole before the new data.
        let tail = pattern(CS as usize, 4);
        client.write(blob, 3 * CS, &tail).unwrap();
        let all = client.read_all(blob, None).unwrap();
        assert_eq!(all.len(), 4 * CS as usize);
        assert_eq!(&all[..CS as usize], &pattern(CS as usize, 3)[..]);
        assert!(all[CS as usize..3 * CS as usize].iter().all(|&b| b == 0));
        assert_eq!(&all[3 * CS as usize..], &tail[..]);
    }

    #[test]
    fn replicated_blob_survives_a_provider_failure() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap();
        let data = pattern(4 * CS as usize, 5);
        client.append(blob, &data).unwrap();

        // Fail one provider: every chunk still has a replica elsewhere.
        cluster.fail_provider(ProviderId(0)).unwrap();
        assert_eq!(client.read_all(blob, None).unwrap(), data);
    }

    #[test]
    fn unreplicated_blob_reports_unavailable_chunks() {
        // Cache off: with the default write-through cache the client would
        // (correctly) keep serving this read locally; the test is about
        // what an uncached read of an unreachable blob reports.
        let cluster = Cluster::new(ClusterConfig {
            chunk_cache_bytes: 0,
            ..ClusterConfig::small()
        })
        .unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(4 * CS as usize, 6)).unwrap();
        // Fail every provider: reads must fail, not return garbage.
        for i in 0..4 {
            cluster.fail_provider(ProviderId(i)).unwrap();
        }
        assert!(client.read_all(blob, None).is_err());
    }

    #[test]
    fn writes_fall_back_to_live_providers() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        // Fail two of the four providers; writes keep succeeding on the rest.
        cluster.fail_provider(ProviderId(1)).unwrap();
        cluster.fail_provider(ProviderId(2)).unwrap();
        let data = pattern(8 * CS as usize, 7);
        client.append(blob, &data).unwrap();
        assert_eq!(client.read_all(blob, None).unwrap(), data);
    }

    #[test]
    fn failed_write_aborts_cleanly_and_blob_stays_usable() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(CS as usize, 8)).unwrap();

        // Fail every provider: the next write cannot store chunks.
        for i in 0..4 {
            cluster.fail_provider(ProviderId(i)).unwrap();
        }
        let err = client.append(blob, pattern(CS as usize, 9)).unwrap_err();
        assert!(matches!(err, BlobError::InsufficientProviders { .. }));
        assert_eq!(client.stats().failed_writes, 1);

        // Recover and keep writing: the aborted version was repaired, so the
        // blob is still fully readable and writable.
        for i in 0..4 {
            cluster.recover_provider(ProviderId(i)).unwrap();
        }
        let data = pattern(CS as usize, 10);
        client.append(blob, &data).unwrap();
        let all = client.read_all(blob, None).unwrap();
        // Layout: first append, aborted (zeroed) region, final append.
        assert_eq!(all.len(), 3 * CS as usize);
        assert_eq!(&all[..CS as usize], &pattern(CS as usize, 8)[..]);
        assert!(all[CS as usize..2 * CS as usize].iter().all(|&b| b == 0));
        assert_eq!(&all[2 * CS as usize..], &data[..]);
    }

    #[test]
    fn empty_operations_are_rejected_or_trivial() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        assert!(matches!(
            client.append(blob, &[]),
            Err(BlobError::EmptyWrite)
        ));
        assert!(matches!(
            client.write(blob, 0, &[]),
            Err(BlobError::EmptyWrite)
        ));
        client.append(blob, &[1, 2, 3]).unwrap();
        assert_eq!(client.read(blob, None, 1, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn out_of_bounds_reads_are_rejected() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(100, 1)).unwrap();
        assert!(matches!(
            client.read(blob, None, 50, 100),
            Err(BlobError::ReadOutOfBounds { .. })
        ));
        assert!(client.read(blob, Some(Version(9)), 0, 1).is_err());
    }

    #[test]
    fn chunk_locations_expose_providers_per_slot() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 2).unwrap()).unwrap();
        client.append(blob, pattern(4 * CS as usize, 3)).unwrap();
        let locations = client
            .chunk_locations(blob, None, ByteRange::new(0, 4 * CS))
            .unwrap();
        assert_eq!(locations.len(), 4);
        for (slot_range, providers) in &locations {
            assert_eq!(slot_range.len, CS);
            assert_eq!(
                providers.len(),
                2,
                "replication 2 means two providers per slot"
            );
        }
        // Round-robin placement spreads the slots over different providers.
        let distinct: std::collections::HashSet<ProviderId> = locations
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn concurrent_appenders_produce_a_consistent_log() {
        let cluster = Cluster::new(ClusterConfig {
            data_providers: 8,
            metadata_providers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();

        let writers = 8;
        let appends_per_writer = 10;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let client = cluster.client();
                scope.spawn(move || {
                    for i in 0..appends_per_writer {
                        let fill = (w * appends_per_writer + i + 1) as u8;
                        let data = vec![fill; CS as usize];
                        client.append(blob, &data).unwrap();
                    }
                });
            }
        });

        // All appends are visible, each chunk-sized region is uniformly
        // filled with one writer's byte, and no region was lost.
        let size = client.size(blob, None).unwrap();
        assert_eq!(size, writers as u64 * appends_per_writer as u64 * CS);
        let all = client.read_all(blob, None).unwrap();
        let mut seen = std::collections::HashSet::new();
        for chunk in all.chunks(CS as usize) {
            assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append detected");
            assert!(chunk[0] != 0);
            seen.insert(chunk[0]);
        }
        assert_eq!(seen.len(), writers * appends_per_writer);
        assert_eq!(
            client.latest_version(blob).unwrap(),
            Version((writers * appends_per_writer) as u64)
        );
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_interfere() {
        let cluster = Cluster::new(ClusterConfig {
            data_providers: 8,
            metadata_providers: 4,
            ..ClusterConfig::default()
        })
        .unwrap();
        let setup = cluster.client();
        let blob = setup.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        setup.append(blob, vec![1u8; 4 * CS as usize]).unwrap();

        std::thread::scope(|scope| {
            // Writers keep appending new snapshots.
            for w in 0..4 {
                let client = cluster.client();
                scope.spawn(move || {
                    for i in 0..10 {
                        let fill = 10 + w * 10 + i;
                        client.append(blob, vec![fill as u8; CS as usize]).unwrap();
                    }
                });
            }
            // Readers repeatedly read the *latest published* snapshot; every
            // read must be internally consistent (uniform chunk regions).
            for _ in 0..4 {
                let client = cluster.client();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let data = client.read_all(blob, None).unwrap();
                        assert!(data.len() >= 4 * CS as usize);
                        for chunk in data.chunks(CS as usize) {
                            assert!(
                                chunk.iter().all(|&b| b == chunk[0]),
                                "readers must never observe torn writes"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn phased_clients_still_round_trip() {
        // pipeline_depth = 0 keeps the legacy phased schedule working end to
        // end (the differential proptest in tests/pipeline.rs compares the
        // two schedules op by op).
        let cluster = Cluster::new(ClusterConfig {
            pipeline_depth: 0,
            ..ClusterConfig::small()
        })
        .unwrap();
        let client = cluster.client();
        assert_eq!(client.pipeline_depth(), 0);
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let data = pattern(5 * CS as usize + 17, 3);
        client.append(blob, &data).unwrap();
        let patch = pattern(30, 9);
        client.write(blob, CS + 5, &patch).unwrap();
        let mut expected = data.clone();
        expected[(CS + 5) as usize..(CS + 35) as usize].copy_from_slice(&patch);
        assert_eq!(client.read_all(blob, None).unwrap(), expected);
    }

    #[test]
    fn fetch_chunk_replica_probes_in_rotated_order() {
        let cluster = cluster();
        let svc = cluster.chunk_service();
        let chunk = ChunkId {
            blob: BlobId(7),
            write_tag: 1,
            slot: 0,
        };
        let payload = bytes::Bytes::from_static(b"replica");
        svc.put_chunk(ProviderId(1), chunk, payload.clone().into())
            .unwrap();
        svc.put_chunk(ProviderId(2), chunk, payload.clone().into())
            .unwrap();
        let leaf = LeafNode {
            chunk,
            providers: vec![ProviderId(1), ProviderId(2)],
            len: payload.len() as u64,
        };
        // start = 0 probes provider 1 first, start = 1 probes provider 2.
        fetch_chunk_replica(svc.as_ref(), &leaf, 0).unwrap();
        assert_eq!(cluster.provider(ProviderId(1)).unwrap().stats().reads, 1);
        assert_eq!(cluster.provider(ProviderId(2)).unwrap().stats().reads, 0);
        fetch_chunk_replica(svc.as_ref(), &leaf, 1).unwrap();
        assert_eq!(cluster.provider(ProviderId(2)).unwrap().stats().reads, 1);
        // A dead preferred replica falls through to the next in rotation.
        cluster.fail_provider(ProviderId(2)).unwrap();
        fetch_chunk_replica(svc.as_ref(), &leaf, 1).unwrap();
        assert_eq!(cluster.provider(ProviderId(1)).unwrap().stats().reads, 2);
    }

    #[test]
    fn aligned_writes_are_genuinely_zero_copy() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        // Chunk-aligned, chunk-multiple append: every slot ships as a
        // sub-slice of the caller's buffer.
        client.append(blob, pattern(4 * CS as usize, 1)).unwrap();
        assert_eq!(client.stats().payload_bytes_copied, 0);
        // Chunk-aligned overwrite of one whole chunk: still zero.
        client.write(blob, CS, pattern(CS as usize, 2)).unwrap();
        assert_eq!(client.stats().payload_bytes_copied, 0);
        // Unaligned write inside chunk 0: the whole boundary slot is
        // assembled — 20 bytes from the write, 10 of prefix and 34 of
        // suffix from the predecessor.
        client.write(blob, 10, pattern(20, 3)).unwrap();
        assert_eq!(client.stats().payload_bytes_copied, CS);
    }

    #[test]
    fn chunk_cache_serves_re_reads_without_round_trips() {
        let cluster = Cluster::new(ClusterConfig {
            chunk_cache_bytes: 1 << 20,
            ..ClusterConfig::small()
        })
        .unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let data = pattern(4 * CS as usize, 5);
        client.append(blob, &data).unwrap();
        // Write-through: the read is served entirely from the cache, the
        // providers never see a get.
        assert_eq!(client.read_all(blob, None).unwrap(), data);
        let provider_reads: u64 = cluster.providers().iter().map(|p| p.stats().reads).sum();
        assert_eq!(provider_reads, 0, "read-your-writes must not fetch");
        let stats = client.stats();
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.chunks_read, 0);
        assert_eq!(client.chunk_cache().unwrap().stats().entries, 4);
        // Re-reads stay free, and the cached bytes are the right ones.
        assert_eq!(client.read_all(blob, None).unwrap(), data);
        assert_eq!(client.stats().cache_hits, 8);
    }

    #[test]
    fn cached_chunks_outlive_provider_failures() {
        // Immutability means a cached chunk is as good as a replica: once a
        // client has read (or written) a chunk, it can keep serving it even
        // when every provider holding it is gone.
        let cluster = Cluster::new(ClusterConfig {
            chunk_cache_bytes: 1 << 20,
            ..ClusterConfig::small()
        })
        .unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        let data = pattern(4 * CS as usize, 6);
        client.append(blob, &data).unwrap();
        for i in 0..4 {
            cluster.fail_provider(ProviderId(i)).unwrap();
        }
        assert_eq!(client.read_all(blob, None).unwrap(), data);
        // A cache-less client of the same cluster still fails, proving the
        // cache (not a recovered provider) served the bytes.
        let cold = cluster.client();
        assert!(cold.chunk_cache().is_none() || cold.read_all(blob, None).is_err());
    }

    #[test]
    fn read_bytes_exposes_segments_and_flattens_identically() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(CS as usize + 17, 7)).unwrap();
        // Leave a hole, then more data.
        client.write(blob, 3 * CS, pattern(CS as usize, 8)).unwrap();
        let slice = client.read_all_bytes(blob, None).unwrap();
        assert_eq!(slice.len(), 4 * CS);
        assert!(slice.hole_bytes() > 0, "the gap must stay a hole");
        assert_eq!(slice.to_vec(), client.read_all(blob, None).unwrap());
        // Segment iteration with zero-page-backed holes covers every byte.
        let total: u64 = slice.iter_filled().map(|s| s.len() as u64).sum();
        assert_eq!(total, slice.len());
        let mut by_copy = vec![0u8; CS as usize];
        slice.copy_range_to(CS, &mut by_copy);
        assert_eq!(by_copy, client.read(blob, None, CS, CS).unwrap());
    }

    #[test]
    fn bytes_read_counts_bytes_served_not_requested() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(300, 9)).unwrap();
        client.read(blob, None, 0, 300).unwrap();
        assert_eq!(client.stats().bytes_read, 300);
        // A read reaching exactly to the end of the snapshot serves what it
        // asked for; anything past the size is rejected before it could
        // inflate the counter.
        client.read(blob, None, 280, 20).unwrap();
        assert_eq!(client.stats().bytes_read, 320);
        assert!(client.read(blob, None, 280, 21).is_err());
        assert_eq!(client.stats().bytes_read, 320, "failed reads count nothing");
    }

    #[test]
    fn client_stats_reflect_activity() {
        let cluster = cluster();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(CS, 1).unwrap()).unwrap();
        client.append(blob, pattern(2 * CS as usize, 1)).unwrap();
        client.write(blob, 0, pattern(CS as usize, 2)).unwrap();
        client.read_all(blob, None).unwrap();
        let stats = client.stats();
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.bytes_written, 3 * CS);
        assert_eq!(stats.bytes_read, 2 * CS);
        assert!(stats.chunks_written >= 3);
        assert!(stats.meta_nodes_written > 0);
        assert_eq!(stats.failed_writes, 0);
    }
}
