//! In-process cluster wiring.
//!
//! A [`Cluster`] instantiates every BlobSeer service — the version manager,
//! the provider manager, the data providers and the metadata-provider DHT —
//! inside one process, connected by shared-memory handles instead of a
//! network. Functionally this is exactly the distributed deployment (every
//! service keeps its own state and communicates only through its public
//! interface); performance-at-scale questions are answered by the
//! `blobseer-sim` crate instead.

use crate::chunk_cache::ChunkCache;
use crate::client::BlobClient;
use crate::lifecycle::LifecycleEngine;
use crate::services::{ChunkService, InProcessChunkService, MetadataService};
use crate::transfer::TransferPool;
use crate::version_manager::VersionManager;
use blobseer_dht::Dht;
use blobseer_meta::{CachedMetadataStore, NodeBody, NodeKey};
use blobseer_provider::{DataProvider, PersistentStore, ProviderManager};
use blobseer_types::{
    BlobError, ClientId, ClusterConfig, IdGenerator, MetaNodeId, ProviderId, Result,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// A complete in-process BlobSeer deployment.
///
/// The cluster owns the concrete service implementations — the version
/// manager, the [`InProcessChunkService`] (provider manager + data
/// providers) and the metadata-provider DHT — plus the shared
/// [`TransferPool`] every client moves chunks through. Clients obtained from
/// [`Cluster::client`] see only the [`ChunkService`] / [`MetadataService`]
/// traits.
pub struct Cluster {
    config: ClusterConfig,
    version_manager: Arc<VersionManager>,
    chunk_service: Arc<InProcessChunkService>,
    metadata: Arc<Dht<NodeKey, NodeBody>>,
    transfers: Arc<TransferPool>,
    client_ids: IdGenerator,
    /// One chunk cache shared by every client of this process, when
    /// `ClusterConfig::shared_chunk_cache` is set (chunk immutability makes
    /// sharing safe without any coherence protocol). `None` otherwise —
    /// each client then gets its own private cache.
    shared_chunk_cache: Option<Arc<ChunkCache>>,
    /// The version lifecycle engine (snapshot flattening + GC), configured
    /// from `ClusterConfig::{retained_versions, flatten_threshold}`. Always
    /// constructed; with both knobs at zero it simply never flattens or
    /// evicts, and sweeping finds nothing.
    lifecycle: Arc<LifecycleEngine>,
}

impl Cluster {
    /// Starts a cluster with RAM-backed data providers (the configuration
    /// used by tests, examples and the original BlobSeer prototype).
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::build(config, |id| Arc::new(DataProvider::in_memory(id)))
    }

    /// Starts a cluster whose data providers persist chunks to log files
    /// under `dir`, each fronted by a RAM cache of `cache_bytes` bytes.
    pub fn with_persistent_providers(
        config: ClusterConfig,
        dir: impl AsRef<Path>,
        cache_bytes: u64,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        Self::build(config, move |id| {
            let path = dir.join(format!("provider-{}.log", id.0));
            let store =
                PersistentStore::open(path, cache_bytes).expect("cannot open provider log file");
            Arc::new(DataProvider::with_store(id, Arc::new(store)))
        })
    }

    fn build(
        config: ClusterConfig,
        make_provider: impl Fn(ProviderId) -> Arc<DataProvider>,
    ) -> Result<Self> {
        config.validate()?;
        let provider_manager = Arc::new(ProviderManager::new(config.placement));
        let mut providers = HashMap::with_capacity(config.data_providers);
        for i in 0..config.data_providers {
            let id = ProviderId(i as u32);
            provider_manager.register(id);
            providers.insert(id, make_provider(id));
        }
        let metadata = Arc::new(Dht::new(
            config.metadata_providers,
            config.dht_virtual_nodes,
            config.dht_replication,
        )?);
        // One transfer pool for the whole deployment: clients share it, so
        // concurrent operations queue on a fixed worker set instead of
        // spawning threads per read/write. Completion joins are bounded by a
        // multiple of the configured I/O timeout: networked transfers retry
        // internally (each attempt bounded by `io_timeout`), so the join
        // bound is the backstop that fails an operation when a task is
        // genuinely wedged, not the first line of defence.
        let join_timeout = config.io_timeout().map(|t| t * 8);
        let transfers =
            Arc::new(TransferPool::new(config.transfer_workers).with_join_timeout(join_timeout));
        let shared_chunk_cache = (config.shared_chunk_cache && config.chunk_cache_bytes > 0)
            .then(|| Arc::new(ChunkCache::new(config.chunk_cache_bytes)));
        let version_manager = Arc::new(VersionManager::new());
        let chunk_service = Arc::new(InProcessChunkService::new(provider_manager, providers));
        let lifecycle = Arc::new(LifecycleEngine::new(
            Arc::clone(&version_manager),
            Arc::clone(&metadata) as Arc<dyn MetadataService>,
            Arc::clone(&chunk_service) as Arc<dyn ChunkService>,
            config.retained_versions,
            config.flatten_threshold,
        ));
        Ok(Cluster {
            version_manager,
            chunk_service,
            metadata,
            transfers,
            client_ids: IdGenerator::starting_at(1),
            shared_chunk_cache,
            lifecycle,
            config,
        })
    }

    /// The version lifecycle engine. Drive it manually
    /// ([`LifecycleEngine::run_once`]) or start its background thread
    /// ([`LifecycleEngine::start`]); it is inert until one of the two
    /// lifecycle knobs in [`ClusterConfig`] is non-zero.
    pub fn lifecycle(&self) -> &Arc<LifecycleEngine> {
        &self.lifecycle
    }

    /// The configuration the cluster was started with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The version manager service.
    pub fn version_manager(&self) -> &Arc<VersionManager> {
        &self.version_manager
    }

    /// The provider manager service.
    pub fn provider_manager(&self) -> &Arc<ProviderManager> {
        self.chunk_service.manager()
    }

    /// The chunk service clients of this cluster talk to.
    pub fn chunk_service(&self) -> &Arc<InProcessChunkService> {
        &self.chunk_service
    }

    /// The metadata-provider DHT.
    pub fn metadata(&self) -> &Arc<Dht<NodeKey, NodeBody>> {
        &self.metadata
    }

    /// The shared chunk-transfer pool.
    pub fn transfer_pool(&self) -> &Arc<TransferPool> {
        &self.transfers
    }

    /// Total metadata round-trips issued against the DHT since the cluster
    /// started: one per owning metadata node per batched get/put, one per
    /// node contacted by a single-key access. The unit the paper measures
    /// the metadata path in — level-order reads and batched publication keep
    /// this O(tree-depth × metadata providers) per operation.
    pub fn metadata_round_trips(&self) -> u64 {
        self.metadata.round_trips()
    }

    /// Handle of one data provider.
    pub fn provider(&self, id: ProviderId) -> Option<Arc<DataProvider>> {
        self.chunk_service.provider(id)
    }

    /// Handles of every data provider, in id order.
    pub fn providers(&self) -> Vec<Arc<DataProvider>> {
        self.chunk_service.providers()
    }

    /// Creates a new client of this cluster. The client gets its own
    /// metadata cache when the cluster configuration enables client-side
    /// caching, and a chunk cache when `chunk_cache_bytes` is non-zero —
    /// the process-wide shared one if `shared_chunk_cache` is set,
    /// otherwise a private one (chunks are immutable, so neither needs a
    /// coherence protocol). The cluster's configured chunk codec is applied
    /// on the client's write path.
    pub fn client(&self) -> BlobClient {
        let meta_store: Arc<dyn MetadataService> = if self.config.client_metadata_cache {
            Arc::new(CachedMetadataStore::new(Arc::clone(&self.metadata)))
        } else {
            Arc::clone(&self.metadata) as Arc<dyn MetadataService>
        };
        let chunk_cache = self.shared_chunk_cache.clone().or_else(|| {
            (self.config.chunk_cache_bytes > 0)
                .then(|| Arc::new(ChunkCache::new(self.config.chunk_cache_bytes)))
        });
        BlobClient::new(
            ClientId(self.client_ids.next_id()),
            Arc::clone(&self.version_manager),
            Arc::clone(&self.chunk_service) as Arc<dyn ChunkService>,
            meta_store,
            Arc::clone(&self.transfers),
        )
        .with_pipeline_depth(self.config.pipeline_depth)
        .with_chunk_cache(chunk_cache)
        .with_chunk_codec(self.config.chunk_codec)
    }

    /// The process-wide chunk cache every client shares, when
    /// `ClusterConfig::shared_chunk_cache` is enabled.
    pub fn shared_chunk_cache(&self) -> Option<&Arc<ChunkCache>> {
        self.shared_chunk_cache.as_ref()
    }

    /// Injects a data-provider failure: the provider stops serving requests
    /// and the provider manager stops placing new chunks on it.
    pub fn fail_provider(&self, id: ProviderId) -> Result<()> {
        let provider = self
            .chunk_service
            .provider(id)
            .ok_or(BlobError::UnknownProvider(id))?;
        provider.set_alive(false);
        self.provider_manager().set_alive(id, false)
    }

    /// Recovers a previously failed data provider.
    pub fn recover_provider(&self, id: ProviderId) -> Result<()> {
        let provider = self
            .chunk_service
            .provider(id)
            .ok_or(BlobError::UnknownProvider(id))?;
        provider.set_alive(true);
        self.provider_manager().set_alive(id, true)
    }

    /// Injects a metadata-provider failure.
    pub fn fail_metadata_node(&self, id: MetaNodeId) -> Result<()> {
        self.metadata.fail_node(id)
    }

    /// Recovers a previously failed metadata provider.
    pub fn recover_metadata_node(&self, id: MetaNodeId) -> Result<()> {
        self.metadata.recover_node(id)
    }

    /// Pushes every provider's current statistics to the provider manager,
    /// as the periodic heartbeat of a real deployment would. The transfer
    /// scheduler's live per-provider in-flight gauge is folded into each
    /// report, so placement sees the data-plane load that is on the wire
    /// right now, not only what providers have already stored.
    pub fn report_provider_loads(&self) {
        let in_flight = self.transfers.in_flight_counts();
        for provider in self.chunk_service.iter_providers() {
            if provider.is_alive() {
                let mut stats = provider.stats();
                stats.in_flight = in_flight.get(&provider.id()).copied().unwrap_or(0);
                let _ = self.provider_manager().report_load(provider.id(), stats);
            }
        }
    }

    /// Total payload bytes currently stored across all data providers
    /// (replicas counted as many times as they are stored).
    pub fn total_stored_bytes(&self) -> u64 {
        self.chunk_service
            .iter_providers()
            .map(|p| p.stats().bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{BlobConfig, PlacementPolicy};

    #[test]
    fn cluster_starts_all_services() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        assert_eq!(cluster.providers().len(), 4);
        assert_eq!(cluster.metadata().node_count(), 2);
        assert_eq!(cluster.provider_manager().provider_count(), 4);
        assert_eq!(cluster.config().placement, PlacementPolicy::RoundRobin);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let cfg = ClusterConfig {
            data_providers: 0,
            ..ClusterConfig::default()
        };
        assert!(Cluster::new(cfg).is_err());
    }

    #[test]
    fn fail_and_recover_providers() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        cluster.fail_provider(ProviderId(1)).unwrap();
        assert!(!cluster.provider(ProviderId(1)).unwrap().is_alive());
        assert_eq!(cluster.provider_manager().live_providers().len(), 3);
        cluster.recover_provider(ProviderId(1)).unwrap();
        assert!(cluster.provider(ProviderId(1)).unwrap().is_alive());
        assert!(cluster.fail_provider(ProviderId(99)).is_err());
    }

    #[test]
    fn clients_get_distinct_ids() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let a = cluster.client();
        let b = cluster.client();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn persistent_cluster_stores_chunks_on_disk() {
        let dir = std::env::temp_dir().join(format!("blobseer-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cluster =
            Cluster::with_persistent_providers(ClusterConfig::small(), &dir, 1 << 20).unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(16, 1).unwrap()).unwrap();
        client.append(blob, &[7u8; 64]).unwrap();
        assert!(cluster.total_stored_bytes() >= 64);
        let logs: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!logs.is_empty(), "provider log files must exist on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeats_update_the_provider_manager() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(16, 1).unwrap()).unwrap();
        client.append(blob, &[1u8; 160]).unwrap();
        cluster.report_provider_loads();
        let total_reported: u64 = cluster
            .provider_manager()
            .all_statuses()
            .iter()
            .map(|s| s.stored_bytes)
            .sum();
        assert_eq!(total_reported, 160);
    }
}
