//! In-process cluster wiring.
//!
//! A [`Cluster`] instantiates every BlobSeer service — the version manager,
//! the provider manager, the data providers and the metadata-provider DHT —
//! inside one process, connected by shared-memory handles instead of a
//! network. Functionally this is exactly the distributed deployment (every
//! service keeps its own state and communicates only through its public
//! interface); performance-at-scale questions are answered by the
//! `blobseer-sim` crate instead.

use crate::admission::AdmissionController;
use crate::chunk_cache::ChunkCache;
use crate::client::BlobClient;
use crate::lifecycle::LifecycleEngine;
use crate::services::{ChunkService, InProcessChunkService, MetadataService};
use crate::transfer::TransferPool;
use crate::version_manager::VersionManager;
use blobseer_dht::Dht;
use blobseer_meta::{CachedMetadataStore, MetadataStore, NodeBody, NodeKey};
use blobseer_persist::{
    DurableTier, DurableTierOptions, RecoveredMetadata, RecoveryStats, WalMetaStore,
};
use blobseer_provider::{DataProvider, ProviderManager};
use blobseer_qos::{MonitoringCollector, QosController};
use blobseer_types::{
    BlobError, ClientId, ClusterConfig, IdGenerator, MetaNodeId, ProviderId, Result,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A complete in-process BlobSeer deployment.
///
/// The cluster owns the concrete service implementations — the version
/// manager, the [`InProcessChunkService`] (provider manager + data
/// providers) and the metadata-provider DHT — plus the shared
/// [`TransferPool`] every client moves chunks through. Clients obtained from
/// [`Cluster::client`] see only the [`ChunkService`] / [`MetadataService`]
/// traits.
pub struct Cluster {
    config: ClusterConfig,
    version_manager: Arc<VersionManager>,
    chunk_service: Arc<InProcessChunkService>,
    metadata: Arc<Dht<NodeKey, NodeBody>>,
    /// The metadata service clients and the lifecycle engine mutate
    /// through: the DHT itself for RAM-resident clusters, a
    /// [`WalMetaStore`] wrapping it for durable ones (every node put and
    /// delete hits the write-ahead log first).
    meta_service: Arc<dyn MetadataService>,
    transfers: Arc<TransferPool>,
    client_ids: IdGenerator,
    /// One chunk cache shared by every client of this process, when
    /// `ClusterConfig::shared_chunk_cache` is set (chunk immutability makes
    /// sharing safe without any coherence protocol). `None` otherwise —
    /// each client then gets its own private cache.
    shared_chunk_cache: Option<Arc<ChunkCache>>,
    /// The version lifecycle engine (snapshot flattening + GC), configured
    /// from `ClusterConfig::{retained_versions, flatten_threshold}`. Always
    /// constructed; with both knobs at zero it simply never flattens or
    /// evicts, and sweeping finds nothing.
    lifecycle: Arc<LifecycleEngine>,
    /// The durable persistence tier, when the cluster was opened with
    /// [`Cluster::open_durable`]. `None` for RAM-resident clusters.
    durable: Option<Arc<DurableTier>>,
    /// What recovery found when the durable tier was opened (all zeros for
    /// RAM-resident clusters and fresh durable directories).
    recovery: RecoveryStats,
    /// Per-client admission throttle applied to every client of this
    /// cluster, when `ClusterConfig::admission_limit` is non-zero.
    admission: Option<Arc<AdmissionController>>,
    /// The QoS feedback controller, when QoS-aware serving is configured
    /// (`ClusterConfig::effective_qos_states() >= 2`). Stepped on the
    /// lifecycle maintenance tick; `step` needs `&mut self`, hence the lock.
    qos: Option<Arc<Mutex<QosController>>>,
    /// Background WAL-checkpoint thread: the independent trigger that keeps
    /// replay cost bounded even when the lifecycle engine never runs.
    checkpointer: Mutex<Option<CheckpointerHandle>>,
    /// Set once [`Cluster::shutdown`] has run (it is idempotent).
    shutdown_done: AtomicBool,
}

struct CheckpointerHandle {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// One durable maintenance pass: a WAL checkpoint when either the record or
/// the byte trigger tripped, then policy-driven segment compaction. Shared
/// by the lifecycle maintenance hook and the background checkpointer.
fn durable_maintenance(tier: &DurableTier, vm: &VersionManager, dht: &Dht<NodeKey, NodeBody>) {
    if tier.checkpoint_due() {
        // Capture order matters under concurrent writes: the blob export
        // first, the node snapshot second. A version is only published once
        // its nodes are in the DHT, so the later node snapshot is always a
        // superset of what the exported publication state references — the
        // image can carry extra nodes, never dangling versions.
        let blobs = vm.export_blobs();
        if let Ok(nodes) = dht.snapshot_nodes() {
            let _ = tier.checkpoint(&blobs, nodes);
        }
    }
    let _ = tier.compact_stores();
}

impl Cluster {
    /// Starts a cluster with RAM-backed data providers (the configuration
    /// used by tests, examples and the original BlobSeer prototype).
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::build(config, |id| Arc::new(DataProvider::in_memory(id)), None)
    }

    /// Opens (creating on first use) a durable cluster rooted at `dir`:
    /// every data provider persists chunks to log-structured segment files,
    /// every metadata mutation and version-manager transition goes through
    /// the write-ahead log, and reopening the same directory recovers the
    /// last complete version of every blob — torn tails truncated, orphaned
    /// pre-commit records dropped. The fsync policy is
    /// `ClusterConfig::durability`.
    ///
    /// The RAM stores this replaces become cache tiers: clients keep their
    /// chunk caches, and recovered segment buffers serve aligned reads
    /// zero-copy, so the read path's `payload_bytes_copied == 0` discipline
    /// survives a restart.
    pub fn open_durable(config: ClusterConfig, dir: impl AsRef<Path>) -> Result<Self> {
        config.validate()?;
        let (tier, recovered) = DurableTier::open(
            dir,
            config.data_providers,
            DurableTierOptions {
                durability: config.durability,
                segment_bytes: config.segment_bytes,
                checkpoint_every: config.checkpoint_records,
                checkpoint_bytes: config.checkpoint_bytes,
                compact_dead_ratio: config.compact_dead_ratio,
            },
        )?;
        let tier = Arc::new(tier);
        let stores = tier.stores().to_vec();
        Self::build(
            config,
            move |id| {
                Arc::new(DataProvider::with_store(
                    id,
                    Arc::clone(&stores[id.0 as usize]) as _,
                ))
            },
            Some((tier, recovered)),
        )
    }

    fn build(
        config: ClusterConfig,
        make_provider: impl Fn(ProviderId) -> Arc<DataProvider>,
        durable: Option<(Arc<DurableTier>, RecoveredMetadata)>,
    ) -> Result<Self> {
        config.validate()?;
        let provider_manager = Arc::new(ProviderManager::new(config.placement));
        let mut providers = HashMap::with_capacity(config.data_providers);
        for i in 0..config.data_providers {
            let id = ProviderId(i as u32);
            provider_manager.register(id);
            providers.insert(id, make_provider(id));
        }
        let metadata = Arc::new(Dht::new(
            config.metadata_providers,
            config.dht_virtual_nodes,
            config.dht_replication,
        )?);
        // One transfer pool for the whole deployment: clients share it, so
        // concurrent operations queue on a fixed worker set instead of
        // spawning threads per read/write. Completion joins are bounded by a
        // multiple of the configured I/O timeout: networked transfers retry
        // internally (each attempt bounded by `io_timeout`), so the join
        // bound is the backstop that fails an operation when a task is
        // genuinely wedged, not the first line of defence.
        let join_timeout = config.io_timeout().map(|t| t * 8);
        let transfers =
            Arc::new(TransferPool::new(config.transfer_workers).with_join_timeout(join_timeout));
        let shared_chunk_cache = (config.shared_chunk_cache && config.chunk_cache_bytes > 0)
            .then(|| Arc::new(ChunkCache::new(config.chunk_cache_bytes)));
        let version_manager = Arc::new(VersionManager::new());
        let chunk_service = Arc::new(InProcessChunkService::new(provider_manager, providers));

        // Durable wiring. Ordering matters: recovered state is installed
        // *before* the journal and the WAL-logging metadata wrapper, so
        // replaying yesterday's log never re-appends yesterday's records.
        let mut recovery = RecoveryStats::default();
        let mut durable_tier = None;
        let meta_service: Arc<dyn MetadataService> = match durable {
            None => Arc::clone(&metadata) as Arc<dyn MetadataService>,
            Some((tier, recovered)) => {
                for blob in recovered.blobs {
                    version_manager.restore_blob(
                        blob.id,
                        blob.config,
                        blob.published,
                        blob.first_retained,
                    )?;
                }
                if !recovered.nodes.is_empty() {
                    metadata.put_nodes(recovered.nodes)?;
                }
                version_manager.set_journal(Arc::clone(&tier) as _);
                recovery = recovered.stats;
                let wal_store = Arc::new(WalMetaStore::new(
                    Arc::clone(&metadata) as Arc<dyn MetadataStore>,
                    Arc::clone(tier.wal()),
                ));
                durable_tier = Some(tier);
                wal_store
            }
        };

        let lifecycle = Arc::new(LifecycleEngine::new(
            Arc::clone(&version_manager),
            Arc::clone(&meta_service),
            Arc::clone(&chunk_service) as Arc<dyn ChunkService>,
            config.retained_versions,
            config.flatten_threshold,
        ));
        let admission =
            (config.admission_limit > 0).then(|| AdmissionController::new(config.admission_limit));
        let qos = (config.effective_qos_states() >= 2).then(|| {
            let collector = Arc::new(MonitoringCollector::new(chunk_service.providers()));
            Arc::new(Mutex::new(QosController::new(
                collector,
                Arc::clone(chunk_service.manager()),
                config.effective_qos_states(),
                config.qos_horizon,
            )))
        });
        let cluster = Cluster {
            version_manager,
            chunk_service,
            metadata,
            meta_service,
            transfers,
            client_ids: IdGenerator::starting_at(1),
            shared_chunk_cache,
            lifecycle,
            durable: durable_tier,
            recovery,
            admission,
            qos,
            checkpointer: Mutex::new(None),
            shutdown_done: AtomicBool::new(false),
            config,
        };
        cluster.install_durable_maintenance(&cluster.lifecycle);
        cluster.start_checkpointer();
        Ok(cluster)
    }

    /// Starts the background checkpoint thread when the cluster is durable
    /// and `ClusterConfig::checkpoint_interval_ms` is non-zero. This trigger
    /// is deliberately independent of the lifecycle engine: a deployment
    /// that never flattens or GCs (both lifecycle knobs at zero, engine
    /// never started) still checkpoints its WAL, so replay cost on restart
    /// stays bounded instead of growing with the whole write history.
    fn start_checkpointer(&self) {
        let (Some(tier), Some(interval)) = (&self.durable, self.config.checkpoint_interval())
        else {
            return;
        };
        let tier = Arc::clone(tier);
        let vm = Arc::clone(&self.version_manager);
        let dht = Arc::clone(&self.metadata);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Acquire) {
                durable_maintenance(&tier, &vm, &dht);
                std::thread::park_timeout(interval);
            }
        });
        *self.checkpointer.lock() = Some(CheckpointerHandle { stop, handle });
    }

    fn stop_checkpointer(&self) {
        if let Some(worker) = self.checkpointer.lock().take() {
            worker.stop.store(true, Ordering::Release);
            worker.handle.thread().unpark();
            let _ = worker.handle.join();
        }
    }

    /// Hangs the cluster's periodic housekeeping onto `engine`'s
    /// end-of-pass maintenance hook: one QoS control step (sample provider
    /// windows, refit the behaviour model, push scores into placement and
    /// admission pressure), then the durable tier's WAL checkpoint and
    /// segment compaction when their triggers tripped. No-op when the
    /// cluster has neither QoS nor a durable tier. The networked deployment
    /// calls this for its own lifecycle engine (which replaces the
    /// in-process one as the driven instance).
    pub fn install_durable_maintenance(&self, engine: &LifecycleEngine) {
        if self.durable.is_none() && self.qos.is_none() {
            return;
        }
        // The closure captures its own Arcs — no cycle back to the engine.
        let durable = self
            .durable
            .as_ref()
            .map(|tier| (Arc::clone(tier), Arc::clone(&self.metadata)));
        let vm = Arc::clone(&self.version_manager);
        let qos = self.qos.clone();
        let admission = self.admission.clone();
        let provider_count = self.config.data_providers.max(1);
        engine.set_maintenance_hook(Box::new(move || {
            if let Some(qos) = &qos {
                if let Ok(flagged) = qos.lock().step() {
                    if let Some(admission) = &admission {
                        // Shrink every client's in-flight budget in
                        // proportion to the fraction of providers currently
                        // behaving dangerously: fewer healthy providers can
                        // absorb less concurrent load.
                        let healthy = 1.0 - flagged.len() as f64 / provider_count as f64;
                        admission.set_pressure(healthy);
                    }
                }
            }
            if let Some((tier, dht)) = &durable {
                durable_maintenance(tier, &vm, dht);
            }
        }));
    }

    /// Runs one maintenance pass inline — exactly what the lifecycle
    /// engine's hook runs at the end of each pass. Lets tests and the
    /// serving daemon drive QoS sampling and checkpointing without waiting
    /// for the background interval.
    pub fn run_maintenance(&self) {
        if let Some(qos) = &self.qos {
            if let Ok(flagged) = qos.lock().step() {
                if let Some(admission) = &self.admission {
                    let healthy =
                        1.0 - flagged.len() as f64 / self.config.data_providers.max(1) as f64;
                    admission.set_pressure(healthy);
                }
            }
        }
        if let Some(tier) = &self.durable {
            durable_maintenance(tier, &self.version_manager, &self.metadata);
        }
    }

    /// Takes a WAL checkpoint right now (ignoring the due-ness triggers),
    /// when the cluster is durable. Used by the ordered shutdown and by
    /// tests that want a deterministic compaction point.
    pub fn force_checkpoint(&self) -> Result<()> {
        let Some(tier) = &self.durable else {
            return Ok(());
        };
        // Blob export before node snapshot — same superset argument as in
        // `durable_maintenance`.
        let blobs = self.version_manager.export_blobs();
        let nodes = self.metadata.snapshot_nodes()?;
        tier.checkpoint(&blobs, nodes)
    }

    /// Coordinated shutdown of the in-process deployment, in dependency
    /// order: stop the background checkpointer, quiesce the lifecycle
    /// engine (its current pass completes), then — for durable clusters —
    /// take a final checkpoint and seal the WAL so nothing can append to a
    /// closing log. Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        if self.shutdown_done.swap(true, Ordering::AcqRel) {
            return;
        }
        self.stop_checkpointer();
        self.lifecycle.shutdown();
        if let Some(tier) = &self.durable {
            let _ = self.force_checkpoint();
            tier.wal().seal();
        }
    }

    /// The metadata service mutations must go through: the DHT for
    /// RAM-resident clusters, the WAL-logging wrapper for durable ones.
    /// RPC hosts serve this (not the raw DHT), so remote mutations are
    /// journaled exactly like in-process ones.
    pub fn metadata_service(&self) -> &Arc<dyn MetadataService> {
        &self.meta_service
    }

    /// The durable persistence tier, when this cluster was opened with
    /// [`Cluster::open_durable`].
    pub fn durable_tier(&self) -> Option<&Arc<DurableTier>> {
        self.durable.as_ref()
    }

    /// What recovery found when the durable tier was opened: replayed WAL
    /// records, recovered blobs/nodes/chunks, truncated and corrupt bytes.
    /// All zeros for RAM-resident clusters and fresh directories.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// The version lifecycle engine. Drive it manually
    /// ([`LifecycleEngine::run_once`]) or start its background thread
    /// ([`LifecycleEngine::start`]); it is inert until one of the two
    /// lifecycle knobs in [`ClusterConfig`] is non-zero.
    pub fn lifecycle(&self) -> &Arc<LifecycleEngine> {
        &self.lifecycle
    }

    /// The configuration the cluster was started with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The version manager service.
    pub fn version_manager(&self) -> &Arc<VersionManager> {
        &self.version_manager
    }

    /// The provider manager service.
    pub fn provider_manager(&self) -> &Arc<ProviderManager> {
        self.chunk_service.manager()
    }

    /// The chunk service clients of this cluster talk to.
    pub fn chunk_service(&self) -> &Arc<InProcessChunkService> {
        &self.chunk_service
    }

    /// The metadata-provider DHT.
    pub fn metadata(&self) -> &Arc<Dht<NodeKey, NodeBody>> {
        &self.metadata
    }

    /// The shared chunk-transfer pool.
    pub fn transfer_pool(&self) -> &Arc<TransferPool> {
        &self.transfers
    }

    /// Total metadata round-trips issued against the DHT since the cluster
    /// started: one per owning metadata node per batched get/put, one per
    /// node contacted by a single-key access. The unit the paper measures
    /// the metadata path in — level-order reads and batched publication keep
    /// this O(tree-depth × metadata providers) per operation.
    pub fn metadata_round_trips(&self) -> u64 {
        self.metadata.round_trips()
    }

    /// Handle of one data provider.
    pub fn provider(&self, id: ProviderId) -> Option<Arc<DataProvider>> {
        self.chunk_service.provider(id)
    }

    /// Handles of every data provider, in id order.
    pub fn providers(&self) -> Vec<Arc<DataProvider>> {
        self.chunk_service.providers()
    }

    /// Creates a new client of this cluster. The client gets its own
    /// metadata cache when the cluster configuration enables client-side
    /// caching, and a chunk cache when `chunk_cache_bytes` is non-zero —
    /// the process-wide shared one if `shared_chunk_cache` is set,
    /// otherwise a private one (chunks are immutable, so neither needs a
    /// coherence protocol). The cluster's configured chunk codec is applied
    /// on the client's write path.
    pub fn client(&self) -> BlobClient {
        let meta_store: Arc<dyn MetadataService> = if self.config.client_metadata_cache {
            Arc::new(CachedMetadataStore::new(Arc::clone(&self.meta_service)))
        } else {
            Arc::clone(&self.meta_service)
        };
        let chunk_cache = self.shared_chunk_cache.clone().or_else(|| {
            (self.config.chunk_cache_bytes > 0)
                .then(|| Arc::new(ChunkCache::new(self.config.chunk_cache_bytes)))
        });
        let vm = Arc::clone(&self.version_manager);
        let version_service: Arc<dyn crate::VersionService> = vm;
        BlobClient::new(
            ClientId(self.client_ids.next_id()),
            version_service,
            Arc::clone(&self.chunk_service) as Arc<dyn ChunkService>,
            meta_store,
            Arc::clone(&self.transfers),
        )
        .with_pipeline_depth(self.config.pipeline_depth)
        .with_chunk_cache(chunk_cache)
        .with_chunk_codec(self.config.chunk_codec)
        .with_admission(self.admission.clone())
    }

    /// The process-wide chunk cache every client shares, when
    /// `ClusterConfig::shared_chunk_cache` is enabled.
    pub fn shared_chunk_cache(&self) -> Option<&Arc<ChunkCache>> {
        self.shared_chunk_cache.as_ref()
    }

    /// Injects a data-provider failure: the provider stops serving requests
    /// and the provider manager stops placing new chunks on it.
    pub fn fail_provider(&self, id: ProviderId) -> Result<()> {
        let provider = self
            .chunk_service
            .provider(id)
            .ok_or(BlobError::UnknownProvider(id))?;
        provider.set_alive(false);
        self.provider_manager().set_alive(id, false)
    }

    /// Recovers a previously failed data provider.
    pub fn recover_provider(&self, id: ProviderId) -> Result<()> {
        let provider = self
            .chunk_service
            .provider(id)
            .ok_or(BlobError::UnknownProvider(id))?;
        provider.set_alive(true);
        self.provider_manager().set_alive(id, true)
    }

    /// Injects a metadata-provider failure.
    pub fn fail_metadata_node(&self, id: MetaNodeId) -> Result<()> {
        self.metadata.fail_node(id)
    }

    /// Recovers a previously failed metadata provider.
    pub fn recover_metadata_node(&self, id: MetaNodeId) -> Result<()> {
        self.metadata.recover_node(id)
    }

    /// Pushes every provider's current statistics to the provider manager,
    /// as the periodic heartbeat of a real deployment would. The transfer
    /// scheduler's live per-provider in-flight gauge is folded into each
    /// report, so placement sees the data-plane load that is on the wire
    /// right now, not only what providers have already stored.
    pub fn report_provider_loads(&self) {
        let in_flight = self.transfers.in_flight_counts();
        for provider in self.chunk_service.iter_providers() {
            if provider.is_alive() {
                let mut stats = provider.stats();
                stats.in_flight = in_flight.get(&provider.id()).copied().unwrap_or(0);
                let _ = self.provider_manager().report_load(provider.id(), stats);
            }
        }
    }

    /// Total payload bytes currently stored across all data providers
    /// (replicas counted as many times as they are stored).
    pub fn total_stored_bytes(&self) -> u64 {
        self.chunk_service
            .iter_providers()
            .map(|p| p.stats().bytes)
            .sum()
    }

    /// The per-client admission controller, when
    /// `ClusterConfig::admission_limit` is non-zero.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// The QoS feedback controller, when QoS-aware serving is configured.
    pub fn qos_controller(&self) -> Option<&Arc<Mutex<QosController>>> {
        self.qos.as_ref()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{BlobConfig, PlacementPolicy};

    #[test]
    fn cluster_starts_all_services() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        assert_eq!(cluster.providers().len(), 4);
        assert_eq!(cluster.metadata().node_count(), 2);
        assert_eq!(cluster.provider_manager().provider_count(), 4);
        assert_eq!(cluster.config().placement, PlacementPolicy::RoundRobin);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let cfg = ClusterConfig {
            data_providers: 0,
            ..ClusterConfig::default()
        };
        assert!(Cluster::new(cfg).is_err());
    }

    #[test]
    fn fail_and_recover_providers() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        cluster.fail_provider(ProviderId(1)).unwrap();
        assert!(!cluster.provider(ProviderId(1)).unwrap().is_alive());
        assert_eq!(cluster.provider_manager().live_providers().len(), 3);
        cluster.recover_provider(ProviderId(1)).unwrap();
        assert!(cluster.provider(ProviderId(1)).unwrap().is_alive());
        assert!(cluster.fail_provider(ProviderId(99)).is_err());
    }

    #[test]
    fn clients_get_distinct_ids() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let a = cluster.client();
        let b = cluster.client();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn durable_cluster_stores_chunks_on_disk_and_recovers() {
        let dir = std::env::temp_dir().join(format!("blobseer-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let payload = [7u8; 64];
        let blob = {
            let cluster = Cluster::open_durable(ClusterConfig::small(), &dir).unwrap();
            assert_eq!(cluster.recovery_stats().recovered_blobs, 0);
            let client = cluster.client();
            let blob = client.create_blob(BlobConfig::new(16, 1).unwrap()).unwrap();
            client.append(blob, &payload).unwrap();
            assert!(cluster.total_stored_bytes() >= 64);
            assert!(dir.join("meta.wal").exists(), "the WAL must exist on disk");
            blob
        };
        // "Restart": a fresh cluster over the same directory sees the blob.
        let cluster = Cluster::open_durable(ClusterConfig::small(), &dir).unwrap();
        let stats = cluster.recovery_stats();
        assert_eq!(stats.recovered_blobs, 1);
        assert!(stats.recovered_chunks >= 4, "64 B at 16 B chunks");
        assert!(stats.wal_replayed_records >= 3);
        let client = cluster.client();
        assert_eq!(client.read(blob, None, 0, 64).unwrap(), payload);
        // New blobs never collide with recovered ids.
        let fresh = client.create_blob(BlobConfig::new(16, 1).unwrap()).unwrap();
        assert_ne!(fresh, blob);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeats_update_the_provider_manager() {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let client = cluster.client();
        let blob = client.create_blob(BlobConfig::new(16, 1).unwrap()).unwrap();
        client.append(blob, &[1u8; 160]).unwrap();
        cluster.report_provider_loads();
        let total_reported: u64 = cluster
            .provider_manager()
            .all_statuses()
            .iter()
            .map(|s| s.stored_bytes)
            .sum();
        assert_eq!(total_reported, 160);
    }
}
