//! The BlobSeer core library: client API, version manager and in-process
//! cluster wiring.
//!
//! BlobSeer is a storage service for huge, versioned BLOBs (Binary Large
//! OBjects) accessed concurrently by many clients. Its design rests on three
//! pillars (Section I-B.3 of the paper):
//!
//! 1. **Data striping** — every blob is split into fixed-size chunks spread
//!    over the data providers by a configurable distribution strategy
//!    (`blobseer-provider`);
//! 2. **Distributed metadata management** — the chunk map of every snapshot
//!    is a segment tree whose nodes are scattered over a DHT of metadata
//!    providers (`blobseer-meta` + `blobseer-dht`);
//! 3. **Versioning-based concurrency control** — writes never modify
//!    existing data or metadata, so readers never wait for writers and
//!    writers only synchronise at the (tiny) version-assignment step
//!    ([`version_manager::VersionManager`]).
//!
//! # Quick start
//!
//! ```
//! use blobseer_core::Cluster;
//! use blobseer_types::{BlobConfig, ClusterConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::small()).unwrap();
//! let client = cluster.client();
//! let blob = client.create_blob(BlobConfig::new(64, 1).unwrap()).unwrap();
//!
//! let v1 = client.append(blob, b"hello, blobseer").unwrap();
//! let v2 = client.write(blob, 7, b"versioned world").unwrap();
//!
//! // Every snapshot stays readable forever.
//! assert_eq!(client.read_all(blob, Some(v1)).unwrap(), b"hello, blobseer");
//! assert_eq!(client.read_all(blob, Some(v2)).unwrap(), b"hello, versioned world");
//! ```

pub mod admission;
pub mod chunk_cache;
pub mod client;
pub mod cluster;
pub mod lifecycle;
pub mod services;
pub mod transfer;
pub mod version_manager;
pub mod version_service;

pub use admission::{AdmissionController, AdmissionPermit, AdmissionStats};
pub use chunk_cache::{ChunkCache, ChunkCacheStats};
pub use client::{BlobClient, ClientStats};
pub use cluster::Cluster;
pub use lifecycle::{LifecycleEngine, LifecycleStats};
pub use services::{ChunkService, InProcessChunkService, MetadataService};
pub use transfer::{TransferPool, TransferPoolStats};
pub use version_manager::{
    ArtifactKind, CollectableSet, FlattenTicket, NodeArtifact, VersionManager, VersionManagerStats,
    WriteKind, WriteTicket,
};
pub use version_service::{VersionPin, VersionService};
