//! Per-client admission control over the shared transfer pool.
//!
//! The paper's QoS tier (Section IV.E) throttles clients whose demand is
//! starving everyone else *before* their requests reach the providers. The
//! mechanism here is deliberately simple and deadlock-free: each client may
//! have at most `limit` chunk transfers in flight in the shared
//! [`crate::TransferPool`]. A client at its limit blocks **on its own
//! thread, at submission time** — never inside a pool worker — until one of
//! its transfers completes. A flooding tenant therefore queues behind
//! itself, while an interactive tenant's occasional request only ever waits
//! behind the bounded number of transfers the greedy tenants were admitted
//! for, instead of behind their entire backlog.
//!
//! The QoS feedback loop modulates the limit: when monitoring classifies a
//! fraction of the providers as behaving dangerously, the *effective* limit
//! shrinks proportionally (never below one), shedding load at the door
//! while the cluster is degraded.

use blobseer_types::ClientId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters of one [`AdmissionController`], for metrics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Permits handed out in total.
    pub admitted: u64,
    /// Acquisitions that had to wait for a slot at least once.
    pub throttled_waits: u64,
    /// Highest in-flight count any single client ever reached.
    pub peak_in_flight: u64,
}

struct AdmissionState {
    in_flight: HashMap<ClientId, usize>,
    /// Healthy fraction of the provider fleet, fed by the QoS loop.
    pressure: f64,
}

/// Blocking per-client transfer budget. See the module docs for why
/// acquisition happens on the submitting thread and never in the pool.
pub struct AdmissionController {
    base_limit: usize,
    state: Mutex<AdmissionState>,
    freed: Condvar,
    admitted: AtomicU64,
    throttled_waits: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl AdmissionController {
    /// A controller admitting at most `limit` concurrent transfers per
    /// client (`limit` must be at least 1; config resolves 0 to "no
    /// controller at all").
    #[must_use]
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(AdmissionController {
            base_limit: limit.max(1),
            state: Mutex::new(AdmissionState {
                in_flight: HashMap::new(),
                pressure: 1.0,
            }),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            throttled_waits: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        })
    }

    /// The configured per-client budget.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.base_limit
    }

    /// The budget currently in force, after QoS pressure scaling.
    #[must_use]
    pub fn effective_limit(&self) -> usize {
        Self::scaled_limit(self.base_limit, self.state.lock().pressure)
    }

    fn scaled_limit(base: usize, pressure: f64) -> usize {
        ((base as f64 * pressure).floor() as usize).max(1)
    }

    /// Updates the healthy-provider fraction from the QoS feedback loop.
    /// Values are clamped to `[0, 1]`; a rising fraction wakes blocked
    /// submitters whose budget just grew back.
    pub fn set_pressure(&self, healthy_fraction: f64) {
        let clamped = healthy_fraction.clamp(0.0, 1.0);
        let mut state = self.state.lock();
        let grew = clamped > state.pressure;
        state.pressure = clamped;
        drop(state);
        if grew {
            self.freed.notify_all();
        }
    }

    /// Blocks until `client` is below its budget, then takes one slot.
    /// Must be called on the submitting client's thread, *before* the
    /// transfer enters the pool; the permit travels into the task closure
    /// and releases the slot when the task finishes.
    #[must_use]
    pub fn acquire(self: &Arc<Self>, client: ClientId) -> AdmissionPermit {
        let mut state = self.state.lock();
        let mut waited = false;
        loop {
            let limit = Self::scaled_limit(self.base_limit, state.pressure);
            let count = state.in_flight.entry(client).or_insert(0);
            if *count < limit {
                *count += 1;
                let now = *count as u64;
                drop(state);
                self.peak_in_flight.fetch_max(now, Ordering::Relaxed);
                break;
            }
            waited = true;
            self.freed.wait(&mut state);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if waited {
            self.throttled_waits.fetch_add(1, Ordering::Relaxed);
        }
        AdmissionPermit {
            controller: Arc::clone(self),
            client,
        }
    }

    /// Transfers `client` currently holds permits for.
    #[must_use]
    pub fn in_flight(&self, client: ClientId) -> usize {
        self.state
            .lock()
            .in_flight
            .get(&client)
            .copied()
            .unwrap_or(0)
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            throttled_waits: self.throttled_waits.load(Ordering::Relaxed),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
        }
    }

    fn release(&self, client: ClientId) {
        let mut state = self.state.lock();
        if let Some(count) = state.in_flight.get_mut(&client) {
            *count = count.saturating_sub(1);
        }
        drop(state);
        self.freed.notify_all();
    }
}

/// One admitted transfer slot; dropping it (when the transfer task
/// finishes, or is abandoned) frees the slot and wakes blocked submitters.
pub struct AdmissionPermit {
    controller: Arc<AdmissionController>,
    client: ClientId,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.controller.release(self.client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn permits_cap_per_client_concurrency() {
        let ctl = AdmissionController::new(2);
        let a = ClientId(1);
        let p1 = ctl.acquire(a);
        let p2 = ctl.acquire(a);
        assert_eq!(ctl.in_flight(a), 2);
        // A different client has its own budget.
        let other = ctl.acquire(ClientId(2));
        assert_eq!(ctl.in_flight(ClientId(2)), 1);
        drop(other);

        // A third acquisition for `a` must wait until a permit frees.
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            let p = ctl2.acquire(a);
            drop(p);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "third permit must block at the cap");
        drop(p1);
        waiter.join().unwrap();
        drop(p2);
        assert_eq!(ctl.in_flight(a), 0);
        let stats = ctl.stats();
        assert_eq!(stats.peak_in_flight, 2);
        assert!(stats.throttled_waits >= 1);
        assert_eq!(stats.admitted, 4);
    }

    #[test]
    fn pressure_scales_the_budget_but_never_to_zero() {
        let ctl = AdmissionController::new(8);
        assert_eq!(ctl.effective_limit(), 8);
        ctl.set_pressure(0.5);
        assert_eq!(ctl.effective_limit(), 4);
        ctl.set_pressure(0.0);
        assert_eq!(ctl.effective_limit(), 1, "floor of one keeps liveness");
        ctl.set_pressure(2.0);
        assert_eq!(ctl.effective_limit(), 8, "clamped to the base limit");
    }

    #[test]
    fn raising_pressure_wakes_blocked_submitters() {
        let ctl = AdmissionController::new(4);
        let a = ClientId(9);
        ctl.set_pressure(0.25); // budget of 1
        let held = ctl.acquire(a);
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || drop(ctl2.acquire(a)));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished());
        ctl.set_pressure(1.0); // budget back to 4 — the waiter fits now
        waiter.join().unwrap();
        drop(held);
    }
}
