//! The version lifecycle engine: snapshot flattening plus concurrent chunk
//! and metadata garbage collection.
//!
//! BlobSeer's versioning never mutates data or metadata, which is what makes
//! readers wait-free — and also what makes memory grow without bound: every
//! write adds tree nodes and chunks that stay referenced forever. This
//! module closes the loop for deployments that do not need every historical
//! version:
//!
//! * **Retention** — [`VersionManager::evict_versions`] caps how many
//!   published versions of a blob stay readable; evicted versions answer
//!   [`blobseer_types::BlobError::VersionRetired`] cleanly instead of
//!   serving torn reads.
//! * **Flattening** — an aged blob's latest snapshot is materialised as a
//!   *flat* version: every chunk slot gets a leaf at that version (chunks
//!   are re-referenced, never copied), published in one batched tree write.
//!   Readers of a flat snapshot address its leaves directly — one metadata
//!   batch, independent of tree depth — so aged blobs read flat.
//! * **Sweeping** — the version manager's per-range reference chains say
//!   exactly which tree nodes and chunks became unreachable once old
//!   versions were evicted; the sweeper deletes them through the ordinary
//!   service interfaces, *without holding any version-manager lock*, and
//!   never touches anything a pinned in-flight reader or writer can reach.
//!   A sweep therefore runs fully concurrently with reads: the worst it can
//!   do to a reader is defer some garbage to the next pass.
//!
//! The engine is deployment-agnostic: it drives the same [`ChunkService`]
//! and [`MetadataService`] trait objects the clients use, so the in-process
//! cluster and the networked deployment reclaim through the exact same code
//! path (the networked one via the `REMOVE_CHUNKS`/`META_DELETE` RPCs).

use crate::services::{ChunkService, MetadataService};
use crate::version_manager::{CollectableSet, FlattenTicket, NodeArtifact, VersionManager};
use blobseer_meta::{
    build_flat_metadata, build_repair_metadata, publish_metadata, ReferenceChain, WriteSummary,
};
use blobseer_types::{chunk_span, BlobId, ByteRange, ChunkId, ProviderId, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters accumulated by one lifecycle engine since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Flat snapshots successfully published.
    pub flattens: u64,
    /// Flatten attempts that failed and were repaired/aborted.
    pub flatten_failures: u64,
    /// Metadata tree nodes deleted by sweeps.
    pub reclaimed_nodes: u64,
    /// Chunks reclaimed by sweeps (counted once per chunk, not per replica).
    pub reclaimed_chunks: u64,
    /// Physical bytes freed on the providers by sweeps, summed over
    /// replicas (what the data plane's memory actually got back).
    pub reclaimed_bytes: u64,
    /// Delete calls that failed (provider down, metadata plane unreachable).
    /// The affected entries are requeued with the version manager and
    /// retried by later passes — they never double-free and, since the
    /// requeue fix, never leak either.
    pub sweep_errors: u64,
    /// Nodes and chunk replicas handed back to the version manager after a
    /// failed delete, awaiting a retry by a later sweep.
    pub requeued_entries: u64,
}

/// The lifecycle engine. One per deployment; drive it manually with
/// [`LifecycleEngine::run_once`] (benchmarks, tests) or let it run on a
/// background thread via [`LifecycleEngine::start`].
pub struct LifecycleEngine {
    vm: Arc<VersionManager>,
    metadata: Arc<dyn MetadataService>,
    chunks: Arc<dyn ChunkService>,
    /// Versions to keep readable per blob (0 = retention off).
    retained_versions: usize,
    /// Flatten once this many non-flat versions piled up since the last
    /// flat snapshot (0 = flattening off).
    flatten_threshold: usize,
    flattens: AtomicU64,
    flatten_failures: AtomicU64,
    reclaimed_nodes: AtomicU64,
    reclaimed_chunks: AtomicU64,
    reclaimed_bytes: AtomicU64,
    sweep_errors: AtomicU64,
    requeued_entries: AtomicU64,
    stop: AtomicBool,
    worker: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Deployment-supplied housekeeping run at the end of every lifecycle
    /// pass. The durable cluster hangs its WAL-checkpoint trigger here, so
    /// checkpointing rides the same cadence as flattening and sweeping.
    maintenance: parking_lot::Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl LifecycleEngine {
    /// Builds an engine over the deployment's service handles.
    #[must_use]
    pub fn new(
        vm: Arc<VersionManager>,
        metadata: Arc<dyn MetadataService>,
        chunks: Arc<dyn ChunkService>,
        retained_versions: usize,
        flatten_threshold: usize,
    ) -> Self {
        LifecycleEngine {
            vm,
            metadata,
            chunks,
            retained_versions,
            flatten_threshold,
            flattens: AtomicU64::new(0),
            flatten_failures: AtomicU64::new(0),
            reclaimed_nodes: AtomicU64::new(0),
            reclaimed_chunks: AtomicU64::new(0),
            reclaimed_bytes: AtomicU64::new(0),
            sweep_errors: AtomicU64::new(0),
            requeued_entries: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            worker: parking_lot::Mutex::new(None),
            maintenance: parking_lot::Mutex::new(None),
        }
    }

    /// Installs the deployment's end-of-pass housekeeping hook (replacing
    /// any previous one). Runs after every [`LifecycleEngine::run_once`].
    pub fn set_maintenance_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.maintenance.lock() = Some(hook);
    }

    /// The configured retention depth (0 = keep everything).
    pub fn retained_versions(&self) -> usize {
        self.retained_versions
    }

    /// The configured flatten trigger (0 = never flatten automatically).
    pub fn flatten_threshold(&self) -> usize {
        self.flatten_threshold
    }

    /// Whether any lifecycle policy is active.
    pub fn is_active(&self) -> bool {
        self.retained_versions > 0 || self.flatten_threshold > 0
    }

    /// Runs one full lifecycle pass over every blob: flatten where due,
    /// apply retention, sweep whatever became unreachable. Per-blob and
    /// per-delete failures are counted and tolerated — a pass never gives
    /// up halfway because one provider is down.
    pub fn run_once(&self) {
        for blob in self.vm.blob_ids() {
            self.run_blob(blob);
        }
        if let Some(hook) = self.maintenance.lock().as_ref() {
            hook();
        }
    }

    /// One lifecycle pass for a single blob.
    pub fn run_blob(&self, blob: BlobId) {
        if self.flatten_threshold > 0 {
            let due = self
                .vm
                .writes_since_flatten(blob)
                .map(|n| n >= self.flatten_threshold as u64)
                .unwrap_or(false);
            if due {
                let _ = self.flatten_now(blob);
            }
        }
        if self.retained_versions > 0 {
            let _ = self.vm.evict_versions(blob, self.retained_versions);
        }
        let _ = self.sweep(blob);
    }

    /// Flattens the blob's latest published snapshot right now, regardless
    /// of the threshold. Returns `Ok(false)` when there is nothing to do
    /// (writes in flight, empty blob, already flat — retry later).
    pub fn flatten_now(&self, blob: BlobId) -> Result<bool> {
        let Some(ticket) = self.vm.begin_flatten(blob)? else {
            return Ok(false);
        };
        let woven =
            build_flat_metadata(self.metadata.as_ref(), blob, &ticket.source, ticket.version)
                .and_then(|meta| {
                    let artifacts = NodeArtifact::from_metadata(&meta);
                    publish_metadata(self.metadata.as_ref(), meta)?;
                    Ok(artifacts)
                });
        match woven {
            Ok(artifacts) => {
                self.vm
                    .complete_write_with_artifacts(blob, ticket.version, Some(artifacts))?;
                self.flattens.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(err) => {
                // Same protocol as a dying writer: weave repair metadata
                // for the claimed (full-range) region so concurrent writers
                // that linked against the flatten version stay correct,
                // then publish the version as a no-op.
                let artifacts = self.repair_flatten(&ticket).ok();
                let _ = self
                    .vm
                    .abort_write_with_artifacts(blob, ticket.version, artifacts);
                self.flatten_failures.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
        }
    }

    fn repair_flatten(&self, ticket: &FlattenTicket) -> Result<Vec<NodeArtifact>> {
        let chunk_size = ticket.source.chunk_size;
        let slots = chunk_span(ByteRange::new(0, ticket.source.size), chunk_size);
        let first = slots.first().expect("flatten tickets cover bytes");
        let summary = WriteSummary {
            version: ticket.version,
            written_slots: ByteRange::new(
                first.index * chunk_size,
                slots.len() as u64 * chunk_size,
            ),
            size: ticket.source.size,
            chunk_size,
        };
        // The flatten was assigned at a quiescent point: its chain is the
        // source snapshot with no pending predecessors.
        let chain = ReferenceChain {
            base: ticket.source,
            pending: Vec::new(),
        };
        let repair = build_repair_metadata(self.metadata.as_ref(), ticket.blob, &chain, &summary)?;
        let artifacts = NodeArtifact::from_metadata(&repair);
        publish_metadata(self.metadata.as_ref(), repair)?;
        Ok(artifacts)
    }

    /// Applies the configured retention policy to one blob (no-op when
    /// retention is off). Returns the oldest retained version.
    pub fn evict_now(&self, blob: BlobId) -> Result<blobseer_types::Version> {
        self.vm.evict_versions(blob, self.retained_versions)
    }

    /// Sweeps everything currently collectable for one blob: takes the
    /// unreachable node keys and chunks from the version manager (a short
    /// lock), then deletes them through the services with no lock held.
    /// Returns the number of (nodes, chunks) reclaimed.
    pub fn sweep(&self, blob: BlobId) -> Result<(u64, u64)> {
        let set = self.vm.take_collectable(blob)?;
        if set.is_empty() {
            return Ok((0, 0));
        }
        let mut failed = CollectableSet::default();
        let mut nodes = 0u64;
        match self.metadata.delete_nodes(&set.nodes) {
            Ok(deleted) => {
                nodes = deleted as u64;
                self.reclaimed_nodes.fetch_add(nodes, Ordering::Relaxed);
            }
            Err(_) => {
                // Metadata plane unreachable: hand the keys back so a later
                // pass retries the whole batch. Never fatal, never
                // double-freed — deleting a write-once node twice is a no-op.
                failed.nodes = set.nodes.clone();
                self.sweep_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Group chunk removals per provider so each provider gets one
        // batched call (one RPC on a networked transport).
        let mut per_provider: HashMap<ProviderId, Vec<ChunkId>> = HashMap::new();
        for (chunk, providers) in &set.chunks {
            for provider in providers {
                per_provider.entry(*provider).or_default().push(*chunk);
            }
        }
        let mut failed_replicas: HashMap<ChunkId, Vec<ProviderId>> = HashMap::new();
        for (provider, ids) in per_provider {
            match self.chunks.remove_chunks(provider, &ids) {
                Ok(freed) => {
                    self.reclaimed_bytes.fetch_add(freed, Ordering::Relaxed);
                }
                Err(_) => {
                    // Provider down (or killed) mid-sweep: requeue exactly
                    // the replicas it still holds, so the next pass retries
                    // them once the endpoint is back — eventual reclaim
                    // instead of a permanent leak.
                    for id in ids {
                        failed_replicas.entry(id).or_default().push(provider);
                    }
                    self.sweep_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut chunks = 0u64;
        for (chunk, _) in set.chunks {
            match failed_replicas.remove(&chunk) {
                Some(providers) => failed.chunks.push((chunk, providers)),
                None => chunks += 1,
            }
        }
        self.reclaimed_chunks.fetch_add(chunks, Ordering::Relaxed);
        if !failed.is_empty() {
            let requeued = (failed.nodes.len() + failed.chunks.len()) as u64;
            if self.vm.requeue_collectable(blob, failed).is_ok() {
                self.requeued_entries.fetch_add(requeued, Ordering::Relaxed);
            }
        }
        Ok((nodes, chunks))
    }

    /// Starts a background thread running [`LifecycleEngine::run_once`]
    /// every `interval` until [`LifecycleEngine::shutdown`] (or drop).
    pub fn start(self: &Arc<Self>, interval: Duration) {
        let mut worker = self.worker.lock();
        if worker.is_some() {
            return;
        }
        self.stop.store(false, Ordering::Release);
        let engine = Arc::clone(self);
        *worker = Some(std::thread::spawn(move || {
            while !engine.stop.load(Ordering::Acquire) {
                engine.run_once();
                std::thread::park_timeout(interval);
            }
        }));
    }

    /// Stops the background thread, if one is running, and joins it.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.worker.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }

    /// Counters accumulated since the engine was built.
    pub fn stats(&self) -> LifecycleStats {
        LifecycleStats {
            flattens: self.flattens.load(Ordering::Relaxed),
            flatten_failures: self.flatten_failures.load(Ordering::Relaxed),
            reclaimed_nodes: self.reclaimed_nodes.load(Ordering::Relaxed),
            reclaimed_chunks: self.reclaimed_chunks.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
            sweep_errors: self.sweep_errors.load(Ordering::Relaxed),
            requeued_entries: self.requeued_entries.load(Ordering::Relaxed),
        }
    }
}

impl Drop for LifecycleEngine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.worker.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}
