//! The pluggable client–service boundary.
//!
//! A [`crate::client::BlobClient`] talks to exactly three services, each
//! behind an interface it holds as a trait object:
//!
//! * the **version manager** (the tiny serialisation point — still a
//!   concrete type, [`crate::version_manager::VersionManager`], because the
//!   paper's protocol gives it exactly one implementation);
//! * a [`MetadataService`] — where segment-tree nodes live. The in-process
//!   deployment plugs in the metadata-provider DHT
//!   (`blobseer_dht::Dht<NodeKey, NodeBody>`), optionally wrapped in a
//!   client-side [`blobseer_meta::CachedMetadataStore`]; unit tests plug in
//!   [`blobseer_meta::InMemoryMetaStore`]; the simulator plugs in a
//!   recording wrapper that charges DHT traffic to simulated resources.
//! * a [`ChunkService`] — where chunk payloads live and how placement is
//!   decided. The in-process deployment plugs in
//!   [`InProcessChunkService`]; a networked deployment would plug in an RPC
//!   client speaking to remote providers.
//!
//! Because clients only name these traits, every ROADMAP direction that
//! changes *where* the services run (sharded metadata, async transports,
//! remote providers) is a new trait implementation, not a client rewrite.

use blobseer_meta::{MetadataStore, NodeBody, NodeKey};

pub use blobseer_provider::{ChunkService, InProcessChunkService};

/// The metadata half of the service boundary.
///
/// Everything a client needs from metadata is the write-once node store
/// defined by [`MetadataStore`] — including its batched
/// [`MetadataStore::get_nodes`] / [`MetadataStore::put_nodes`], which the
/// hot read and publish paths are built on; this trait adds the client-side
/// helper for following repair aliases and is blanket-implemented for every
/// store, so any `MetadataStore` (the DHT, an in-memory map, a caching
/// wrapper, a simulator shim) is automatically a `MetadataService`.
pub trait MetadataService: MetadataStore {
    /// Fetches `key`, transparently following [`NodeBody::Alias`] forwarding
    /// nodes (created by repair weaving for aborted writes) to the node that
    /// actually holds content. Returns `Ok(None)` if the chain dead-ends on a
    /// node that was never stored, or if it exceeds 64 hops (alias chains
    /// grow by one per repaired write of a range; a longer chain means the
    /// metadata is corrupted, and hanging on a cycle would be worse than
    /// reporting the node missing). An unreachable store propagates as `Err`,
    /// never as a fake absence.
    fn get_node_resolved(&self, key: &NodeKey) -> blobseer_types::Result<Option<NodeBody>> {
        let mut key = *key;
        for _ in 0..64 {
            match self.get_node(&key)? {
                Some(NodeBody::Alias(target)) => key = target.key(key.blob),
                body => return Ok(body),
            }
        }
        Ok(None)
    }
}

impl<S: MetadataStore + ?Sized> MetadataService for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_meta::{ChildRef, InMemoryMetaStore, LeafNode};
    use blobseer_types::{BlobId, ByteRange, Version};
    use std::sync::Arc;

    fn key(version: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(version),
            range: ByteRange::new(0, 64),
        }
    }

    #[test]
    fn resolution_follows_alias_chains() {
        let store = InMemoryMetaStore::new();
        let leaf = NodeBody::Leaf(LeafNode::hole(BlobId(1), 0));
        store.put_node(key(1), leaf.clone()).unwrap();
        store
            .put_node(
                key(2),
                NodeBody::Alias(ChildRef {
                    version: Version(1),
                    range: ByteRange::new(0, 64),
                }),
            )
            .unwrap();
        store
            .put_node(
                key(3),
                NodeBody::Alias(ChildRef {
                    version: Version(2),
                    range: ByteRange::new(0, 64),
                }),
            )
            .unwrap();
        assert_eq!(
            store.get_node_resolved(&key(3)).unwrap(),
            Some(leaf.clone())
        );
        assert_eq!(store.get_node_resolved(&key(1)).unwrap(), Some(leaf));
        assert_eq!(store.get_node_resolved(&key(9)).unwrap(), None);
    }

    #[test]
    fn resolution_bails_out_of_alias_cycles() {
        let store = InMemoryMetaStore::new();
        // Corrupted metadata: an alias pointing at itself.
        store
            .put_node(
                key(1),
                NodeBody::Alias(ChildRef {
                    version: Version(1),
                    range: ByteRange::new(0, 64),
                }),
            )
            .unwrap();
        assert_eq!(store.get_node_resolved(&key(1)).unwrap(), None);
    }

    #[test]
    fn every_store_is_a_metadata_service() {
        // The blanket impl must cover plain stores, trait objects and Arcs.
        let store = InMemoryMetaStore::new();
        let as_service: &dyn MetadataService = &store;
        assert_eq!(as_service.node_count(), 0);
        let arc: Arc<dyn MetadataService> = Arc::new(InMemoryMetaStore::new());
        assert!(arc.get_node_resolved(&key(1)).unwrap().is_none());
    }

    #[test]
    fn batched_store_api_is_reachable_through_the_service_object() {
        // Clients hold `Arc<dyn MetadataService>`: the batched calls the hot
        // paths use must dispatch through the trait object.
        let arc: Arc<dyn MetadataService> = Arc::new(InMemoryMetaStore::new());
        let leaf = NodeBody::Leaf(LeafNode::hole(BlobId(1), 0));
        arc.put_nodes(vec![(key(1), leaf.clone()), (key(2), leaf.clone())])
            .unwrap();
        assert_eq!(
            arc.get_nodes(&[key(2), key(9), key(1)]).unwrap(),
            vec![Some(leaf.clone()), None, Some(leaf)]
        );
    }
}
