//! The chunk half of the client–service boundary.
//!
//! [`ChunkService`] is everything a BlobSeer client needs from the data
//! plane: ask *where* chunks should go (the provider manager's placement
//! decision) and move chunk payloads to and from the providers holding them.
//! Clients hold a `ChunkService` trait object instead of concrete
//! [`ProviderManager`]/[`DataProvider`] handles, so the same client code runs
//! against the in-process wiring ([`InProcessChunkService`]), a simulator
//! shim, or — eventually — a networked transport.

use crate::manager::{PlacementRequest, ProviderManager};
use crate::provider::DataProvider;
use blobseer_types::{BlobError, ChunkEnvelope, ChunkId, ProviderId, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Placement and chunk transfer, as seen by a client.
///
/// Implementations must be cheap to share between threads: every client of a
/// deployment holds the same service handle and calls it concurrently.
pub trait ChunkService: Send + Sync {
    /// Decides which providers should store each chunk of an upcoming write.
    fn allocate(&self, request: PlacementRequest) -> Result<Vec<Vec<ProviderId>>>;

    /// Providers currently believed alive, in registration order. Used by
    /// writers to find substitutes when an assigned provider fails mid-write.
    fn live_providers(&self) -> Vec<ProviderId>;

    /// Stores one chunk replica (as a codec envelope) on the given provider.
    fn put_chunk(&self, provider: ProviderId, chunk: ChunkId, data: ChunkEnvelope) -> Result<()>;

    /// Stores several chunks on one provider, returning one result per
    /// chunk (same order). Transports that can pipeline override this to
    /// ship the whole batch in one send — that is where client-side frame
    /// coalescing comes from — while the default simply loops
    /// [`ChunkService::put_chunk`], so every implementation keeps identical
    /// per-chunk semantics.
    fn put_chunks(
        &self,
        provider: ProviderId,
        chunks: &[(ChunkId, ChunkEnvelope)],
    ) -> Vec<Result<()>> {
        chunks
            .iter()
            .map(|(chunk, data)| self.put_chunk(provider, *chunk, data.clone()))
            .collect()
    }

    /// Fetches one chunk replica from the given provider. The envelope comes
    /// back exactly as stored; opening it is the caller's job.
    fn get_chunk(&self, provider: ProviderId, chunk: &ChunkId) -> Result<ChunkEnvelope>;

    /// Removes a batch of reclaimed chunks from one provider, returning the
    /// physical bytes freed. Only the lifecycle sweeper calls this, and only
    /// for chunks unreachable from every retained version. The default is a
    /// safe no-op so transports without reclamation support merely never
    /// shrink — they are never wrong.
    fn remove_chunks(&self, provider: ProviderId, chunks: &[ChunkId]) -> Result<u64> {
        let _ = (provider, chunks);
        Ok(0)
    }
}

/// The shared-memory implementation of [`ChunkService`]: a provider manager
/// plus direct handles to every data provider of an in-process cluster.
pub struct InProcessChunkService {
    manager: Arc<ProviderManager>,
    providers: HashMap<ProviderId, Arc<DataProvider>>,
}

impl InProcessChunkService {
    /// Wires a manager and a set of provider handles into one service.
    #[must_use]
    pub fn new(
        manager: Arc<ProviderManager>,
        providers: HashMap<ProviderId, Arc<DataProvider>>,
    ) -> Self {
        InProcessChunkService { manager, providers }
    }

    /// The provider manager behind this service.
    pub fn manager(&self) -> &Arc<ProviderManager> {
        &self.manager
    }

    /// Handle of one data provider, if registered.
    pub fn provider(&self, id: ProviderId) -> Option<Arc<DataProvider>> {
        self.providers.get(&id).cloned()
    }

    /// Handles of every data provider, in id order.
    pub fn providers(&self) -> Vec<Arc<DataProvider>> {
        let mut ids: Vec<ProviderId> = self.providers.keys().copied().collect();
        ids.sort();
        ids.iter().map(|id| self.providers[id].clone()).collect()
    }

    /// Iterates over the provider handles without cloning or ordering them
    /// (for heartbeats and statistics sweeps that visit every provider).
    pub fn iter_providers(&self) -> impl Iterator<Item = &Arc<DataProvider>> {
        self.providers.values()
    }
}

impl ChunkService for InProcessChunkService {
    fn allocate(&self, request: PlacementRequest) -> Result<Vec<Vec<ProviderId>>> {
        self.manager.allocate(request)
    }

    fn live_providers(&self) -> Vec<ProviderId> {
        self.manager.live_providers()
    }

    fn put_chunk(&self, provider: ProviderId, chunk: ChunkId, data: ChunkEnvelope) -> Result<()> {
        self.providers
            .get(&provider)
            .ok_or(BlobError::UnknownProvider(provider))?
            .put_chunk(chunk, data)
    }

    fn get_chunk(&self, provider: ProviderId, chunk: &ChunkId) -> Result<ChunkEnvelope> {
        self.providers
            .get(&provider)
            .ok_or(BlobError::UnknownProvider(provider))?
            .get_chunk(chunk)
    }

    fn remove_chunks(&self, provider: ProviderId, chunks: &[ChunkId]) -> Result<u64> {
        self.providers
            .get(&provider)
            .ok_or(BlobError::UnknownProvider(provider))?
            .remove_chunks(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{BlobId, PlacementPolicy};

    fn service(providers: usize) -> InProcessChunkService {
        let manager = Arc::new(ProviderManager::with_providers(
            PlacementPolicy::RoundRobin,
            providers,
        ));
        let map = (0..providers)
            .map(|i| {
                let id = ProviderId(i as u32);
                (id, Arc::new(DataProvider::in_memory(id)))
            })
            .collect();
        InProcessChunkService::new(manager, map)
    }

    fn cid(slot: u64) -> ChunkId {
        ChunkId {
            blob: BlobId(1),
            write_tag: 1,
            slot,
        }
    }

    fn env(data: &'static [u8]) -> ChunkEnvelope {
        ChunkEnvelope::verbatim(bytes::Bytes::from_static(data))
    }

    #[test]
    fn chunks_roundtrip_through_the_service() {
        let svc = service(2);
        svc.put_chunk(ProviderId(0), cid(0), env(b"abc")).unwrap();
        assert_eq!(svc.get_chunk(ProviderId(0), &cid(0)).unwrap(), env(b"abc"));
        assert!(matches!(
            svc.get_chunk(ProviderId(1), &cid(0)),
            Err(BlobError::ChunkNotFound(_, _))
        ));
    }

    #[test]
    fn unknown_providers_are_reported() {
        let svc = service(1);
        assert!(matches!(
            svc.put_chunk(ProviderId(7), cid(0), env(b"x")),
            Err(BlobError::UnknownProvider(ProviderId(7)))
        ));
        assert!(matches!(
            svc.get_chunk(ProviderId(7), &cid(0)),
            Err(BlobError::UnknownProvider(ProviderId(7)))
        ));
    }

    #[test]
    fn allocation_and_liveness_delegate_to_the_manager() {
        let svc = service(4);
        let placement = svc
            .allocate(PlacementRequest {
                chunk_count: 4,
                replication: 1,
            })
            .unwrap();
        assert_eq!(placement.len(), 4);
        svc.manager().set_alive(ProviderId(2), false).unwrap();
        assert_eq!(
            svc.live_providers(),
            vec![ProviderId(0), ProviderId(1), ProviderId(3)]
        );
    }

    #[test]
    fn provider_handles_are_exposed_in_id_order() {
        let svc = service(3);
        let handles = svc.providers();
        assert_eq!(handles.len(), 3);
        for (i, p) in handles.iter().enumerate() {
            assert_eq!(p.id(), ProviderId(i as u32));
        }
        assert!(svc.provider(ProviderId(1)).is_some());
        assert!(svc.provider(ProviderId(9)).is_none());
    }
}
