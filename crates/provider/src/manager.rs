//! The provider manager.
//!
//! The provider manager "decides which chunks are stored on which data
//! providers when writes or appends are issued by the clients". It keeps a
//! registry of providers with their reported load and quality-of-service
//! score, and answers placement requests according to a configurable
//! [`PlacementPolicy`].

use crate::provider::ProviderStats;
use blobseer_types::{BlobError, PlacementPolicy, ProviderId, Result};
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// What the manager knows about one registered provider.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderStatus {
    /// The provider's identifier.
    pub id: ProviderId,
    /// Whether the provider is believed to be alive.
    pub alive: bool,
    /// Bytes stored, from the last load report.
    pub stored_bytes: u64,
    /// Chunks stored, from the last load report.
    pub stored_chunks: u64,
    /// Chunks assigned by the manager but not yet reported back (in-flight
    /// load), used by the least-loaded policy to avoid herding.
    pub pending_chunks: u64,
    /// Transfers the shared transfer scheduler had on the wire to this
    /// provider at the last load report — live data-plane load, as opposed
    /// to the manager's own optimistic `pending_chunks` guess.
    pub in_flight_transfers: u64,
    /// Quality-of-service score in `[0, 1]`; 1 means healthy. Updated by the
    /// QoS / behaviour-modelling layer, consumed by the QoS-aware policy.
    pub qos_score: f64,
}

impl ProviderStatus {
    fn new(id: ProviderId) -> Self {
        ProviderStatus {
            id,
            alive: true,
            stored_bytes: 0,
            stored_chunks: 0,
            pending_chunks: 0,
            in_flight_transfers: 0,
            qos_score: 1.0,
        }
    }

    /// Load metric used by the least-loaded policy: stored chunks plus both
    /// flavours of in-flight load (assigned-but-unreported and live
    /// transfers on the wire).
    fn load(&self) -> u64 {
        self.stored_chunks + self.pending_chunks + self.in_flight_transfers
    }
}

/// A placement request issued by a client about to write or append.
#[derive(Debug, Clone, Copy)]
pub struct PlacementRequest {
    /// Number of chunks the write is split into.
    pub chunk_count: usize,
    /// Number of distinct providers each chunk must be stored on.
    pub replication: usize,
}

/// The provider manager service.
pub struct ProviderManager {
    inner: Mutex<ManagerInner>,
    policy: PlacementPolicy,
}

struct ManagerInner {
    providers: HashMap<ProviderId, ProviderStatus>,
    /// Registration order, used by the round-robin policy.
    order: Vec<ProviderId>,
    /// Round-robin cursor.
    cursor: usize,
    /// Deterministic RNG for the random policy (seeded so that simulator
    /// runs are reproducible).
    rng: rand::rngs::StdRng,
}

impl ProviderManager {
    /// Creates a manager with the given placement policy and no providers.
    #[must_use]
    pub fn new(policy: PlacementPolicy) -> Self {
        ProviderManager {
            inner: Mutex::new(ManagerInner {
                providers: HashMap::new(),
                order: Vec::new(),
                cursor: 0,
                rng: rand::rngs::StdRng::seed_from_u64(0xb10b_5eed),
            }),
            policy,
        }
    }

    /// Creates a manager and immediately registers providers `0..count`.
    #[must_use]
    pub fn with_providers(policy: PlacementPolicy, count: usize) -> Self {
        let mgr = ProviderManager::new(policy);
        for i in 0..count {
            mgr.register(ProviderId(i as u32));
        }
        mgr
    }

    /// The placement policy this manager applies.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Registers a provider (idempotent).
    pub fn register(&self, id: ProviderId) {
        let mut inner = self.inner.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = inner.providers.entry(id) {
            e.insert(ProviderStatus::new(id));
            inner.order.push(id);
        }
    }

    /// Removes a provider permanently.
    pub fn deregister(&self, id: ProviderId) {
        let mut inner = self.inner.lock();
        inner.providers.remove(&id);
        inner.order.retain(|p| *p != id);
        if inner.cursor >= inner.order.len() {
            inner.cursor = 0;
        }
    }

    /// Marks a provider dead (placement skips it) or alive again.
    pub fn set_alive(&self, id: ProviderId, alive: bool) -> Result<()> {
        let mut inner = self.inner.lock();
        let status = inner
            .providers
            .get_mut(&id)
            .ok_or(BlobError::UnknownProvider(id))?;
        status.alive = alive;
        Ok(())
    }

    /// Updates the stored-load view of a provider from a heartbeat /
    /// statistics report; clears the manager's own optimistic pending
    /// counter and adopts the report's live in-flight transfer count (the
    /// transfer scheduler's gauge, folded in by the cluster heartbeat).
    pub fn report_load(&self, id: ProviderId, stats: ProviderStats) -> Result<()> {
        let mut inner = self.inner.lock();
        let status = inner
            .providers
            .get_mut(&id)
            .ok_or(BlobError::UnknownProvider(id))?;
        status.stored_bytes = stats.bytes;
        status.stored_chunks = stats.chunks;
        status.pending_chunks = 0;
        status.in_flight_transfers = stats.in_flight;
        Ok(())
    }

    /// Updates the QoS score of a provider (from the behaviour-modelling
    /// feedback loop). Scores are clamped to `[0, 1]`.
    pub fn set_qos_score(&self, id: ProviderId, score: f64) -> Result<()> {
        let mut inner = self.inner.lock();
        let status = inner
            .providers
            .get_mut(&id)
            .ok_or(BlobError::UnknownProvider(id))?;
        status.qos_score = score.clamp(0.0, 1.0);
        Ok(())
    }

    /// The manager's view of one provider.
    pub fn status(&self, id: ProviderId) -> Option<ProviderStatus> {
        self.inner.lock().providers.get(&id).cloned()
    }

    /// All registered providers (dead or alive), in registration order.
    pub fn all_statuses(&self) -> Vec<ProviderStatus> {
        let inner = self.inner.lock();
        inner
            .order
            .iter()
            .filter_map(|id| inner.providers.get(id).cloned())
            .collect()
    }

    /// Identifiers of providers currently believed alive, in registration
    /// order.
    pub fn live_providers(&self) -> Vec<ProviderId> {
        let inner = self.inner.lock();
        inner
            .order
            .iter()
            .filter(|id| inner.providers.get(id).map(|s| s.alive).unwrap_or(false))
            .copied()
            .collect()
    }

    /// Total number of registered providers.
    pub fn provider_count(&self) -> usize {
        self.inner.lock().providers.len()
    }

    /// Answers a placement request: for each of the `chunk_count` chunks,
    /// returns the `replication` distinct providers that should store it,
    /// chosen according to the manager's policy.
    pub fn allocate(&self, request: PlacementRequest) -> Result<Vec<Vec<ProviderId>>> {
        if request.chunk_count == 0 {
            return Ok(Vec::new());
        }
        if request.replication == 0 {
            return Err(BlobError::InvalidConfig(
                "replication factor must be at least 1".into(),
            ));
        }
        let mut inner = self.inner.lock();
        let live: Vec<ProviderId> = inner
            .order
            .iter()
            .filter(|id| inner.providers.get(id).map(|s| s.alive).unwrap_or(false))
            .copied()
            .collect();
        if live.len() < request.replication {
            return Err(BlobError::InsufficientProviders {
                needed: request.replication,
                available: live.len(),
            });
        }

        let mut placement = Vec::with_capacity(request.chunk_count);
        for _ in 0..request.chunk_count {
            let replicas = match self.policy {
                PlacementPolicy::RoundRobin => {
                    Self::pick_round_robin(&mut inner, &live, request.replication)
                }
                PlacementPolicy::Random => {
                    Self::pick_random(&mut inner, &live, request.replication)
                }
                PlacementPolicy::LeastLoaded => {
                    Self::pick_least_loaded(&inner, &live, request.replication)
                }
                PlacementPolicy::QosAware => {
                    Self::pick_qos_aware(&inner, &live, request.replication)
                }
            };
            for id in &replicas {
                if let Some(status) = inner.providers.get_mut(id) {
                    status.pending_chunks += 1;
                }
            }
            placement.push(replicas);
        }
        Ok(placement)
    }

    fn pick_round_robin(
        inner: &mut ManagerInner,
        live: &[ProviderId],
        replication: usize,
    ) -> Vec<ProviderId> {
        let mut replicas = Vec::with_capacity(replication);
        let n = live.len();
        let start = inner.cursor % n;
        for k in 0..replication {
            replicas.push(live[(start + k) % n]);
        }
        inner.cursor = (start + 1) % n;
        replicas
    }

    fn pick_random(
        inner: &mut ManagerInner,
        live: &[ProviderId],
        replication: usize,
    ) -> Vec<ProviderId> {
        let mut pool: Vec<ProviderId> = live.to_vec();
        pool.shuffle(&mut inner.rng);
        pool.truncate(replication);
        pool
    }

    fn pick_least_loaded(
        inner: &ManagerInner,
        live: &[ProviderId],
        replication: usize,
    ) -> Vec<ProviderId> {
        let mut candidates: Vec<&ProviderStatus> = live
            .iter()
            .filter_map(|id| inner.providers.get(id))
            .collect();
        candidates.sort_by_key(|s| (s.load(), s.id));
        candidates.iter().take(replication).map(|s| s.id).collect()
    }

    fn pick_qos_aware(
        inner: &ManagerInner,
        live: &[ProviderId],
        replication: usize,
    ) -> Vec<ProviderId> {
        let mut candidates: Vec<&ProviderStatus> = live
            .iter()
            .filter_map(|id| inner.providers.get(id))
            .collect();
        // Highest QoS score first; break ties by load, then id, so the
        // ordering is total and deterministic.
        candidates.sort_by(|a, b| {
            b.qos_score
                .partial_cmp(&a.qos_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.load().cmp(&b.load()))
                .then(a.id.cmp(&b.id))
        });
        candidates.iter().take(replication).map(|s| s.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(policy: PlacementPolicy, providers: usize) -> ProviderManager {
        ProviderManager::with_providers(policy, providers)
    }

    #[test]
    fn round_robin_cycles_through_providers() {
        let m = manager(PlacementPolicy::RoundRobin, 4);
        let placement = m
            .allocate(PlacementRequest {
                chunk_count: 8,
                replication: 1,
            })
            .unwrap();
        let ids: Vec<u32> = placement.iter().map(|r| r[0].0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_replicas_are_distinct_neighbours() {
        let m = manager(PlacementPolicy::RoundRobin, 4);
        let placement = m
            .allocate(PlacementRequest {
                chunk_count: 2,
                replication: 3,
            })
            .unwrap();
        for replicas in &placement {
            let mut d = replicas.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 3, "replicas must be distinct providers");
        }
        assert_eq!(
            placement[0],
            vec![ProviderId(0), ProviderId(1), ProviderId(2)]
        );
        assert_eq!(
            placement[1],
            vec![ProviderId(1), ProviderId(2), ProviderId(3)]
        );
    }

    #[test]
    fn random_placement_uses_every_provider_eventually() {
        let m = manager(PlacementPolicy::Random, 8);
        let placement = m
            .allocate(PlacementRequest {
                chunk_count: 200,
                replication: 2,
            })
            .unwrap();
        let mut seen: Vec<ProviderId> = placement.into_iter().flatten().collect();
        seen.sort();
        seen.dedup();
        assert_eq!(
            seen.len(),
            8,
            "200 random placements should touch all 8 providers"
        );
    }

    #[test]
    fn least_loaded_prefers_empty_providers() {
        let m = manager(PlacementPolicy::LeastLoaded, 3);
        // Report provider 0 and 1 as loaded.
        m.report_load(
            ProviderId(0),
            ProviderStats {
                chunks: 100,
                bytes: 100 << 20,
                ..ProviderStats::default()
            },
        )
        .unwrap();
        m.report_load(
            ProviderId(1),
            ProviderStats {
                chunks: 50,
                bytes: 50 << 20,
                ..ProviderStats::default()
            },
        )
        .unwrap();
        let placement = m
            .allocate(PlacementRequest {
                chunk_count: 1,
                replication: 2,
            })
            .unwrap();
        // Provider 2 (empty) first, then provider 1 (lighter of the loaded).
        assert_eq!(placement[0], vec![ProviderId(2), ProviderId(1)]);
    }

    #[test]
    fn least_loaded_accounts_for_in_flight_chunks() {
        let m = manager(PlacementPolicy::LeastLoaded, 2);
        // Ten single-chunk allocations alternate because pending load counts.
        let mut counts = HashMap::new();
        for _ in 0..10 {
            let p = m
                .allocate(PlacementRequest {
                    chunk_count: 1,
                    replication: 1,
                })
                .unwrap()[0][0];
            *counts.entry(p).or_insert(0u32) += 1;
        }
        assert_eq!(counts[&ProviderId(0)], 5);
        assert_eq!(counts[&ProviderId(1)], 5);
    }

    #[test]
    fn qos_aware_avoids_low_scored_providers() {
        let m = manager(PlacementPolicy::QosAware, 3);
        m.set_qos_score(ProviderId(1), 0.1).unwrap();
        let placement = m
            .allocate(PlacementRequest {
                chunk_count: 4,
                replication: 1,
            })
            .unwrap();
        for replicas in &placement {
            assert_ne!(
                replicas[0],
                ProviderId(1),
                "low-QoS provider must be avoided"
            );
        }
    }

    #[test]
    fn qos_scores_are_clamped() {
        let m = manager(PlacementPolicy::QosAware, 1);
        m.set_qos_score(ProviderId(0), 7.5).unwrap();
        assert_eq!(m.status(ProviderId(0)).unwrap().qos_score, 1.0);
        m.set_qos_score(ProviderId(0), -3.0).unwrap();
        assert_eq!(m.status(ProviderId(0)).unwrap().qos_score, 0.0);
    }

    #[test]
    fn dead_providers_are_skipped() {
        let m = manager(PlacementPolicy::RoundRobin, 3);
        m.set_alive(ProviderId(1), false).unwrap();
        let placement = m
            .allocate(PlacementRequest {
                chunk_count: 6,
                replication: 1,
            })
            .unwrap();
        for replicas in &placement {
            assert_ne!(replicas[0], ProviderId(1));
        }
        assert_eq!(m.live_providers(), vec![ProviderId(0), ProviderId(2)]);
    }

    #[test]
    fn insufficient_providers_is_reported() {
        let m = manager(PlacementPolicy::RoundRobin, 2);
        let err = m
            .allocate(PlacementRequest {
                chunk_count: 1,
                replication: 3,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            BlobError::InsufficientProviders {
                needed: 3,
                available: 2
            }
        ));
    }

    #[test]
    fn empty_request_allocates_nothing() {
        let m = manager(PlacementPolicy::RoundRobin, 2);
        assert!(m
            .allocate(PlacementRequest {
                chunk_count: 0,
                replication: 1,
            })
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_provider_operations_fail() {
        let m = manager(PlacementPolicy::RoundRobin, 1);
        assert!(m.set_alive(ProviderId(9), false).is_err());
        assert!(m.set_qos_score(ProviderId(9), 0.5).is_err());
        assert!(m
            .report_load(ProviderId(9), ProviderStats::default())
            .is_err());
        assert!(m.status(ProviderId(9)).is_none());
    }

    #[test]
    fn register_is_idempotent_and_deregister_removes() {
        let m = ProviderManager::new(PlacementPolicy::RoundRobin);
        m.register(ProviderId(5));
        m.register(ProviderId(5));
        assert_eq!(m.provider_count(), 1);
        m.deregister(ProviderId(5));
        assert_eq!(m.provider_count(), 0);
        assert!(m
            .allocate(PlacementRequest {
                chunk_count: 1,
                replication: 1,
            })
            .is_err());
    }

    #[test]
    fn reported_in_flight_transfers_steer_least_loaded_placement() {
        let m = manager(PlacementPolicy::LeastLoaded, 2);
        // Both providers store the same amount, but provider 0 has live
        // transfers on the wire: placement must prefer provider 1.
        m.report_load(
            ProviderId(0),
            ProviderStats {
                chunks: 10,
                in_flight: 6,
                ..ProviderStats::default()
            },
        )
        .unwrap();
        m.report_load(
            ProviderId(1),
            ProviderStats {
                chunks: 10,
                ..ProviderStats::default()
            },
        )
        .unwrap();
        assert_eq!(m.status(ProviderId(0)).unwrap().in_flight_transfers, 6);
        let p = m
            .allocate(PlacementRequest {
                chunk_count: 1,
                replication: 1,
            })
            .unwrap()[0][0];
        assert_eq!(p, ProviderId(1));
    }

    #[test]
    fn report_load_clears_pending() {
        let m = manager(PlacementPolicy::LeastLoaded, 1);
        m.allocate(PlacementRequest {
            chunk_count: 5,
            replication: 1,
        })
        .unwrap();
        assert_eq!(m.status(ProviderId(0)).unwrap().pending_chunks, 5);
        m.report_load(
            ProviderId(0),
            ProviderStats {
                chunks: 5,
                bytes: 5 << 10,
                ..ProviderStats::default()
            },
        )
        .unwrap();
        let status = m.status(ProviderId(0)).unwrap();
        assert_eq!(status.pending_chunks, 0);
        assert_eq!(status.stored_chunks, 5);
    }
}
