//! Wire codec for the chunk-plane control messages.
//!
//! The networked chunk plane ships placement requests and provider lists
//! inside framed RPC headers; their binary layout lives here, next to the
//! types, so the provider crate — not the transport — owns what its values
//! look like on the wire. Chunk payloads never pass through a codec: they
//! travel as raw [`bytes::Bytes`] after the header, zero-copy.

use crate::manager::PlacementRequest;
use blobseer_types::wire::{Wire, WireReader, WireWriter};
use blobseer_types::Result;

impl Wire for PlacementRequest {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.chunk_count);
        w.put(&self.replication);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(PlacementRequest {
            chunk_count: r.get()?,
            replication: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::wire::{decode, encode};
    use blobseer_types::ProviderId;

    #[test]
    fn placement_requests_roundtrip() {
        let req = PlacementRequest {
            chunk_count: 17,
            replication: 3,
        };
        let got = decode::<PlacementRequest>(&encode(&req)).unwrap();
        assert_eq!(got.chunk_count, 17);
        assert_eq!(got.replication, 3);
    }

    #[test]
    fn placement_responses_roundtrip() {
        // The allocate response: one provider list per chunk.
        let placement = vec![
            vec![ProviderId(0), ProviderId(1)],
            vec![ProviderId(2)],
            Vec::new(),
        ];
        assert_eq!(
            decode::<Vec<Vec<ProviderId>>>(&encode(&placement)).unwrap(),
            placement
        );
    }
}
