//! Chunk storage backends.
//!
//! Two backends are provided, matching the evolution described in the paper:
//!
//! * [`RamStore`] — chunks live in a hash map in memory. This is the
//!   original BlobSeer prototype's storage scheme and the default for tests,
//!   examples and the simulator.
//! * [`PersistentStore`] — chunks are appended to a log file on disk with an
//!   in-memory index, and a bounded [`RamStore`] acts as a read cache in
//!   front of it. This mirrors Section IV.B ("persistent data and metadata
//!   storage while keeping our initial RAM-based storage scheme as an
//!   underlying caching mechanism").
//!
//! Both backends store [`ChunkEnvelope`]s — the chunk codec's unit of
//! at-rest storage. A compressed chunk stays compressed on the provider
//! (RAM and disk hold the physical bytes); decompression happens only at
//! the reading client. `bytes_stored` therefore counts *physical* bytes,
//! which is what the provider's memory and disk actually pay.

use blobseer_types::{BlobError, ChunkEncoding, ChunkEnvelope, ChunkId, ProviderId, Result};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Abstraction over chunk storage so that providers can swap backends.
pub trait ChunkStore: Send + Sync {
    /// Stores a chunk envelope. Chunks are immutable: storing the same id
    /// twice with different contents is an error, storing identical contents
    /// is a no-op.
    fn put(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()>;

    /// Fetches a chunk envelope, or `None` if this store does not hold it.
    fn get(&self, id: &ChunkId) -> Option<ChunkEnvelope>;

    /// Whether the store holds the chunk.
    fn contains(&self, id: &ChunkId) -> bool {
        self.get(id).is_some()
    }

    /// Removes a chunk, returning the physical bytes freed, or `None` if
    /// the store did not hold it. Only the lifecycle sweeper removes chunks,
    /// and only ones unreachable from every retained version — immutability
    /// of *live* chunk ids is untouched.
    fn remove(&self, id: &ChunkId) -> Option<u64>;

    /// Number of chunks held.
    fn chunk_count(&self) -> usize;

    /// Total physical payload bytes held (compressed chunks count at their
    /// compressed size).
    fn bytes_stored(&self) -> u64;
}

/// In-memory chunk store.
///
/// When constructed with a capacity limit it behaves as an LRU cache
/// (evicting the least recently inserted/accessed chunk); without a limit it
/// keeps everything, which is the behaviour of the original RAM-only
/// prototype.
pub struct RamStore {
    inner: RwLock<RamInner>,
    capacity_bytes: Option<u64>,
}

struct RamInner {
    chunks: HashMap<ChunkId, ChunkEnvelope>,
    lru: VecDeque<ChunkId>,
    bytes: u64,
}

impl RamStore {
    /// Creates an unbounded in-memory store.
    #[must_use]
    pub fn unbounded() -> Self {
        RamStore {
            inner: RwLock::new(RamInner {
                chunks: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
            }),
            capacity_bytes: None,
        }
    }

    /// Creates a store that evicts least-recently-used chunks once it holds
    /// more than `capacity_bytes` bytes.
    #[must_use]
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        RamStore {
            inner: RwLock::new(RamInner {
                chunks: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
            }),
            capacity_bytes: Some(capacity_bytes),
        }
    }

    fn evict_if_needed(inner: &mut RamInner, capacity: u64) {
        while inner.bytes > capacity {
            let Some(victim) = inner.lru.pop_front() else {
                break;
            };
            if let Some(data) = inner.chunks.remove(&victim) {
                inner.bytes -= data.physical_len();
            }
        }
    }
}

impl Default for RamStore {
    fn default() -> Self {
        RamStore::unbounded()
    }
}

impl ChunkStore for RamStore {
    fn put(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()> {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.chunks.get(&id) {
            if existing == &data {
                return Ok(());
            }
            return Err(BlobError::Internal(format!(
                "conflicting immutable chunk write for {id}"
            )));
        }
        inner.bytes += data.physical_len();
        inner.chunks.insert(id, data);
        inner.lru.push_back(id);
        if let Some(capacity) = self.capacity_bytes {
            Self::evict_if_needed(&mut inner, capacity);
        }
        Ok(())
    }

    fn get(&self, id: &ChunkId) -> Option<ChunkEnvelope> {
        self.inner.read().chunks.get(id).cloned()
    }

    fn remove(&self, id: &ChunkId) -> Option<u64> {
        let mut inner = self.inner.write();
        let data = inner.chunks.remove(id)?;
        let freed = data.physical_len();
        inner.bytes -= freed;
        // The stale LRU entry is left behind on purpose: eviction pops ids
        // and skips ones no longer in the map, so it ages out harmlessly.
        Some(freed)
    }

    fn chunk_count(&self) -> usize {
        self.inner.read().chunks.len()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.read().bytes
    }
}

/// Location of a chunk inside the persistent log file.
///
/// The log holds only the (physical) payload bytes; the envelope's codec
/// metadata lives here in the index, so a compressed chunk round-trips
/// through disk without ever being re-coded.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    offset: u64,
    len: u32,
    encoding: ChunkEncoding,
    logical_len: u64,
}

/// File-backed chunk store: chunks are appended to a single log file and an
/// in-memory index maps chunk ids to their position. A bounded [`RamStore`]
/// caches recently written/read chunks.
pub struct PersistentStore {
    path: PathBuf,
    file: Mutex<File>,
    index: RwLock<HashMap<ChunkId, LogEntry>>,
    cache: RamStore,
    bytes: RwLock<u64>,
}

impl PersistentStore {
    /// Opens (or creates) a persistent store backed by the file at `path`,
    /// with an LRU read cache of `cache_bytes` bytes.
    pub fn open(path: impl AsRef<Path>, cache_bytes: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        Ok(PersistentStore {
            path,
            file: Mutex::new(file),
            index: RwLock::new(HashMap::new()),
            cache: RamStore::with_capacity(cache_bytes),
            bytes: RwLock::new(0),
        })
    }

    /// Path of the backing log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of chunks currently held in the RAM cache (for tests and
    /// monitoring).
    #[must_use]
    pub fn cached_chunks(&self) -> usize {
        self.cache.chunk_count()
    }
}

impl ChunkStore for PersistentStore {
    fn put(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()> {
        {
            let index = self.index.read();
            if index.contains_key(&id) {
                // Immutable chunks: verify idempotence through the cache or
                // the log and otherwise reject.
                if let Some(existing) = self.get(&id) {
                    if existing == data {
                        return Ok(());
                    }
                }
                return Err(BlobError::Internal(format!(
                    "conflicting immutable chunk write for {id}"
                )));
            }
        }
        let offset = {
            let mut file = self.file.lock();
            let offset = file.seek(SeekFrom::End(0))?;
            file.write_all(data.payload())?;
            offset
        };
        self.index.write().insert(
            id,
            LogEntry {
                offset,
                len: data.payload().len() as u32,
                encoding: data.encoding(),
                logical_len: data.logical_len(),
            },
        );
        *self.bytes.write() += data.physical_len();
        // Populate the cache so immediately following reads are RAM hits.
        let _ = self.cache.put(id, data);
        Ok(())
    }

    fn get(&self, id: &ChunkId) -> Option<ChunkEnvelope> {
        if let Some(hit) = self.cache.get(id) {
            return Some(hit);
        }
        let entry = *self.index.read().get(id)?;
        let mut buf = vec![0u8; entry.len as usize];
        {
            let mut file = self.file.lock();
            if file.seek(SeekFrom::Start(entry.offset)).is_err() {
                return None;
            }
            if file.read_exact(&mut buf).is_err() {
                return None;
            }
        }
        let payload = Bytes::from(buf);
        let data = match entry.encoding {
            ChunkEncoding::Verbatim => ChunkEnvelope::verbatim(payload),
            ChunkEncoding::Lz => ChunkEnvelope::compressed(entry.logical_len, payload),
        };
        let _ = self.cache.put(*id, data.clone());
        Some(data)
    }

    fn remove(&self, id: &ChunkId) -> Option<u64> {
        // Dropping the index entry makes the chunk unreachable; the payload
        // bytes stay in the append-only log until a future compaction pass
        // (the accounting reflects the logical reclaim immediately, which is
        // what capacity planning reads).
        let entry = self.index.write().remove(id)?;
        let _ = self.cache.remove(id);
        let freed = entry.len as u64;
        *self.bytes.write() -= freed;
        Some(freed)
    }

    fn chunk_count(&self) -> usize {
        self.index.read().len()
    }

    fn bytes_stored(&self) -> u64 {
        *self.bytes.read()
    }
}

/// Convenience used by tests in several crates: a provider id that is never
/// registered anywhere.
pub const TEST_PROVIDER: ProviderId = ProviderId(u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(blob: u64, tag: u64, slot: u64) -> ChunkId {
        ChunkId {
            blob: blobseer_types::BlobId(blob),
            write_tag: tag,
            slot,
        }
    }

    fn env(data: &'static [u8]) -> ChunkEnvelope {
        ChunkEnvelope::verbatim(Bytes::from_static(data))
    }

    #[test]
    fn ram_store_roundtrip_and_accounting() {
        let s = RamStore::unbounded();
        s.put(chunk(1, 1, 0), env(b"hello")).unwrap();
        s.put(chunk(1, 1, 1), env(b"world!")).unwrap();
        assert_eq!(s.get(&chunk(1, 1, 0)), Some(env(b"hello")));
        assert_eq!(s.get(&chunk(1, 2, 0)), None);
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.bytes_stored(), 11);
        assert!(s.contains(&chunk(1, 1, 1)));
    }

    #[test]
    fn ram_store_rejects_conflicting_rewrites() {
        let s = RamStore::unbounded();
        s.put(chunk(1, 1, 0), env(b"aaaa")).unwrap();
        s.put(chunk(1, 1, 0), env(b"aaaa")).unwrap();
        assert!(s.put(chunk(1, 1, 0), env(b"bbbb")).is_err());
    }

    #[test]
    fn ram_store_accounts_compressed_chunks_at_physical_size() {
        let s = RamStore::unbounded();
        // A 1024-byte chunk that compressed down to 64 physical bytes.
        let sealed = ChunkEnvelope::compressed(1024, Bytes::from(vec![9u8; 64]));
        s.put(chunk(2, 1, 0), sealed.clone()).unwrap();
        assert_eq!(s.bytes_stored(), 64);
        let back = s.get(&chunk(2, 1, 0)).unwrap();
        assert_eq!(back, sealed);
        assert_eq!(back.logical_len(), 1024);
    }

    #[test]
    fn bounded_ram_store_evicts_oldest() {
        let s = RamStore::with_capacity(10);
        s.put(
            chunk(1, 1, 0),
            ChunkEnvelope::verbatim(Bytes::from(vec![0u8; 6])),
        )
        .unwrap();
        s.put(
            chunk(1, 1, 1),
            ChunkEnvelope::verbatim(Bytes::from(vec![1u8; 6])),
        )
        .unwrap();
        // 12 bytes > 10: the first chunk is evicted.
        assert_eq!(s.get(&chunk(1, 1, 0)), None);
        assert!(s.get(&chunk(1, 1, 1)).is_some());
        assert!(s.bytes_stored() <= 10);
    }

    #[test]
    fn persistent_store_roundtrip_and_cache() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_roundtrip.log");
        let _ = std::fs::remove_file(&path);
        let s = PersistentStore::open(&path, 1024).unwrap();
        s.put(chunk(7, 9, 0), env(b"persist me")).unwrap();
        s.put(chunk(7, 9, 1), env(b"and me too")).unwrap();
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.bytes_stored(), 20);
        assert_eq!(s.get(&chunk(7, 9, 0)), Some(env(b"persist me")));
        assert!(s.cached_chunks() >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_store_reads_through_after_cache_eviction() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_eviction.log");
        let _ = std::fs::remove_file(&path);
        // Cache of 8 bytes: every new chunk evicts the previous one.
        let s = PersistentStore::open(&path, 8).unwrap();
        for i in 0..8u64 {
            s.put(
                chunk(1, 2, i),
                ChunkEnvelope::verbatim(Bytes::from(vec![i as u8; 8])),
            )
            .unwrap();
        }
        // All chunks are still readable from disk.
        for i in 0..8u64 {
            assert_eq!(
                s.get(&chunk(1, 2, i)),
                Some(ChunkEnvelope::verbatim(Bytes::from(vec![i as u8; 8])))
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_store_preserves_codec_metadata_across_cache_eviction() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_codec_meta.log");
        let _ = std::fs::remove_file(&path);
        // Cache of 8 bytes: each put evicts the previous chunk, so the read
        // below must reconstruct the envelope from the log + index alone.
        let s = PersistentStore::open(&path, 8).unwrap();
        let sealed = ChunkEnvelope::compressed(4096, Bytes::from(vec![5u8; 32]));
        s.put(chunk(9, 1, 0), sealed.clone()).unwrap();
        s.put(
            chunk(9, 1, 1),
            ChunkEnvelope::verbatim(Bytes::from(vec![6u8; 32])),
        )
        .unwrap();
        let back = s.get(&chunk(9, 1, 0)).unwrap();
        assert_eq!(back, sealed);
        assert!(!back.is_verbatim());
        assert_eq!(back.logical_len(), 4096);
        assert_eq!(s.bytes_stored(), 64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_store_rejects_conflicting_rewrites() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_conflict.log");
        let _ = std::fs::remove_file(&path);
        let s = PersistentStore::open(&path, 64).unwrap();
        s.put(chunk(3, 3, 3), env(b"v1")).unwrap();
        s.put(chunk(3, 3, 3), env(b"v1")).unwrap();
        assert!(s.put(chunk(3, 3, 3), env(b"v2")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_ram_store_access_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(RamStore::unbounded());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = chunk(t, t, i);
                    s.put(id, ChunkEnvelope::verbatim(Bytes::from(vec![t as u8; 16])))
                        .unwrap();
                    assert_eq!(s.get(&id).unwrap().physical_len(), 16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.chunk_count(), 1_600);
        assert_eq!(s.bytes_stored(), 1_600 * 16);
    }
}
