//! Chunk storage backends.
//!
//! Two backends are provided, matching the evolution described in the paper:
//!
//! * [`RamStore`] — chunks live in a hash map in memory. This is the
//!   original BlobSeer prototype's storage scheme and the default for tests,
//!   examples and the simulator.
//! * [`PersistentStore`] — chunks are appended to a log file on disk with an
//!   in-memory index, and a bounded [`RamStore`] acts as a read cache in
//!   front of it. This mirrors Section IV.B ("persistent data and metadata
//!   storage while keeping our initial RAM-based storage scheme as an
//!   underlying caching mechanism").

use blobseer_types::{BlobError, ChunkId, ProviderId, Result};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Abstraction over chunk storage so that providers can swap backends.
pub trait ChunkStore: Send + Sync {
    /// Stores a chunk. Chunks are immutable: storing the same id twice with
    /// different contents is an error, storing identical contents is a no-op.
    fn put(&self, id: ChunkId, data: Bytes) -> Result<()>;

    /// Fetches a chunk, or `None` if this store does not hold it.
    fn get(&self, id: &ChunkId) -> Option<Bytes>;

    /// Whether the store holds the chunk.
    fn contains(&self, id: &ChunkId) -> bool {
        self.get(id).is_some()
    }

    /// Number of chunks held.
    fn chunk_count(&self) -> usize;

    /// Total payload bytes held.
    fn bytes_stored(&self) -> u64;
}

/// In-memory chunk store.
///
/// When constructed with a capacity limit it behaves as an LRU cache
/// (evicting the least recently inserted/accessed chunk); without a limit it
/// keeps everything, which is the behaviour of the original RAM-only
/// prototype.
pub struct RamStore {
    inner: RwLock<RamInner>,
    capacity_bytes: Option<u64>,
}

struct RamInner {
    chunks: HashMap<ChunkId, Bytes>,
    lru: VecDeque<ChunkId>,
    bytes: u64,
}

impl RamStore {
    /// Creates an unbounded in-memory store.
    #[must_use]
    pub fn unbounded() -> Self {
        RamStore {
            inner: RwLock::new(RamInner {
                chunks: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
            }),
            capacity_bytes: None,
        }
    }

    /// Creates a store that evicts least-recently-used chunks once it holds
    /// more than `capacity_bytes` bytes.
    #[must_use]
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        RamStore {
            inner: RwLock::new(RamInner {
                chunks: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
            }),
            capacity_bytes: Some(capacity_bytes),
        }
    }

    fn evict_if_needed(inner: &mut RamInner, capacity: u64) {
        while inner.bytes > capacity {
            let Some(victim) = inner.lru.pop_front() else {
                break;
            };
            if let Some(data) = inner.chunks.remove(&victim) {
                inner.bytes -= data.len() as u64;
            }
        }
    }
}

impl Default for RamStore {
    fn default() -> Self {
        RamStore::unbounded()
    }
}

impl ChunkStore for RamStore {
    fn put(&self, id: ChunkId, data: Bytes) -> Result<()> {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.chunks.get(&id) {
            if existing == &data {
                return Ok(());
            }
            return Err(BlobError::Internal(format!(
                "conflicting immutable chunk write for {id}"
            )));
        }
        inner.bytes += data.len() as u64;
        inner.chunks.insert(id, data);
        inner.lru.push_back(id);
        if let Some(capacity) = self.capacity_bytes {
            Self::evict_if_needed(&mut inner, capacity);
        }
        Ok(())
    }

    fn get(&self, id: &ChunkId) -> Option<Bytes> {
        self.inner.read().chunks.get(id).cloned()
    }

    fn chunk_count(&self) -> usize {
        self.inner.read().chunks.len()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.read().bytes
    }
}

/// Location of a chunk inside the persistent log file.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    offset: u64,
    len: u32,
}

/// File-backed chunk store: chunks are appended to a single log file and an
/// in-memory index maps chunk ids to their position. A bounded [`RamStore`]
/// caches recently written/read chunks.
pub struct PersistentStore {
    path: PathBuf,
    file: Mutex<File>,
    index: RwLock<HashMap<ChunkId, LogEntry>>,
    cache: RamStore,
    bytes: RwLock<u64>,
}

impl PersistentStore {
    /// Opens (or creates) a persistent store backed by the file at `path`,
    /// with an LRU read cache of `cache_bytes` bytes.
    pub fn open(path: impl AsRef<Path>, cache_bytes: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        Ok(PersistentStore {
            path,
            file: Mutex::new(file),
            index: RwLock::new(HashMap::new()),
            cache: RamStore::with_capacity(cache_bytes),
            bytes: RwLock::new(0),
        })
    }

    /// Path of the backing log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of chunks currently held in the RAM cache (for tests and
    /// monitoring).
    #[must_use]
    pub fn cached_chunks(&self) -> usize {
        self.cache.chunk_count()
    }
}

impl ChunkStore for PersistentStore {
    fn put(&self, id: ChunkId, data: Bytes) -> Result<()> {
        {
            let index = self.index.read();
            if index.contains_key(&id) {
                // Immutable chunks: verify idempotence through the cache or
                // the log and otherwise reject.
                if let Some(existing) = self.get(&id) {
                    if existing == data {
                        return Ok(());
                    }
                }
                return Err(BlobError::Internal(format!(
                    "conflicting immutable chunk write for {id}"
                )));
            }
        }
        let offset = {
            let mut file = self.file.lock();
            let offset = file.seek(SeekFrom::End(0))?;
            file.write_all(&data)?;
            offset
        };
        self.index.write().insert(
            id,
            LogEntry {
                offset,
                len: data.len() as u32,
            },
        );
        *self.bytes.write() += data.len() as u64;
        // Populate the cache so immediately following reads are RAM hits.
        let _ = self.cache.put(id, data);
        Ok(())
    }

    fn get(&self, id: &ChunkId) -> Option<Bytes> {
        if let Some(hit) = self.cache.get(id) {
            return Some(hit);
        }
        let entry = *self.index.read().get(id)?;
        let mut buf = vec![0u8; entry.len as usize];
        {
            let mut file = self.file.lock();
            if file.seek(SeekFrom::Start(entry.offset)).is_err() {
                return None;
            }
            if file.read_exact(&mut buf).is_err() {
                return None;
            }
        }
        let data = Bytes::from(buf);
        let _ = self.cache.put(*id, data.clone());
        Some(data)
    }

    fn chunk_count(&self) -> usize {
        self.index.read().len()
    }

    fn bytes_stored(&self) -> u64 {
        *self.bytes.read()
    }
}

/// Convenience used by tests in several crates: a provider id that is never
/// registered anywhere.
pub const TEST_PROVIDER: ProviderId = ProviderId(u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(blob: u64, tag: u64, slot: u64) -> ChunkId {
        ChunkId {
            blob: blobseer_types::BlobId(blob),
            write_tag: tag,
            slot,
        }
    }

    #[test]
    fn ram_store_roundtrip_and_accounting() {
        let s = RamStore::unbounded();
        s.put(chunk(1, 1, 0), Bytes::from_static(b"hello")).unwrap();
        s.put(chunk(1, 1, 1), Bytes::from_static(b"world!"))
            .unwrap();
        assert_eq!(s.get(&chunk(1, 1, 0)), Some(Bytes::from_static(b"hello")));
        assert_eq!(s.get(&chunk(1, 2, 0)), None);
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.bytes_stored(), 11);
        assert!(s.contains(&chunk(1, 1, 1)));
    }

    #[test]
    fn ram_store_rejects_conflicting_rewrites() {
        let s = RamStore::unbounded();
        s.put(chunk(1, 1, 0), Bytes::from_static(b"aaaa")).unwrap();
        s.put(chunk(1, 1, 0), Bytes::from_static(b"aaaa")).unwrap();
        assert!(s.put(chunk(1, 1, 0), Bytes::from_static(b"bbbb")).is_err());
    }

    #[test]
    fn bounded_ram_store_evicts_oldest() {
        let s = RamStore::with_capacity(10);
        s.put(chunk(1, 1, 0), Bytes::from(vec![0u8; 6])).unwrap();
        s.put(chunk(1, 1, 1), Bytes::from(vec![1u8; 6])).unwrap();
        // 12 bytes > 10: the first chunk is evicted.
        assert_eq!(s.get(&chunk(1, 1, 0)), None);
        assert!(s.get(&chunk(1, 1, 1)).is_some());
        assert!(s.bytes_stored() <= 10);
    }

    #[test]
    fn persistent_store_roundtrip_and_cache() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_roundtrip.log");
        let _ = std::fs::remove_file(&path);
        let s = PersistentStore::open(&path, 1024).unwrap();
        s.put(chunk(7, 9, 0), Bytes::from_static(b"persist me"))
            .unwrap();
        s.put(chunk(7, 9, 1), Bytes::from_static(b"and me too"))
            .unwrap();
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.bytes_stored(), 20);
        assert_eq!(
            s.get(&chunk(7, 9, 0)),
            Some(Bytes::from_static(b"persist me"))
        );
        assert!(s.cached_chunks() >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_store_reads_through_after_cache_eviction() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_eviction.log");
        let _ = std::fs::remove_file(&path);
        // Cache of 8 bytes: every new chunk evicts the previous one.
        let s = PersistentStore::open(&path, 8).unwrap();
        for i in 0..8u64 {
            s.put(chunk(1, 2, i), Bytes::from(vec![i as u8; 8]))
                .unwrap();
        }
        // All chunks are still readable from disk.
        for i in 0..8u64 {
            assert_eq!(s.get(&chunk(1, 2, i)), Some(Bytes::from(vec![i as u8; 8])));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_store_rejects_conflicting_rewrites() {
        let dir = std::env::temp_dir().join(format!("blobseer-test-{}", std::process::id()));
        let path = dir.join("persistent_conflict.log");
        let _ = std::fs::remove_file(&path);
        let s = PersistentStore::open(&path, 64).unwrap();
        s.put(chunk(3, 3, 3), Bytes::from_static(b"v1")).unwrap();
        s.put(chunk(3, 3, 3), Bytes::from_static(b"v1")).unwrap();
        assert!(s.put(chunk(3, 3, 3), Bytes::from_static(b"v2")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_ram_store_access_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(RamStore::unbounded());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = chunk(t, t, i);
                    s.put(id, Bytes::from(vec![t as u8; 16])).unwrap();
                    assert_eq!(s.get(&id).unwrap().len(), 16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.chunk_count(), 1_600);
        assert_eq!(s.bytes_stored(), 1_600 * 16);
    }
}
