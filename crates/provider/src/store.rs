//! Chunk storage backends.
//!
//! This module defines the [`ChunkStore`] trait every backend implements and
//! the [`RamStore`] in-memory backend — the original BlobSeer prototype's
//! storage scheme and the default for tests, examples and the simulator.
//! The durable tier (`blobseer-persist`'s segment store: append-only
//! CRC-framed segment files with crash recovery) implements the same trait
//! from its own crate, mirroring Section IV.B ("persistent data and metadata
//! storage while keeping our initial RAM-based storage scheme as an
//! underlying caching mechanism") — the RAM store is exactly that caching
//! tier.
//!
//! Every backend stores [`ChunkEnvelope`]s — the chunk codec's unit of
//! at-rest storage. A compressed chunk stays compressed on the provider
//! (RAM and disk hold the physical bytes); decompression happens only at
//! the reading client. `bytes_stored` therefore counts *physical* bytes,
//! which is what the provider's memory and disk actually pay.

use blobseer_types::{BlobError, ChunkEnvelope, ChunkId, ProviderId, Result};
use parking_lot::RwLock;
use std::collections::{HashMap, VecDeque};

/// Abstraction over chunk storage so that providers can swap backends.
pub trait ChunkStore: Send + Sync {
    /// Stores a chunk envelope. Chunks are immutable: storing the same id
    /// twice with different contents is an error, storing identical contents
    /// is a no-op.
    fn put(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()>;

    /// Fetches a chunk envelope. `Ok(None)` means this store does not hold
    /// the chunk; `Err` means the store holds a record for it but cannot
    /// produce the bytes (an at-rest CRC mismatch surfaces here as
    /// [`BlobError::Transport`], so readers treat it as retryable and rotate
    /// to another replica instead of reading it back as a clean miss).
    fn get(&self, id: &ChunkId) -> Result<Option<ChunkEnvelope>>;

    /// Whether the store holds the chunk (a record it cannot verify still
    /// counts as held — the chunk exists, it is just unreadable here).
    fn contains(&self, id: &ChunkId) -> bool {
        !matches!(self.get(id), Ok(None))
    }

    /// Removes a chunk, returning the physical bytes freed, or `None` if
    /// the store did not hold it. Only the lifecycle sweeper removes chunks,
    /// and only ones unreachable from every retained version — immutability
    /// of *live* chunk ids is untouched.
    fn remove(&self, id: &ChunkId) -> Option<u64>;

    /// Number of chunks held.
    fn chunk_count(&self) -> usize;

    /// Total physical payload bytes held (compressed chunks count at their
    /// compressed size).
    fn bytes_stored(&self) -> u64;
}

/// In-memory chunk store.
///
/// When constructed with a capacity limit it behaves as an LRU cache
/// (evicting the least recently inserted/accessed chunk); without a limit it
/// keeps everything, which is the behaviour of the original RAM-only
/// prototype.
pub struct RamStore {
    inner: RwLock<RamInner>,
    capacity_bytes: Option<u64>,
}

struct RamInner {
    chunks: HashMap<ChunkId, ChunkEnvelope>,
    lru: VecDeque<ChunkId>,
    bytes: u64,
}

impl RamStore {
    /// Creates an unbounded in-memory store.
    #[must_use]
    pub fn unbounded() -> Self {
        RamStore {
            inner: RwLock::new(RamInner {
                chunks: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
            }),
            capacity_bytes: None,
        }
    }

    /// Creates a store that evicts least-recently-used chunks once it holds
    /// more than `capacity_bytes` bytes.
    #[must_use]
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        RamStore {
            inner: RwLock::new(RamInner {
                chunks: HashMap::new(),
                lru: VecDeque::new(),
                bytes: 0,
            }),
            capacity_bytes: Some(capacity_bytes),
        }
    }

    fn evict_if_needed(inner: &mut RamInner, capacity: u64) {
        while inner.bytes > capacity {
            let Some(victim) = inner.lru.pop_front() else {
                break;
            };
            if let Some(data) = inner.chunks.remove(&victim) {
                inner.bytes -= data.physical_len();
            }
        }
    }
}

impl Default for RamStore {
    fn default() -> Self {
        RamStore::unbounded()
    }
}

impl ChunkStore for RamStore {
    fn put(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()> {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.chunks.get(&id) {
            if existing == &data {
                return Ok(());
            }
            return Err(BlobError::Internal(format!(
                "conflicting immutable chunk write for {id}"
            )));
        }
        inner.bytes += data.physical_len();
        inner.chunks.insert(id, data);
        inner.lru.push_back(id);
        if let Some(capacity) = self.capacity_bytes {
            Self::evict_if_needed(&mut inner, capacity);
        }
        Ok(())
    }

    fn get(&self, id: &ChunkId) -> Result<Option<ChunkEnvelope>> {
        Ok(self.inner.read().chunks.get(id).cloned())
    }

    fn remove(&self, id: &ChunkId) -> Option<u64> {
        let mut inner = self.inner.write();
        let data = inner.chunks.remove(id)?;
        let freed = data.physical_len();
        inner.bytes -= freed;
        // The stale LRU entry is left behind on purpose: eviction pops ids
        // and skips ones no longer in the map, so it ages out harmlessly.
        Some(freed)
    }

    fn chunk_count(&self) -> usize {
        self.inner.read().chunks.len()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.read().bytes
    }
}

/// Convenience used by tests in several crates: a provider id that is never
/// registered anywhere.
pub const TEST_PROVIDER: ProviderId = ProviderId(u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn chunk(blob: u64, tag: u64, slot: u64) -> ChunkId {
        ChunkId {
            blob: blobseer_types::BlobId(blob),
            write_tag: tag,
            slot,
        }
    }

    fn env(data: &'static [u8]) -> ChunkEnvelope {
        ChunkEnvelope::verbatim(Bytes::from_static(data))
    }

    #[test]
    fn ram_store_roundtrip_and_accounting() {
        let s = RamStore::unbounded();
        s.put(chunk(1, 1, 0), env(b"hello")).unwrap();
        s.put(chunk(1, 1, 1), env(b"world!")).unwrap();
        assert_eq!(s.get(&chunk(1, 1, 0)).unwrap(), Some(env(b"hello")));
        assert_eq!(s.get(&chunk(1, 2, 0)).unwrap(), None);
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.bytes_stored(), 11);
        assert!(s.contains(&chunk(1, 1, 1)));
    }

    #[test]
    fn ram_store_rejects_conflicting_rewrites() {
        let s = RamStore::unbounded();
        s.put(chunk(1, 1, 0), env(b"aaaa")).unwrap();
        s.put(chunk(1, 1, 0), env(b"aaaa")).unwrap();
        assert!(s.put(chunk(1, 1, 0), env(b"bbbb")).is_err());
    }

    #[test]
    fn ram_store_accounts_compressed_chunks_at_physical_size() {
        let s = RamStore::unbounded();
        // A 1024-byte chunk that compressed down to 64 physical bytes.
        let sealed = ChunkEnvelope::compressed(1024, Bytes::from(vec![9u8; 64]));
        s.put(chunk(2, 1, 0), sealed.clone()).unwrap();
        assert_eq!(s.bytes_stored(), 64);
        let back = s.get(&chunk(2, 1, 0)).unwrap().unwrap();
        assert_eq!(back, sealed);
        assert_eq!(back.logical_len(), 1024);
    }

    #[test]
    fn bounded_ram_store_evicts_oldest() {
        let s = RamStore::with_capacity(10);
        s.put(
            chunk(1, 1, 0),
            ChunkEnvelope::verbatim(Bytes::from(vec![0u8; 6])),
        )
        .unwrap();
        s.put(
            chunk(1, 1, 1),
            ChunkEnvelope::verbatim(Bytes::from(vec![1u8; 6])),
        )
        .unwrap();
        // 12 bytes > 10: the first chunk is evicted.
        assert_eq!(s.get(&chunk(1, 1, 0)).unwrap(), None);
        assert!(s.get(&chunk(1, 1, 1)).unwrap().is_some());
        assert!(s.bytes_stored() <= 10);
    }

    #[test]
    fn concurrent_ram_store_access_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(RamStore::unbounded());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = chunk(t, t, i);
                    s.put(id, ChunkEnvelope::verbatim(Bytes::from(vec![t as u8; 16])))
                        .unwrap();
                    assert_eq!(s.get(&id).unwrap().unwrap().physical_len(), 16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.chunk_count(), 1_600);
        assert_eq!(s.bytes_stored(), 1_600 * 16);
    }
}
