//! Data providers and the provider manager.
//!
//! In BlobSeer the *data providers* physically store the fixed-size chunks
//! blobs are striped into, while the *provider manager* decides which chunks
//! go to which providers when writes and appends are issued (the
//! "configurable chunk distribution strategy" of the paper).
//!
//! * [`store`] — chunk storage backends: a RAM store (the paper's initial
//!   prototype) and a persistent, file-backed store that keeps the RAM store
//!   as a cache (Section IV.B adds "persistent data and metadata storage
//!   while keeping our initial RAM-based storage scheme as an underlying
//!   caching mechanism").
//! * [`provider`] — a data provider node: a store plus statistics and a
//!   failure switch.
//! * [`manager`] — the provider manager: registry, heartbeats, load reports
//!   and placement strategies (round-robin, random, least-loaded,
//!   QoS-aware).
//! * [`service`] — the [`ChunkService`] boundary clients program against,
//!   with the shared-memory [`InProcessChunkService`] implementation.

pub mod manager;
pub mod provider;
pub mod service;
pub mod store;
pub mod wire;

pub use manager::{PlacementRequest, ProviderManager, ProviderStatus};
pub use provider::{DataProvider, ProviderStats};
pub use service::{ChunkService, InProcessChunkService};
pub use store::{ChunkStore, RamStore};
