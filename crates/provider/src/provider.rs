//! A data provider node: a chunk store plus statistics and a failure switch.

use crate::store::{ChunkStore, RamStore};
use blobseer_types::{BlobError, ChunkEnvelope, ChunkId, ProviderId, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Usage statistics of one data provider, reported to the provider manager
/// and consumed by the QoS layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderStats {
    /// Chunks currently stored.
    pub chunks: u64,
    /// Physical payload bytes currently stored (compressed chunks count at
    /// their compressed size — what the provider's memory or disk pays).
    pub bytes: u64,
    /// Successful chunk writes served since start.
    pub writes: u64,
    /// Successful chunk reads served since start.
    pub reads: u64,
    /// Requests rejected because the provider was failed.
    pub rejected: u64,
    /// Transfers currently on the wire to/from this provider, as observed by
    /// the cluster's transfer scheduler at report time. The provider itself
    /// cannot know this (the data may still be queued client-side), so
    /// [`DataProvider::stats`] reports zero and the cluster heartbeat fills
    /// it in from the transfer pool's live gauge.
    pub in_flight: u64,
    /// Physical payload bytes reclaimed by the lifecycle sweeper since
    /// start (chunks of evicted versions removed from this provider).
    pub reclaimed_bytes: u64,
    /// Chunks reclaimed by the lifecycle sweeper since start.
    pub reclaimed_chunks: u64,
}

/// One data provider of the BlobSeer deployment.
///
/// A provider wraps a [`ChunkStore`] backend, tracks usage statistics and can
/// be switched off and on again to emulate failures (experiment E).
pub struct DataProvider {
    id: ProviderId,
    store: Arc<dyn ChunkStore>,
    alive: AtomicBool,
    writes: AtomicU64,
    reads: AtomicU64,
    rejected: AtomicU64,
    reclaimed_bytes: AtomicU64,
    reclaimed_chunks: AtomicU64,
}

impl DataProvider {
    /// Creates a provider backed by an unbounded RAM store.
    #[must_use]
    pub fn in_memory(id: ProviderId) -> Self {
        DataProvider::with_store(id, Arc::new(RamStore::unbounded()))
    }

    /// Creates a provider backed by an arbitrary chunk store.
    #[must_use]
    pub fn with_store(id: ProviderId, store: Arc<dyn ChunkStore>) -> Self {
        DataProvider {
            id,
            store,
            alive: AtomicBool::new(true),
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            reclaimed_bytes: AtomicU64::new(0),
            reclaimed_chunks: AtomicU64::new(0),
        }
    }

    /// The provider's identifier.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    /// Whether the provider is serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Switches the provider off (`false`) or back on (`true`).
    pub fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::Release);
    }

    /// Stores a chunk envelope on this provider. Envelopes are stored as
    /// received — a provider never compresses or decompresses chunk data.
    pub fn put_chunk(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()> {
        if !self.is_alive() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::ProviderUnavailable(self.id));
        }
        self.store.put(id, data)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads a chunk envelope from this provider.
    pub fn get_chunk(&self, id: &ChunkId) -> Result<ChunkEnvelope> {
        if !self.is_alive() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::ProviderUnavailable(self.id));
        }
        match self.store.get(id) {
            Ok(Some(data)) => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                Ok(data)
            }
            Ok(None) => Err(BlobError::ChunkNotFound(*id, self.id)),
            // A held-but-unreadable record (at-rest corruption) propagates
            // as the store's retryable error so readers rotate replicas
            // instead of treating it as a clean miss.
            Err(err) => Err(err),
        }
    }

    /// Whether this provider currently stores the chunk (failed providers
    /// report `false`).
    pub fn has_chunk(&self, id: &ChunkId) -> bool {
        self.is_alive() && self.store.contains(id)
    }

    /// Removes a batch of chunks reclaimed by the lifecycle sweeper and
    /// returns the physical bytes freed. Chunks the provider does not hold
    /// are skipped (sweeps are idempotent); a failed provider rejects the
    /// whole batch, and the sweeper retries on a later pass.
    pub fn remove_chunks(&self, ids: &[ChunkId]) -> Result<u64> {
        if !self.is_alive() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(BlobError::ProviderUnavailable(self.id));
        }
        let mut freed = 0u64;
        let mut removed = 0u64;
        for id in ids {
            if let Some(bytes) = self.store.remove(id) {
                freed += bytes;
                removed += 1;
            }
        }
        self.reclaimed_bytes.fetch_add(freed, Ordering::Relaxed);
        self.reclaimed_chunks.fetch_add(removed, Ordering::Relaxed);
        Ok(freed)
    }

    /// Current usage statistics.
    pub fn stats(&self) -> ProviderStats {
        ProviderStats {
            chunks: self.store.chunk_count() as u64,
            bytes: self.store.bytes_stored(),
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            in_flight: 0,
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
            reclaimed_chunks: self.reclaimed_chunks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::BlobId;
    use bytes::Bytes;

    fn cid(slot: u64) -> ChunkId {
        ChunkId {
            blob: BlobId(1),
            write_tag: 42,
            slot,
        }
    }

    fn env(data: &'static [u8]) -> ChunkEnvelope {
        ChunkEnvelope::verbatim(Bytes::from_static(data))
    }

    #[test]
    fn put_get_and_stats() {
        let p = DataProvider::in_memory(ProviderId(0));
        p.put_chunk(cid(0), env(b"abcd")).unwrap();
        p.put_chunk(cid(1), env(b"efgh")).unwrap();
        assert_eq!(p.get_chunk(&cid(0)).unwrap(), env(b"abcd"));
        assert!(p.has_chunk(&cid(1)));
        assert!(!p.has_chunk(&cid(2)));
        let stats = p.stats();
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.bytes, 8);
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let p = DataProvider::in_memory(ProviderId(3));
        assert!(matches!(
            p.get_chunk(&cid(9)),
            Err(BlobError::ChunkNotFound(_, ProviderId(3)))
        ));
    }

    #[test]
    fn failed_provider_rejects_requests() {
        let p = DataProvider::in_memory(ProviderId(1));
        p.put_chunk(cid(0), env(b"abcd")).unwrap();
        p.set_alive(false);
        assert!(matches!(
            p.put_chunk(cid(1), env(b"x")),
            Err(BlobError::ProviderUnavailable(ProviderId(1)))
        ));
        assert!(matches!(
            p.get_chunk(&cid(0)),
            Err(BlobError::ProviderUnavailable(ProviderId(1)))
        ));
        assert!(!p.has_chunk(&cid(0)));
        assert_eq!(p.stats().rejected, 2);
        // Recover and serve again: the chunk survived the outage.
        p.set_alive(true);
        assert_eq!(p.get_chunk(&cid(0)).unwrap(), env(b"abcd"));
    }

    #[test]
    fn concurrent_clients_share_one_provider() {
        use std::sync::Arc;
        let p = Arc::new(DataProvider::in_memory(ProviderId(7)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let id = ChunkId {
                        blob: BlobId(t),
                        write_tag: t,
                        slot: i,
                    };
                    p.put_chunk(id, ChunkEnvelope::verbatim(Bytes::from(vec![t as u8; 32])))
                        .unwrap();
                    assert_eq!(p.get_chunk(&id).unwrap().physical_len(), 32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.chunks, 800);
        assert_eq!(stats.writes, 800);
        assert_eq!(stats.reads, 800);
    }
}
