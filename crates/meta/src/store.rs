//! Metadata storage abstraction.
//!
//! Tree nodes are write-once values; any key/value store can hold them. The
//! production deployment uses the metadata-provider DHT
//! ([`blobseer_dht::Dht`]); unit tests use [`InMemoryMetaStore`]; clients can
//! wrap either in a [`CachedMetadataStore`] to exploit the immutability of
//! nodes for free client-side caching (the paper's Section IV.A reports
//! clear benefits from metadata caching).

use crate::node::{NodeBody, NodeKey};
use blobseer_dht::Dht;
use blobseer_types::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Abstraction over the place segment-tree nodes are stored in.
///
/// Besides per-key access, the trait carries the *batched* operations the
/// hot paths are built on: a level-order read descent fetches one whole tree
/// level per [`MetadataStore::get_nodes`] call, and publication uploads a
/// whole write's nodes per [`MetadataStore::put_nodes`] call. Distributed
/// stores group a batch by owning node, turning O(nodes) round-trips into
/// O(owning nodes); the trivial defaults keep single-map stores correct.
pub trait MetadataStore: Send + Sync {
    /// Stores a node. Nodes are write-once: storing a different body under
    /// an existing key is an error, re-storing an identical body is a no-op.
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()>;

    /// Fetches a node by key.
    ///
    /// The two failure shapes are deliberately distinct: `Ok(None)` means the
    /// store answered and the node is *absent* (a reader may be racing a
    /// publication and can keep waiting), while `Err` means the store could
    /// not be reached at all (the caller must propagate, not treat the plane
    /// as empty — conflating the two is how a boundary merge reads garbage).
    fn get_node(&self, key: &NodeKey) -> Result<Option<NodeBody>>;

    /// Fetches a batch of nodes, one result slot per key in order.
    /// Implementations route the batch once per owning node. Same
    /// absent-versus-unreachable contract as [`MetadataStore::get_node`].
    fn get_nodes(&self, keys: &[NodeKey]) -> Result<Vec<Option<NodeBody>>> {
        keys.iter().map(|key| self.get_node(key)).collect()
    }

    /// Stores a batch of nodes with per-entry write-once semantics, routing
    /// the batch once per owning node. The bodies are moved, not cloned.
    fn put_nodes(&self, nodes: Vec<(NodeKey, NodeBody)>) -> Result<()> {
        for (key, body) in nodes {
            self.put_node(key, body)?;
        }
        Ok(())
    }

    /// Deletes a batch of nodes, routing the batch once per owning node, and
    /// returns the number of keys that were present and removed. Deleting an
    /// absent key is a no-op — sweeps are idempotent and may race each other.
    ///
    /// Only the version-lifecycle sweeper calls this, and only for nodes
    /// unreachable from every retained version; write-once semantics for
    /// live keys are untouched. The default is a safe no-op: a store without
    /// reclamation support never deletes anything (it merely never shrinks).
    fn delete_nodes(&self, keys: &[NodeKey]) -> Result<usize> {
        let _ = keys;
        Ok(0)
    }

    /// Number of nodes held (across all replicas for distributed stores the
    /// count is per-holding-node; used only for statistics and tests).
    fn node_count(&self) -> usize;

    /// Every distinct node held (replicas deduplicated). The durable tier's
    /// metadata checkpoint walks this to write a compacted image of the
    /// live node set; it is a full scan, never a hot-path call. Stores that
    /// cannot enumerate themselves (client-side RPC views) return `Err`, so
    /// a checkpoint against them fails loudly instead of writing an empty
    /// image.
    fn snapshot_nodes(&self) -> Result<Vec<(NodeKey, NodeBody)>> {
        Err(blobseer_types::BlobError::Internal(
            "this metadata store cannot enumerate its nodes".into(),
        ))
    }
}

/// The metadata-provider DHT is the canonical metadata store.
impl MetadataStore for Dht<NodeKey, NodeBody> {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        self.put(key, body)
    }

    fn get_node(&self, key: &NodeKey) -> Result<Option<NodeBody>> {
        Ok(self.get(key))
    }

    fn get_nodes(&self, keys: &[NodeKey]) -> Result<Vec<Option<NodeBody>>> {
        Ok(self.get_batch(keys))
    }

    fn put_nodes(&self, nodes: Vec<(NodeKey, NodeBody)>) -> Result<()> {
        self.put_batch(nodes)
    }

    fn delete_nodes(&self, keys: &[NodeKey]) -> Result<usize> {
        Ok(self.remove_batch(keys))
    }

    fn node_count(&self) -> usize {
        self.total_entries()
    }

    fn snapshot_nodes(&self) -> Result<Vec<(NodeKey, NodeBody)>> {
        Ok(self.export_entries())
    }
}

/// A single-map in-memory metadata store, used by unit tests and by the
/// centralised-metadata baseline of experiment C.
#[derive(Default)]
pub struct InMemoryMetaStore {
    nodes: RwLock<HashMap<NodeKey, NodeBody>>,
}

impl InMemoryMetaStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        InMemoryMetaStore::default()
    }
}

impl MetadataStore for InMemoryMetaStore {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        let mut nodes = self.nodes.write();
        match nodes.get(&key) {
            Some(existing) if *existing != body => Err(blobseer_types::BlobError::Internal(
                format!("conflicting write-once metadata put for {key}"),
            )),
            Some(_) => Ok(()),
            None => {
                nodes.insert(key, body);
                Ok(())
            }
        }
    }

    fn get_node(&self, key: &NodeKey) -> Result<Option<NodeBody>> {
        Ok(self.nodes.read().get(key).cloned())
    }

    fn get_nodes(&self, keys: &[NodeKey]) -> Result<Vec<Option<NodeBody>>> {
        let nodes = self.nodes.read();
        Ok(keys.iter().map(|key| nodes.get(key).cloned()).collect())
    }

    fn put_nodes(&self, batch: Vec<(NodeKey, NodeBody)>) -> Result<()> {
        let mut nodes = self.nodes.write();
        for (key, body) in batch {
            match nodes.get(&key) {
                Some(existing) if *existing != body => {
                    return Err(blobseer_types::BlobError::Internal(format!(
                        "conflicting write-once metadata put for {key}"
                    )))
                }
                Some(_) => {}
                None => {
                    nodes.insert(key, body);
                }
            }
        }
        Ok(())
    }

    fn delete_nodes(&self, keys: &[NodeKey]) -> Result<usize> {
        let mut nodes = self.nodes.write();
        Ok(keys
            .iter()
            .filter(|key| nodes.remove(key).is_some())
            .count())
    }

    fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    fn snapshot_nodes(&self) -> Result<Vec<(NodeKey, NodeBody)>> {
        Ok(self
            .nodes
            .read()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect())
    }
}

/// Client-side metadata cache layered over another store.
///
/// Because tree nodes are immutable, cached entries can never become stale;
/// the cache therefore needs no invalidation protocol at all — one of the
/// pay-offs of versioning-based concurrency control highlighted by the
/// paper.
pub struct CachedMetadataStore<S: ?Sized> {
    inner: Arc<S>,
    cache: RwLock<HashMap<NodeKey, NodeBody>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: MetadataStore + ?Sized> CachedMetadataStore<S> {
    /// Wraps `inner` with an unbounded client-side cache.
    pub fn new(inner: Arc<S>) -> Self {
        CachedMetadataStore {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }
}

impl<S: MetadataStore + ?Sized> MetadataStore for CachedMetadataStore<S> {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        self.inner.put_node(key, body.clone())?;
        self.cache.write().insert(key, body);
        Ok(())
    }

    fn get_node(&self, key: &NodeKey) -> Result<Option<NodeBody>> {
        if let Some(hit) = self.cache.read().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let Some(fetched) = self.inner.get_node(key)? else {
            return Ok(None);
        };
        self.cache.write().insert(*key, fetched.clone());
        Ok(Some(fetched))
    }

    fn get_nodes(&self, keys: &[NodeKey]) -> Result<Vec<Option<NodeBody>>> {
        // Serve what the cache holds, then fetch every miss in one inner
        // batch so the round-trip grouping of the wrapped store is preserved.
        let mut out: Vec<Option<NodeBody>> = keys.iter().map(|_| None).collect();
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = self.cache.read();
            for (index, key) in keys.iter().enumerate() {
                match cache.get(key) {
                    Some(hit) => out[index] = Some(hit.clone()),
                    None => missing.push(index),
                }
            }
        }
        self.hits
            .fetch_add((keys.len() - missing.len()) as u64, Ordering::Relaxed);
        if missing.is_empty() {
            return Ok(out);
        }
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        let wanted: Vec<NodeKey> = missing.iter().map(|&i| keys[i]).collect();
        // An unreachable inner store propagates without poisoning the cache:
        // nothing was learned about any key, so nothing is inserted.
        let fetched = self.inner.get_nodes(&wanted)?;
        let mut cache = self.cache.write();
        for (&index, body) in missing.iter().zip(fetched) {
            if let Some(body) = body {
                cache.insert(keys[index], body.clone());
                out[index] = Some(body);
            }
        }
        Ok(out)
    }

    fn put_nodes(&self, nodes: Vec<(NodeKey, NodeBody)>) -> Result<()> {
        // One clone per node for the wire (the same price a single put_node
        // paid), with the originals kept for the cache.
        self.inner
            .put_nodes(nodes.iter().map(|(k, b)| (*k, b.clone())).collect())?;
        let mut cache = self.cache.write();
        for (key, body) in nodes {
            cache.insert(key, body);
        }
        Ok(())
    }

    fn delete_nodes(&self, keys: &[NodeKey]) -> Result<usize> {
        // Evict our own copies first so a failed inner delete can at worst
        // leave extra nodes behind, never serve a node the sweeper removed.
        {
            let mut cache = self.cache.write();
            for key in keys {
                cache.remove(key);
            }
        }
        self.inner.delete_nodes(keys)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn snapshot_nodes(&self) -> Result<Vec<(NodeKey, NodeBody)>> {
        self.inner.snapshot_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{InnerNode, LeafNode};
    use blobseer_types::{BlobId, ByteRange, ChunkId, ProviderId, Version};

    fn key(v: u64, offset: u64, len: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(v),
            range: ByteRange::new(offset, len),
        }
    }

    fn leaf(slot: u64) -> NodeBody {
        NodeBody::Leaf(LeafNode {
            chunk: ChunkId {
                blob: BlobId(1),
                write_tag: 99,
                slot,
            },
            providers: vec![ProviderId(0)],
            len: 64,
        })
    }

    #[test]
    fn in_memory_store_roundtrip_and_write_once() {
        let s = InMemoryMetaStore::new();
        s.put_node(key(1, 0, 64), leaf(0)).unwrap();
        assert_eq!(s.get_node(&key(1, 0, 64)).unwrap(), Some(leaf(0)));
        assert_eq!(s.get_node(&key(2, 0, 64)).unwrap(), None);
        assert_eq!(s.node_count(), 1);
        // idempotent
        s.put_node(key(1, 0, 64), leaf(0)).unwrap();
        // conflicting
        assert!(s.put_node(key(1, 0, 64), leaf(1)).is_err());
    }

    #[test]
    fn dht_implements_metadata_store() {
        let dht: Dht<NodeKey, NodeBody> = Dht::new(4, 16, 2).unwrap();
        let store: &dyn MetadataStore = &dht;
        store.put_node(key(1, 0, 64), leaf(0)).unwrap();
        store.put_node(key(1, 64, 64), leaf(1)).unwrap();
        assert_eq!(store.get_node(&key(1, 0, 64)).unwrap(), Some(leaf(0)));
        // With replication 2 each node is stored twice across the DHT.
        assert_eq!(store.node_count(), 4);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let inner = Arc::new(InMemoryMetaStore::new());
        inner.put_node(key(3, 0, 64), leaf(0)).unwrap();
        let cached = CachedMetadataStore::new(Arc::clone(&inner));

        // First get: miss, populated from inner.
        assert_eq!(cached.get_node(&key(3, 0, 64)).unwrap(), Some(leaf(0)));
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 0);
        // Second get: hit.
        assert_eq!(cached.get_node(&key(3, 0, 64)).unwrap(), Some(leaf(0)));
        assert_eq!(cached.hits(), 1);
        // Unknown key: miss, not cached.
        assert_eq!(cached.get_node(&key(9, 0, 64)).unwrap(), None);
        assert_eq!(cached.misses(), 2);
    }

    #[test]
    fn batched_store_ops_roundtrip() {
        let s = InMemoryMetaStore::new();
        s.put_nodes(vec![(key(1, 0, 64), leaf(0)), (key(1, 64, 64), leaf(1))])
            .unwrap();
        assert_eq!(s.node_count(), 2);
        let got = s
            .get_nodes(&[key(1, 64, 64), key(9, 0, 64), key(1, 0, 64)])
            .unwrap();
        assert_eq!(got, vec![Some(leaf(1)), None, Some(leaf(0))]);
        // Batched puts keep write-once semantics.
        s.put_nodes(vec![(key(1, 0, 64), leaf(0))]).unwrap();
        assert!(s.put_nodes(vec![(key(1, 0, 64), leaf(7))]).is_err());
    }

    #[test]
    fn cached_batch_get_fetches_only_misses() {
        let inner = Arc::new(InMemoryMetaStore::new());
        inner.put_node(key(1, 0, 64), leaf(0)).unwrap();
        inner.put_node(key(1, 64, 64), leaf(1)).unwrap();
        let cached = CachedMetadataStore::new(Arc::clone(&inner));
        // Prime the cache with one of the two keys.
        assert!(cached.get_node(&key(1, 0, 64)).unwrap().is_some());
        assert_eq!((cached.hits(), cached.misses()), (0, 1));

        let got = cached
            .get_nodes(&[key(1, 0, 64), key(1, 64, 64), key(9, 0, 64)])
            .unwrap();
        assert_eq!(got, vec![Some(leaf(0)), Some(leaf(1)), None]);
        // One hit (primed key), two misses (fetched key + unknown key).
        assert_eq!((cached.hits(), cached.misses()), (1, 3));

        // The fetched key is now cached; the unknown key stays a miss.
        let again = cached.get_nodes(&[key(1, 64, 64), key(9, 0, 64)]).unwrap();
        assert_eq!(again, vec![Some(leaf(1)), None]);
        assert_eq!((cached.hits(), cached.misses()), (2, 4));
    }

    #[test]
    fn cached_batch_put_populates_cache_and_inner() {
        let inner = Arc::new(InMemoryMetaStore::new());
        let cached = CachedMetadataStore::new(Arc::clone(&inner));
        cached
            .put_nodes(vec![(key(1, 0, 64), leaf(0)), (key(1, 64, 64), leaf(1))])
            .unwrap();
        assert_eq!(inner.node_count(), 2);
        // Served from cache without touching the miss counter.
        assert_eq!(cached.get_node(&key(1, 64, 64)).unwrap(), Some(leaf(1)));
        assert_eq!(cached.misses(), 0);
    }

    #[test]
    fn dht_reads_and_publishes_cost_depth_times_shards_round_trips() {
        use crate::tree::{
            build_write_metadata, collect_leaves, publish_metadata, SnapshotDescriptor,
            WrittenChunk,
        };
        let shards = 4u64;
        let dht: Dht<NodeKey, NodeBody> = Dht::new(shards as usize, 16, 1).unwrap();
        let chunk_size = 64u64;
        let chunks = 64u64; // expanse 64 → depth 7, 127 tree nodes
        let chunk_list: Vec<WrittenChunk> = (0..chunks)
            .map(|slot| WrittenChunk {
                slot,
                chunk: ChunkId {
                    blob: BlobId(1),
                    write_tag: 1,
                    slot,
                },
                providers: vec![ProviderId(0)],
                len: chunk_size,
            })
            .collect();
        let meta = build_write_metadata(
            &dht,
            BlobId(1),
            &SnapshotDescriptor::initial(chunk_size),
            Version(1),
            chunks * chunk_size,
            &chunk_list,
        )
        .unwrap();
        let descriptor = meta.descriptor;
        let node_count = meta.node_count() as u64;
        assert_eq!(node_count, 127);

        // Publication is one batched put: at most one trip per shard.
        let before = dht.round_trips();
        publish_metadata(&dht, meta).unwrap();
        let publish_trips = dht.round_trips() - before;
        assert!(
            publish_trips <= shards,
            "publishing {node_count} nodes took {publish_trips} trips (> {shards} shards)"
        );

        // A full-range read is one batch per level: O(depth × shards), not
        // O(nodes).
        let before = dht.round_trips();
        let leaves = collect_leaves(
            &dht,
            BlobId(1),
            &descriptor,
            blobseer_types::ByteRange::new(0, chunks * chunk_size),
        )
        .unwrap();
        assert_eq!(leaves.len() as u64, chunks);
        let read_trips = dht.round_trips() - before;
        let bound = u64::from(descriptor.tree_depth()) * shards;
        assert!(
            read_trips <= bound,
            "reading {node_count} nodes took {read_trips} trips (> depth×shards = {bound})"
        );
        assert!(read_trips < node_count / 2);
    }

    #[test]
    fn cache_put_populates_cache_and_inner() {
        let inner = Arc::new(InMemoryMetaStore::new());
        let cached = CachedMetadataStore::new(Arc::clone(&inner));
        let inner_body = NodeBody::Inner(InnerNode {
            left: None,
            right: None,
        });
        cached.put_node(key(2, 0, 128), inner_body.clone()).unwrap();
        // Served from cache without touching the inner store's counters.
        assert_eq!(
            cached.get_node(&key(2, 0, 128)).unwrap(),
            Some(inner_body.clone())
        );
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.misses(), 0);
        // And the inner store holds it too.
        assert_eq!(inner.get_node(&key(2, 0, 128)).unwrap(), Some(inner_body));
    }
}
