//! Metadata storage abstraction.
//!
//! Tree nodes are write-once values; any key/value store can hold them. The
//! production deployment uses the metadata-provider DHT
//! ([`blobseer_dht::Dht`]); unit tests use [`InMemoryMetaStore`]; clients can
//! wrap either in a [`CachedMetadataStore`] to exploit the immutability of
//! nodes for free client-side caching (the paper's Section IV.A reports
//! clear benefits from metadata caching).

use crate::node::{NodeBody, NodeKey};
use blobseer_dht::Dht;
use blobseer_types::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Abstraction over the place segment-tree nodes are stored in.
pub trait MetadataStore: Send + Sync {
    /// Stores a node. Nodes are write-once: storing a different body under
    /// an existing key is an error, re-storing an identical body is a no-op.
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()>;

    /// Fetches a node by key.
    fn get_node(&self, key: &NodeKey) -> Option<NodeBody>;

    /// Number of nodes held (across all replicas for distributed stores the
    /// count is per-holding-node; used only for statistics and tests).
    fn node_count(&self) -> usize;
}

/// The metadata-provider DHT is the canonical metadata store.
impl MetadataStore for Dht<NodeKey, NodeBody> {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        self.put(key, body)
    }

    fn get_node(&self, key: &NodeKey) -> Option<NodeBody> {
        self.get(key)
    }

    fn node_count(&self) -> usize {
        self.total_entries()
    }
}

/// A single-map in-memory metadata store, used by unit tests and by the
/// centralised-metadata baseline of experiment C.
#[derive(Default)]
pub struct InMemoryMetaStore {
    nodes: RwLock<HashMap<NodeKey, NodeBody>>,
}

impl InMemoryMetaStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        InMemoryMetaStore::default()
    }
}

impl MetadataStore for InMemoryMetaStore {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        let mut nodes = self.nodes.write();
        match nodes.get(&key) {
            Some(existing) if *existing != body => Err(blobseer_types::BlobError::Internal(
                format!("conflicting write-once metadata put for {key}"),
            )),
            Some(_) => Ok(()),
            None => {
                nodes.insert(key, body);
                Ok(())
            }
        }
    }

    fn get_node(&self, key: &NodeKey) -> Option<NodeBody> {
        self.nodes.read().get(key).cloned()
    }

    fn node_count(&self) -> usize {
        self.nodes.read().len()
    }
}

/// Client-side metadata cache layered over another store.
///
/// Because tree nodes are immutable, cached entries can never become stale;
/// the cache therefore needs no invalidation protocol at all — one of the
/// pay-offs of versioning-based concurrency control highlighted by the
/// paper.
pub struct CachedMetadataStore<S> {
    inner: Arc<S>,
    cache: RwLock<HashMap<NodeKey, NodeBody>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: MetadataStore> CachedMetadataStore<S> {
    /// Wraps `inner` with an unbounded client-side cache.
    pub fn new(inner: Arc<S>) -> Self {
        CachedMetadataStore {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }
}

impl<S: MetadataStore> MetadataStore for CachedMetadataStore<S> {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        self.inner.put_node(key, body.clone())?;
        self.cache.write().insert(key, body);
        Ok(())
    }

    fn get_node(&self, key: &NodeKey) -> Option<NodeBody> {
        if let Some(hit) = self.cache.read().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fetched = self.inner.get_node(key)?;
        self.cache.write().insert(*key, fetched.clone());
        Some(fetched)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{InnerNode, LeafNode};
    use blobseer_types::{BlobId, ByteRange, ChunkId, ProviderId, Version};

    fn key(v: u64, offset: u64, len: u64) -> NodeKey {
        NodeKey {
            blob: BlobId(1),
            version: Version(v),
            range: ByteRange::new(offset, len),
        }
    }

    fn leaf(slot: u64) -> NodeBody {
        NodeBody::Leaf(LeafNode {
            chunk: ChunkId {
                blob: BlobId(1),
                write_tag: 99,
                slot,
            },
            providers: vec![ProviderId(0)],
            len: 64,
        })
    }

    #[test]
    fn in_memory_store_roundtrip_and_write_once() {
        let s = InMemoryMetaStore::new();
        s.put_node(key(1, 0, 64), leaf(0)).unwrap();
        assert_eq!(s.get_node(&key(1, 0, 64)), Some(leaf(0)));
        assert_eq!(s.get_node(&key(2, 0, 64)), None);
        assert_eq!(s.node_count(), 1);
        // idempotent
        s.put_node(key(1, 0, 64), leaf(0)).unwrap();
        // conflicting
        assert!(s.put_node(key(1, 0, 64), leaf(1)).is_err());
    }

    #[test]
    fn dht_implements_metadata_store() {
        let dht: Dht<NodeKey, NodeBody> = Dht::new(4, 16, 2).unwrap();
        let store: &dyn MetadataStore = &dht;
        store.put_node(key(1, 0, 64), leaf(0)).unwrap();
        store.put_node(key(1, 64, 64), leaf(1)).unwrap();
        assert_eq!(store.get_node(&key(1, 0, 64)), Some(leaf(0)));
        // With replication 2 each node is stored twice across the DHT.
        assert_eq!(store.node_count(), 4);
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let inner = Arc::new(InMemoryMetaStore::new());
        inner.put_node(key(3, 0, 64), leaf(0)).unwrap();
        let cached = CachedMetadataStore::new(Arc::clone(&inner));

        // First get: miss, populated from inner.
        assert_eq!(cached.get_node(&key(3, 0, 64)), Some(leaf(0)));
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 0);
        // Second get: hit.
        assert_eq!(cached.get_node(&key(3, 0, 64)), Some(leaf(0)));
        assert_eq!(cached.hits(), 1);
        // Unknown key: miss, not cached.
        assert_eq!(cached.get_node(&key(9, 0, 64)), None);
        assert_eq!(cached.misses(), 2);
    }

    #[test]
    fn cache_put_populates_cache_and_inner() {
        let inner = Arc::new(InMemoryMetaStore::new());
        let cached = CachedMetadataStore::new(Arc::clone(&inner));
        let inner_body = NodeBody::Inner(InnerNode {
            left: None,
            right: None,
        });
        cached.put_node(key(2, 0, 128), inner_body.clone()).unwrap();
        // Served from cache without touching the inner store's counters.
        assert_eq!(cached.get_node(&key(2, 0, 128)), Some(inner_body.clone()));
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.misses(), 0);
        // And the inner store holds it too.
        assert_eq!(inner.get_node(&key(2, 0, 128)), Some(inner_body));
    }
}
