//! Versioned, distributed segment-tree metadata management.
//!
//! BlobSeer maps byte ranges of every blob snapshot to the chunks (and the
//! data providers holding them) through a *versioning-oriented, distributed
//! segment tree*:
//!
//! * every snapshot `v` of a blob has a complete binary tree whose leaves
//!   each cover one chunk slot and whose inner nodes cover power-of-two
//!   numbers of slots;
//! * tree nodes are **immutable** and keyed by `(blob, version, range)`;
//!   they are scattered over the metadata providers (a DHT) in a fine-grain
//!   manner;
//! * a write producing version `v` creates new leaves only for the chunk
//!   slots it touches and new inner nodes only on the paths from those
//!   leaves to the root; every untouched subtree is *borrowed* from the
//!   reference snapshot by storing that subtree's existing key in the new
//!   inner node.
//!
//! Because nothing is ever overwritten, readers of any published snapshot
//! never synchronise with concurrent writers — this is the
//! "versioning-based concurrency control" at the core of the paper.
//!
//! The two central entry points are [`tree::build_write_metadata`] (the
//! writer side: which new nodes must be created for a write or append) and
//! [`tree::collect_leaves`] (the reader side: which chunks cover a read
//! range at a given version).

pub mod codec;
pub mod node;
pub mod store;
pub mod tree;

pub use node::{ChildRef, InnerNode, LeafNode, NodeBody, NodeKey};
pub use store::{CachedMetadataStore, InMemoryMetaStore, MetadataStore};
pub use tree::{
    build_flat_metadata, build_repair_metadata, build_write_metadata, build_write_metadata_chained,
    collect_leaves, collect_leaves_streaming, publish_metadata, LeafMapping, ReferenceChain,
    SnapshotDescriptor, WriteMetadata, WriteSummary, WrittenChunk,
};
