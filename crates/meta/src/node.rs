//! Segment-tree node types.
//!
//! Nodes are immutable values keyed by `(blob, version, range)`. Inner nodes
//! reference their children by key (version + range); a missing child means
//! the corresponding half of the range has never been written (a hole, read
//! back as zeros).

use blobseer_types::{BlobId, ByteRange, ChunkId, ProviderId, Version};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Key under which a segment-tree node is stored in the metadata DHT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeKey {
    /// Blob the node belongs to.
    pub blob: BlobId,
    /// Version of the snapshot that created this node.
    pub version: Version,
    /// Byte range of the blob covered by the node. Always a power-of-two
    /// number of chunk slots; a single slot for leaves.
    pub range: ByteRange,
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.blob, self.version, self.range)
    }
}

/// Reference from an inner node to one of its children: the child's version
/// and covered range (the blob is implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChildRef {
    /// Version of the snapshot that created the referenced node. For
    /// borrowed subtrees this is strictly older than the referencing node's
    /// version.
    pub version: Version,
    /// Range the referenced node covers.
    pub range: ByteRange,
}

impl ChildRef {
    /// The DHT key of the referenced node for blob `blob`.
    #[must_use]
    pub fn key(&self, blob: BlobId) -> NodeKey {
        NodeKey {
            blob,
            version: self.version,
            range: self.range,
        }
    }
}

/// A leaf node: maps one chunk slot to the chunk written for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafNode {
    /// Identifier of the chunk holding the slot's data.
    pub chunk: ChunkId,
    /// Data providers storing a replica of the chunk, in preference order.
    pub providers: Vec<ProviderId>,
    /// Number of valid payload bytes in the chunk. Usually the blob's chunk
    /// size, but the final chunk of a snapshot may be shorter.
    pub len: u64,
}

/// An inner node: covers a power-of-two number of chunk slots and references
/// the nodes covering each half. `None` means that half has never been
/// written in this snapshot's history (a hole).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InnerNode {
    /// Node covering the lower half of the range, if any.
    pub left: Option<ChildRef>,
    /// Node covering the upper half of the range, if any.
    pub right: Option<ChildRef>,
}

/// A segment-tree node body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeBody {
    /// A leaf covering exactly one chunk slot.
    Leaf(LeafNode),
    /// An inner node covering two or more chunk slots.
    Inner(InnerNode),
    /// A forwarding node: this `(version, range)` key exists only so that
    /// later snapshots can reference it, and its content is entirely that of
    /// another node covering the same range. Created by *repair weaving*
    /// when a writer dies after being assigned a version (see
    /// [`crate::tree::build_repair_metadata`]).
    Alias(ChildRef),
}

impl LeafNode {
    /// The canonical "hole" leaf: a slot that logically exists (it was
    /// claimed by an aborted write) but holds no data. Readers treat it as
    /// zero bytes because its `len` is zero.
    #[must_use]
    pub fn hole(blob: BlobId, slot: u64) -> Self {
        LeafNode {
            chunk: ChunkId {
                blob,
                write_tag: u64::MAX,
                slot,
            },
            providers: Vec::new(),
            len: 0,
        }
    }

    /// Whether this leaf carries no data at all.
    #[must_use]
    pub fn is_hole(&self) -> bool {
        self.len == 0
    }
}

impl NodeBody {
    /// Returns the leaf payload, if this is a leaf.
    #[must_use]
    pub fn as_leaf(&self) -> Option<&LeafNode> {
        match self {
            NodeBody::Leaf(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the inner payload, if this is an inner node.
    #[must_use]
    pub fn as_inner(&self) -> Option<&InnerNode> {
        match self {
            NodeBody::Inner(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the alias target, if this is a forwarding node.
    #[must_use]
    pub fn as_alias(&self) -> Option<ChildRef> {
        match self {
            NodeBody::Alias(target) => Some(*target),
            _ => None,
        }
    }

    /// Whether this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeBody::Leaf(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> ChunkId {
        ChunkId {
            blob: BlobId(1),
            write_tag: 7,
            slot: 3,
        }
    }

    #[test]
    fn child_ref_key_carries_the_blob() {
        let r = ChildRef {
            version: Version(4),
            range: ByteRange::new(0, 128),
        };
        let key = r.key(BlobId(9));
        assert_eq!(key.blob, BlobId(9));
        assert_eq!(key.version, Version(4));
        assert_eq!(key.range, ByteRange::new(0, 128));
    }

    #[test]
    fn node_key_display_is_readable() {
        let key = NodeKey {
            blob: BlobId(2),
            version: Version(5),
            range: ByteRange::new(64, 64),
        };
        assert_eq!(key.to_string(), "blob-2/v5/[64, 128)");
    }

    #[test]
    fn body_accessors() {
        let leaf = NodeBody::Leaf(LeafNode {
            chunk: chunk(),
            providers: vec![ProviderId(0)],
            len: 64,
        });
        let inner = NodeBody::Inner(InnerNode {
            left: None,
            right: Some(ChildRef {
                version: Version(1),
                range: ByteRange::new(64, 64),
            }),
        });
        assert!(leaf.is_leaf());
        assert!(leaf.as_leaf().is_some());
        assert!(leaf.as_inner().is_none());
        assert!(!inner.is_leaf());
        assert!(inner.as_inner().is_some());
        assert!(inner.as_leaf().is_none());
    }

    #[test]
    fn nodes_compare_structurally() {
        let a = NodeBody::Leaf(LeafNode {
            chunk: chunk(),
            providers: vec![ProviderId(0), ProviderId(1)],
            len: 10,
        });
        let b = a.clone();
        assert_eq!(a, b);
    }
}
