//! The versioned segment-tree algorithms: metadata weaving for writes and
//! appends, and leaf collection for reads.
//!
//! These functions are deliberately free of any I/O beyond the
//! [`MetadataStore`] trait so that the same code drives the real in-process
//! cluster, the unit tests and the discrete-event simulator (which only
//! needs to know *which* nodes a write creates and *where* they are routed).

use crate::node::{ChildRef, InnerNode, LeafNode, NodeBody, NodeKey};
use crate::store::MetadataStore;
use blobseer_types::{BlobError, BlobId, ByteRange, ChunkId, ProviderId, Result, Version};
use std::collections::HashMap;

/// Description of one published (or about to be published) snapshot of a
/// blob: everything a reader needs to start descending the snapshot's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotDescriptor {
    /// The snapshot's version.
    pub version: Version,
    /// Size of the blob in this snapshot, in bytes.
    pub size: u64,
    /// Chunk size the blob was created with.
    pub chunk_size: u64,
    /// Whether this snapshot is *flat*: produced by the lifecycle flattener,
    /// with every leaf slot of the blob materialised at this very version
    /// (explicit holes included). Readers of a flat snapshot skip the tree
    /// descent entirely — leaf keys are deterministic `(version, slot)`
    /// functions, so a read costs one batched round per owning metadata
    /// shard regardless of tree depth or history length.
    pub flat: bool,
}

impl SnapshotDescriptor {
    /// The descriptor of the empty snapshot (version 0) of a blob with the
    /// given chunk size.
    #[must_use]
    pub fn initial(chunk_size: u64) -> Self {
        SnapshotDescriptor {
            version: Version::ZERO,
            size: 0,
            chunk_size,
            flat: false,
        }
    }

    /// Number of chunk slots the snapshot's data spans (the last slot may be
    /// partially filled).
    #[must_use]
    pub fn used_chunks(&self) -> u64 {
        self.size.div_ceil(self.chunk_size)
    }

    /// Number of chunk slots covered by the snapshot's tree: the smallest
    /// power of two at least as large as [`Self::used_chunks`]. Zero for the
    /// empty snapshot.
    #[must_use]
    pub fn expanse_chunks(&self) -> u64 {
        if self.size == 0 {
            0
        } else {
            self.used_chunks().next_power_of_two()
        }
    }

    /// The byte range covered by the snapshot's root node, or `None` for the
    /// empty snapshot (which has no tree at all).
    #[must_use]
    pub fn root_range(&self) -> Option<ByteRange> {
        if self.size == 0 {
            None
        } else {
            Some(ByteRange::new(0, self.expanse_chunks() * self.chunk_size))
        }
    }

    /// The key of the snapshot's root node for blob `blob`, or `None` for
    /// the empty snapshot.
    #[must_use]
    pub fn root_key(&self, blob: BlobId) -> Option<NodeKey> {
        self.root_range().map(|range| NodeKey {
            blob,
            version: self.version,
            range,
        })
    }

    /// Depth of the snapshot's tree (number of levels, leaves included);
    /// zero for the empty snapshot.
    #[must_use]
    pub fn tree_depth(&self) -> u32 {
        let expanse = self.expanse_chunks();
        if expanse == 0 {
            0
        } else {
            expanse.trailing_zeros() + 1
        }
    }
}

/// Summary of a write whose version has been assigned but whose metadata
/// may not be woven yet.
///
/// The version manager hands the chain of such summaries to every new
/// writer: because tree-node keys are deterministic functions of
/// `(version, range)`, a writer can link to the nodes a *concurrent* writer
/// will create without waiting for them — this is what lets metadata weaving
/// proceed in parallel under write/write concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// The version assigned to the write.
    pub version: Version,
    /// The chunk-slot-aligned byte range the write stores new leaves for.
    pub written_slots: ByteRange,
    /// The blob size after the write.
    pub size: u64,
    /// Chunk size of the blob.
    pub chunk_size: u64,
}

impl WriteSummary {
    /// The root range of this write's tree.
    #[must_use]
    pub fn root_range(&self) -> ByteRange {
        let expanse = self.size.div_ceil(self.chunk_size).next_power_of_two();
        ByteRange::new(0, expanse * self.chunk_size)
    }

    /// Whether this write creates a node covering exactly `range`, given the
    /// root range of its own reference snapshot (`predecessor_root`).
    ///
    /// A node is created either because the write touches it or because the
    /// write grew the expanse and `range` lies on the bridging path between
    /// the new root and the old one.
    #[must_use]
    pub fn creates_node(&self, range: ByteRange, predecessor_root: Option<ByteRange>) -> bool {
        if !self.root_range().contains_range(&range) {
            return false;
        }
        if range.overlaps(&self.written_slots) {
            return true;
        }
        predecessor_root
            .map(|rr| range.contains_range(&rr) && range != rr)
            .unwrap_or(false)
    }
}

/// The view a writer resolves borrowed subtrees against: the latest snapshot
/// whose metadata is already complete (`base`) plus the ordered list of
/// assigned-but-unpublished writes between `base` and the writer's own
/// version (`pending`, ascending version order).
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceChain {
    /// The most recent snapshot whose metadata is known to be complete.
    pub base: SnapshotDescriptor,
    /// Writes with versions greater than `base.version`, in ascending
    /// version order, whose metadata may still be woven concurrently.
    pub pending: Vec<WriteSummary>,
}

impl ReferenceChain {
    /// A chain with no in-flight predecessors (single-writer case).
    #[must_use]
    pub fn published_only(base: SnapshotDescriptor) -> Self {
        ReferenceChain {
            base,
            pending: Vec::new(),
        }
    }

    /// Version of the immediate predecessor snapshot (the last pending write
    /// if any, the base otherwise).
    #[must_use]
    pub fn predecessor_version(&self) -> Version {
        self.pending
            .last()
            .map(|s| s.version)
            .unwrap_or(self.base.version)
    }

    /// Size of the immediate predecessor snapshot.
    #[must_use]
    pub fn predecessor_size(&self) -> u64 {
        self.pending
            .last()
            .map(|s| s.size)
            .unwrap_or(self.base.size)
    }

    /// Root range of the immediate predecessor snapshot, or `None` if the
    /// blob is still empty.
    #[must_use]
    pub fn predecessor_root_range(&self) -> Option<ByteRange> {
        match self.pending.last() {
            Some(s) => Some(s.root_range()),
            None => self.base.root_range(),
        }
    }

    /// Root range of the reference snapshot of pending write `index` (the
    /// previous pending entry, or the base).
    fn predecessor_root_of(&self, index: usize) -> Option<ByteRange> {
        if index == 0 {
            self.base.root_range()
        } else {
            Some(self.pending[index - 1].root_range())
        }
    }

    /// Resolves the node covering exactly `range` in the predecessor
    /// snapshot: the newest pending write that (will) create it, falling
    /// back to descending the base snapshot's tree, or `None` for a hole.
    pub fn resolve(
        &self,
        store: &dyn MetadataStore,
        blob: BlobId,
        range: ByteRange,
    ) -> Result<Option<ChildRef>> {
        // Newest pending write first: later versions shadow earlier ones.
        for index in (0..self.pending.len()).rev() {
            let summary = &self.pending[index];
            if summary.creates_node(range, self.predecessor_root_of(index)) {
                return Ok(Some(ChildRef {
                    version: summary.version,
                    range,
                }));
            }
        }
        // Fall back to the base snapshot's (complete) tree.
        let Some(base_root) = self.base.root_range() else {
            return Ok(None);
        };
        if !base_root.contains_range(&range) {
            return Ok(None);
        }
        let mut current = ChildRef {
            version: self.base.version,
            range: base_root,
        };
        while current.range != range {
            let key = current.key(blob);
            let body = store.get_node(&key)?.ok_or(BlobError::MissingMetadata {
                blob,
                version: key.version,
                range: key.range,
            })?;
            if let Some(target) = body.as_alias() {
                current = target;
                continue;
            }
            let inner = body.as_inner().ok_or_else(|| {
                BlobError::Internal(format!("expected inner node at {key}, found leaf"))
            })?;
            let (left_range, _) = current.range.split();
            let next = if left_range.contains_range(&range) {
                inner.left
            } else {
                inner.right
            };
            match next {
                Some(child) => current = child,
                None => return Ok(None),
            }
        }
        Ok(Some(current))
    }
}

/// One chunk written by a write or append operation, as reported to the
/// metadata weaving step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrittenChunk {
    /// Index of the chunk slot the chunk was written for.
    pub slot: u64,
    /// Identifier of the stored chunk.
    pub chunk: ChunkId,
    /// Providers holding a replica of the chunk.
    pub providers: Vec<ProviderId>,
    /// Number of valid payload bytes in the chunk.
    pub len: u64,
}

/// The outcome of metadata weaving for one write: the new snapshot
/// descriptor plus every tree node that must be stored for it.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteMetadata {
    /// Descriptor of the snapshot the write produces.
    pub descriptor: SnapshotDescriptor,
    /// New tree nodes to store, children before parents (so the root is the
    /// last entry).
    pub nodes: Vec<(NodeKey, NodeBody)>,
    /// Reference to the new root node.
    pub root: ChildRef,
}

impl WriteMetadata {
    /// Total number of new tree nodes the write creates.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of new leaf nodes.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|(_, b)| b.is_leaf()).count()
    }

    /// Number of new inner nodes.
    #[must_use]
    pub fn inner_count(&self) -> usize {
        self.node_count() - self.leaf_count()
    }

    /// Depth of the new snapshot's tree.
    #[must_use]
    pub fn tree_depth(&self) -> u32 {
        self.descriptor.tree_depth()
    }

    /// A rough size in bytes of the new metadata (used by the metadata
    /// overhead experiment, Fig. A1): each leaf is ~64 bytes plus 8 bytes
    /// per replica, each inner node ~48 bytes.
    #[must_use]
    pub fn metadata_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|(_, b)| match b {
                NodeBody::Leaf(l) => 64 + 8 * l.providers.len() as u64,
                NodeBody::Inner(_) => 48,
                NodeBody::Alias(_) => 40,
            })
            .sum()
    }
}

/// Weaves the metadata for a write or append.
///
/// * `reference` — the snapshot the write links against (normally the most
///   recently assigned snapshot at ticket time);
/// * `new_version` — the version assigned to this write by the version
///   manager;
/// * `new_size` — the blob size after the write
///   (`max(reference.size, offset + len)`);
/// * `chunks` — one entry per chunk slot the write stored a new chunk for.
///
/// Returns every node that must be inserted into the metadata store. The
/// nodes reference untouched subtrees of the reference snapshot by key, so
/// the reference tree is read (never written) during weaving.
pub fn build_write_metadata(
    store: &dyn MetadataStore,
    blob: BlobId,
    reference: &SnapshotDescriptor,
    new_version: Version,
    new_size: u64,
    chunks: &[WrittenChunk],
) -> Result<WriteMetadata> {
    build_write_metadata_chained(
        store,
        blob,
        &ReferenceChain::published_only(*reference),
        new_version,
        new_size,
        chunks,
    )
}

/// Weaves the metadata for a write whose reference view is a chain of
/// possibly still in-flight predecessors (the general, write/write
/// concurrent case). See [`ReferenceChain`].
pub fn build_write_metadata_chained(
    store: &dyn MetadataStore,
    blob: BlobId,
    chain: &ReferenceChain,
    new_version: Version,
    new_size: u64,
    chunks: &[WrittenChunk],
) -> Result<WriteMetadata> {
    if chunks.is_empty() {
        return Err(BlobError::EmptyWrite);
    }
    if new_size < chain.predecessor_size() {
        return Err(BlobError::Internal(format!(
            "snapshot size cannot shrink: {} -> {new_size}",
            chain.predecessor_size()
        )));
    }
    if new_version <= chain.predecessor_version() {
        return Err(BlobError::Internal(format!(
            "new version {new_version} must follow predecessor {}",
            chain.predecessor_version()
        )));
    }
    let chunk_size = chain.base.chunk_size;
    let mut leaf_map: HashMap<u64, &WrittenChunk> = HashMap::with_capacity(chunks.len());
    let mut min_slot = u64::MAX;
    let mut max_slot = 0u64;
    for c in chunks {
        if c.len == 0 || c.len > chunk_size {
            return Err(BlobError::Internal(format!(
                "chunk for slot {} has invalid length {} (chunk size {chunk_size})",
                c.slot, c.len
            )));
        }
        if leaf_map.insert(c.slot, c).is_some() {
            return Err(BlobError::Internal(format!(
                "duplicate chunk for slot {}",
                c.slot
            )));
        }
        min_slot = min_slot.min(c.slot);
        max_slot = max_slot.max(c.slot);
    }
    // The written region, rounded out to whole chunk slots: this is what
    // decides which paths of the tree must be rebuilt.
    let write_range = ByteRange::new(
        min_slot * chunk_size,
        (max_slot - min_slot + 1) * chunk_size,
    );
    if write_range.end() > new_size.div_ceil(chunk_size) * chunk_size {
        return Err(BlobError::Internal(format!(
            "written slots {write_range} extend past the declared new size {new_size}"
        )));
    }

    let descriptor = SnapshotDescriptor {
        version: new_version,
        size: new_size,
        chunk_size,
        flat: false,
    };
    let root_range = descriptor
        .root_range()
        .ok_or_else(|| BlobError::Internal("write produced an empty snapshot".into()))?;

    let mut builder = TreeBuilder {
        store,
        blob,
        chain,
        chunk_size,
        new_version,
        write_range,
        leaf_map,
        nodes: Vec::new(),
    };
    let root = builder
        .build(root_range)?
        .ok_or_else(|| BlobError::Internal("write produced no root node".into()))?;

    Ok(WriteMetadata {
        descriptor,
        nodes: builder.nodes,
        root,
    })
}

struct TreeBuilder<'a> {
    store: &'a dyn MetadataStore,
    blob: BlobId,
    chain: &'a ReferenceChain,
    chunk_size: u64,
    new_version: Version,
    write_range: ByteRange,
    leaf_map: HashMap<u64, &'a WrittenChunk>,
    nodes: Vec<(NodeKey, NodeBody)>,
}

impl TreeBuilder<'_> {
    /// Creates the new node covering `range` (recursively creating the new
    /// children it needs) and returns a reference to it.
    fn build(&mut self, range: ByteRange) -> Result<Option<ChildRef>> {
        if range.len == self.chunk_size {
            // Leaf level.
            let slot = range.offset / self.chunk_size;
            if let Some(written) = self.leaf_map.get(&slot) {
                let body = NodeBody::Leaf(LeafNode {
                    chunk: written.chunk,
                    providers: written.providers.clone(),
                    len: written.len,
                });
                self.emit(range, body);
                return Ok(Some(ChildRef {
                    version: self.new_version,
                    range,
                }));
            }
            // A leaf we were asked to build but did not write: borrow it.
            return self.chain.resolve(self.store, self.blob, range);
        }

        let (left_range, right_range) = range.split();
        let left = self.child_for(left_range)?;
        let right = self.child_for(right_range)?;
        if left.is_none() && right.is_none() {
            return Ok(None);
        }
        self.emit(range, NodeBody::Inner(InnerNode { left, right }));
        Ok(Some(ChildRef {
            version: self.new_version,
            range,
        }))
    }

    /// Decides whether the node covering `range` must be rebuilt at the new
    /// version or can be borrowed from the reference snapshot.
    fn child_for(&mut self, range: ByteRange) -> Result<Option<ChildRef>> {
        let touches_write = range.overlaps(&self.write_range);
        // When the expanse grows by more than one doubling, ranges on the
        // left spine strictly contain the whole reference tree without
        // overlapping the write; they still need new bridging nodes.
        let bridges_reference = self
            .chain
            .predecessor_root_range()
            .map(|rr| range.contains_range(&rr) && range != rr)
            .unwrap_or(false);
        if touches_write || bridges_reference {
            self.build(range)
        } else {
            self.chain.resolve(self.store, self.blob, range)
        }
    }

    fn emit(&mut self, range: ByteRange, body: NodeBody) {
        self.nodes.push((
            NodeKey {
                blob: self.blob,
                version: self.new_version,
                range,
            },
            body,
        ));
    }
}

/// Weaves *repair metadata* for a write whose writer died after being
/// assigned a version but before (fully) weaving its own metadata.
///
/// Later writers may already have linked against the node keys this version
/// was going to create (see [`WriteSummary::creates_node`]); the repair pass
/// materialises exactly those keys, each one either forwarding to the node
/// of the predecessor snapshot covering the same range ([`NodeBody::Alias`])
/// or recording an explicit hole. The resulting snapshot has the size the
/// aborted write claimed, with the claimed-but-never-written region reading
/// back as zeros.
pub fn build_repair_metadata(
    store: &dyn MetadataStore,
    blob: BlobId,
    chain: &ReferenceChain,
    summary: &WriteSummary,
) -> Result<WriteMetadata> {
    if summary.version <= chain.predecessor_version() {
        return Err(BlobError::Internal(format!(
            "repaired version {} must follow predecessor {}",
            summary.version,
            chain.predecessor_version()
        )));
    }
    let chunk_size = summary.chunk_size;
    let predecessor_root = chain.predecessor_root_range();
    let mut nodes = Vec::new();
    let root_range = summary.root_range();
    let root = repair_node(
        store,
        blob,
        chain,
        summary,
        predecessor_root,
        chunk_size,
        root_range,
        &mut nodes,
    )?;
    Ok(WriteMetadata {
        descriptor: SnapshotDescriptor {
            version: summary.version,
            size: summary.size,
            chunk_size,
            flat: false,
        },
        nodes,
        root,
    })
}

#[allow(clippy::too_many_arguments)]
fn repair_node(
    store: &dyn MetadataStore,
    blob: BlobId,
    chain: &ReferenceChain,
    summary: &WriteSummary,
    predecessor_root: Option<ByteRange>,
    chunk_size: u64,
    range: ByteRange,
    nodes: &mut Vec<(NodeKey, NodeBody)>,
) -> Result<ChildRef> {
    let key = NodeKey {
        blob,
        version: summary.version,
        range,
    };
    let body = if range.len == chunk_size {
        match chain.resolve(store, blob, range)? {
            Some(target) => NodeBody::Alias(target),
            None => NodeBody::Leaf(LeafNode::hole(blob, range.offset / chunk_size)),
        }
    } else {
        let (left_range, right_range) = range.split();
        let mut resolve_half = |half: ByteRange| -> Result<Option<ChildRef>> {
            if summary.creates_node(half, predecessor_root) {
                repair_node(
                    store,
                    blob,
                    chain,
                    summary,
                    predecessor_root,
                    chunk_size,
                    half,
                    nodes,
                )
                .map(Some)
            } else {
                chain.resolve(store, blob, half)
            }
        };
        let left = resolve_half(left_range)?;
        let right = resolve_half(right_range)?;
        NodeBody::Inner(InnerNode { left, right })
    };
    nodes.push((key, body));
    Ok(ChildRef {
        version: summary.version,
        range,
    })
}

/// Stores every node of a woven write into the metadata store as one
/// batched upload.
///
/// The metadata is consumed: the node bodies are *moved* into the store's
/// [`MetadataStore::put_nodes`], which groups them by owning metadata node —
/// publication costs one round-trip per shard holding a piece of the write,
/// not one per node, and never clones a body. Callers that still need the
/// write's summary afterwards copy [`WriteMetadata::descriptor`] (which is
/// `Copy`) or the node count before publishing.
///
/// Kept separate from [`build_write_metadata`] so that callers (in
/// particular the simulator) can inspect or route the nodes before they are
/// persisted.
pub fn publish_metadata(store: &dyn MetadataStore, meta: WriteMetadata) -> Result<()> {
    store.put_nodes(meta.nodes)
}

/// Mapping of one chunk slot touched by a read.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafMapping {
    /// The slot's byte range within the blob (always `chunk_size` long).
    pub slot_range: ByteRange,
    /// The leaf stored for the slot, or `None` if the slot is a hole (never
    /// written in this snapshot's history; reads return zeros).
    pub leaf: Option<LeafNode>,
}

/// Collects the leaves covering `range` in the given snapshot, in increasing
/// offset order. Holes are reported explicitly so the caller can zero-fill.
///
/// The descent is *frontier based*: the tree is walked level by level, and
/// every node of a level is fetched through one [`MetadataStore::get_nodes`]
/// batch. Against the metadata DHT a batch costs one round-trip per owning
/// metadata node, so reading an N-leaf subtree issues O(tree-depth × shards)
/// round-trips instead of the O(N) a node-at-a-time walk pays.
pub fn collect_leaves(
    store: &dyn MetadataStore,
    blob: BlobId,
    snapshot: &SnapshotDescriptor,
    range: ByteRange,
) -> Result<Vec<LeafMapping>> {
    collect_leaves_streaming(store, blob, snapshot, range, |_| {})
}

/// [`collect_leaves`] with a *level-streaming* hook: after every batched
/// round-trip of the frontier descent, `on_level` receives the leaf
/// mappings that round-trip discovered (written leaves and holes alike, in
/// discovery order — not yet sorted by offset).
///
/// This is what lets the read path pipeline: a client can submit the chunk
/// fetches for the leaves of level N to the transfer scheduler while the
/// level-N+1 metadata batch is still in flight, instead of waiting for the
/// whole descent to finish before moving the first data byte. The function
/// still returns the complete, offset-sorted mapping at the end, so
/// non-streaming callers lose nothing.
pub fn collect_leaves_streaming(
    store: &dyn MetadataStore,
    blob: BlobId,
    snapshot: &SnapshotDescriptor,
    range: ByteRange,
    mut on_level: impl FnMut(&[LeafMapping]),
) -> Result<Vec<LeafMapping>> {
    let Some(root) = check_read(blob, snapshot, range)? else {
        return Ok(Vec::new());
    };
    if snapshot.flat {
        // Flat snapshots materialise every leaf slot at their own version,
        // so the leaf keys are known without descending: one batched fetch,
        // one round-trip per owning shard, independent of tree depth.
        return collect_leaves_flat(store, blob, snapshot, range, &mut on_level);
    }
    let mut out = Vec::new();
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        let level_start = out.len();
        let keys: Vec<NodeKey> = frontier.iter().map(|node| node.key(blob)).collect();
        let bodies = store.get_nodes(&keys)?;
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (node, body) in frontier.iter().zip(bodies) {
            let body = body.ok_or(BlobError::MissingMetadata {
                blob,
                version: node.version,
                range: node.range,
            })?;
            match body {
                NodeBody::Leaf(leaf) => out.push(LeafMapping {
                    slot_range: node.range,
                    leaf: if leaf.is_hole() { None } else { Some(leaf) },
                }),
                NodeBody::Inner(inner) => {
                    let (left_range, right_range) = node.range.split();
                    expand_half(
                        inner.left,
                        left_range,
                        range,
                        snapshot.chunk_size,
                        &mut next,
                        &mut out,
                    );
                    expand_half(
                        inner.right,
                        right_range,
                        range,
                        snapshot.chunk_size,
                        &mut next,
                        &mut out,
                    );
                }
                // An alias covers the same range at an older version; it
                // stays in flight and resolves in a later batch.
                NodeBody::Alias(target) => next.push(target),
            }
        }
        on_level(&out[level_start..]);
        frontier = next;
    }
    // Holes surface at whatever level discovers them and aliases resolve a
    // level late, so restore increasing offset order at the end.
    out.sort_by_key(|mapping| mapping.slot_range.offset);
    Ok(out)
}

/// The flat-snapshot read path: every leaf slot of a flat snapshot exists at
/// the snapshot's own version, so the keys covering `range` are constructed
/// directly and fetched in one batch.
fn collect_leaves_flat(
    store: &dyn MetadataStore,
    blob: BlobId,
    snapshot: &SnapshotDescriptor,
    range: ByteRange,
    on_level: &mut impl FnMut(&[LeafMapping]),
) -> Result<Vec<LeafMapping>> {
    let keys: Vec<NodeKey> = blobseer_types::chunk_span(range, snapshot.chunk_size)
        .into_iter()
        .map(|slot| NodeKey {
            blob,
            version: snapshot.version,
            range: slot.range(),
        })
        .collect();
    let bodies = store.get_nodes(&keys)?;
    let mut out = Vec::with_capacity(keys.len());
    for (key, body) in keys.iter().zip(bodies) {
        let body = body.ok_or(BlobError::MissingMetadata {
            blob,
            version: key.version,
            range: key.range,
        })?;
        match body {
            NodeBody::Leaf(leaf) => out.push(LeafMapping {
                slot_range: key.range,
                leaf: if leaf.is_hole() { None } else { Some(leaf) },
            }),
            _ => {
                return Err(BlobError::Internal(format!(
                    "expected a leaf at {key} of a flat snapshot"
                )))
            }
        }
    }
    on_level(&out);
    Ok(out)
}

/// Weaves a *flat* consolidated snapshot of `source` at `flatten_version`: a
/// self-contained tree whose every leaf slot is materialised at the new
/// version — written leaves referencing the *same* chunks as the source
/// snapshot, never-written slots recorded as explicit holes — plus the inner
/// spine above them. Publishing it is one batched [`MetadataStore::put_nodes`]
/// upload like any write; afterwards no node or chunk of any older version is
/// needed to serve the flat snapshot, so once the retention policy evicts
/// those versions the sweeper can reclaim their whole history.
pub fn build_flat_metadata(
    store: &dyn MetadataStore,
    blob: BlobId,
    source: &SnapshotDescriptor,
    flatten_version: Version,
) -> Result<WriteMetadata> {
    if source.size == 0 {
        return Err(BlobError::Internal(
            "cannot flatten an empty snapshot".into(),
        ));
    }
    if flatten_version <= source.version {
        return Err(BlobError::Internal(format!(
            "flatten version {flatten_version} must follow source {}",
            source.version
        )));
    }
    let chunk_size = source.chunk_size;
    let leaves = collect_leaves(store, blob, source, ByteRange::new(0, source.size))?;
    let mut by_slot: HashMap<u64, LeafNode> = HashMap::with_capacity(leaves.len());
    for mapping in leaves {
        if let Some(leaf) = mapping.leaf {
            by_slot.insert(mapping.slot_range.offset / chunk_size, leaf);
        }
    }
    let descriptor = SnapshotDescriptor {
        version: flatten_version,
        size: source.size,
        chunk_size,
        flat: true,
    };
    let root_range = descriptor
        .root_range()
        .ok_or_else(|| BlobError::Internal("flatten source lost its root".into()))?;
    let mut nodes = Vec::new();
    let root = flat_node(
        blob,
        flatten_version,
        chunk_size,
        descriptor.used_chunks(),
        &by_slot,
        root_range,
        &mut nodes,
    )
    .ok_or_else(|| BlobError::Internal("flattening produced no root node".into()))?;
    Ok(WriteMetadata {
        descriptor,
        nodes,
        root,
    })
}

/// Builds the flat-tree node covering `range` (children before parents, so
/// the root lands last), or `None` for subtrees entirely past the used slots.
fn flat_node(
    blob: BlobId,
    version: Version,
    chunk_size: u64,
    used_chunks: u64,
    leaves: &HashMap<u64, LeafNode>,
    range: ByteRange,
    nodes: &mut Vec<(NodeKey, NodeBody)>,
) -> Option<ChildRef> {
    if range.offset >= used_chunks * chunk_size {
        return None;
    }
    let body = if range.len == chunk_size {
        let slot = range.offset / chunk_size;
        NodeBody::Leaf(
            leaves
                .get(&slot)
                .cloned()
                .unwrap_or_else(|| LeafNode::hole(blob, slot)),
        )
    } else {
        let (left_range, right_range) = range.split();
        let left = flat_node(
            blob,
            version,
            chunk_size,
            used_chunks,
            leaves,
            left_range,
            nodes,
        );
        let right = flat_node(
            blob,
            version,
            chunk_size,
            used_chunks,
            leaves,
            right_range,
            nodes,
        );
        NodeBody::Inner(InnerNode { left, right })
    };
    nodes.push((
        NodeKey {
            blob,
            version,
            range,
        },
        body,
    ));
    Some(ChildRef { version, range })
}

/// Queues the node covering one half of a split range for the next level of
/// the frontier descent, or emits the half's holes if it was never written.
fn expand_half(
    child: Option<ChildRef>,
    half_range: ByteRange,
    read_range: ByteRange,
    chunk_size: u64,
    next: &mut Vec<ChildRef>,
    out: &mut Vec<LeafMapping>,
) {
    if !half_range.overlaps(&read_range) {
        return;
    }
    match child {
        Some(child) => next.push(child),
        None => {
            let touched = half_range
                .intersect(&read_range)
                .expect("overlap was checked above");
            for slot in blobseer_types::chunk_span(touched, chunk_size) {
                out.push(LeafMapping {
                    slot_range: slot.range(),
                    leaf: None,
                });
            }
        }
    }
}

/// Validates a read request and returns the root to descend from, `None`
/// for the trivial empty read.
fn check_read(
    blob: BlobId,
    snapshot: &SnapshotDescriptor,
    range: ByteRange,
) -> Result<Option<ChildRef>> {
    if range.is_empty() {
        return Ok(None);
    }
    if range.end() > snapshot.size {
        return Err(BlobError::ReadOutOfBounds {
            blob,
            version: snapshot.version,
            requested: range,
            snapshot_size: snapshot.size,
        });
    }
    let root_range = snapshot.root_range().ok_or(BlobError::ReadOutOfBounds {
        blob,
        version: snapshot.version,
        requested: range,
        snapshot_size: 0,
    })?;
    Ok(Some(ChildRef {
        version: snapshot.version,
        range: root_range,
    }))
}

/// The node-at-a-time recursive variant of [`collect_leaves`]: one store
/// lookup per tree node visited.
///
/// Kept *test-only* as the executable specification of the read descent —
/// the differential tests assert that the batched frontier walk returns
/// exactly what this does. Production builds compile only the frontier
/// descent, so the legacy recursive walk can never silently diverge from it
/// in shipped code.
#[cfg(test)]
pub(crate) fn collect_leaves_unbatched(
    store: &dyn MetadataStore,
    blob: BlobId,
    snapshot: &SnapshotDescriptor,
    range: ByteRange,
) -> Result<Vec<LeafMapping>> {
    let Some(root) = check_read(blob, snapshot, range)? else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    descend(store, blob, snapshot.chunk_size, &root, range, &mut out)?;
    Ok(out)
}

#[cfg(test)]
fn descend(
    store: &dyn MetadataStore,
    blob: BlobId,
    chunk_size: u64,
    node: &ChildRef,
    read_range: ByteRange,
    out: &mut Vec<LeafMapping>,
) -> Result<()> {
    if !node.range.overlaps(&read_range) {
        return Ok(());
    }
    let key = node.key(blob);
    let body = store.get_node(&key)?.ok_or(BlobError::MissingMetadata {
        blob,
        version: key.version,
        range: key.range,
    })?;
    match body {
        NodeBody::Leaf(leaf) => out.push(LeafMapping {
            slot_range: node.range,
            leaf: if leaf.is_hole() { None } else { Some(leaf) },
        }),
        NodeBody::Inner(inner) => {
            let (left_range, right_range) = node.range.split();
            visit_half(
                store, blob, chunk_size, inner.left, left_range, read_range, out,
            )?;
            visit_half(
                store,
                blob,
                chunk_size,
                inner.right,
                right_range,
                read_range,
                out,
            )?;
        }
        NodeBody::Alias(target) => descend(store, blob, chunk_size, &target, read_range, out)?,
    }
    Ok(())
}

#[cfg(test)]
fn visit_half(
    store: &dyn MetadataStore,
    blob: BlobId,
    chunk_size: u64,
    child: Option<ChildRef>,
    half_range: ByteRange,
    read_range: ByteRange,
    out: &mut Vec<LeafMapping>,
) -> Result<()> {
    if !half_range.overlaps(&read_range) {
        return Ok(());
    }
    match child {
        Some(child) => descend(store, blob, chunk_size, &child, read_range, out),
        None => {
            // The half has never been written: report one hole per slot that
            // the read actually touches.
            let touched = half_range
                .intersect(&read_range)
                .expect("overlap was checked above");
            for slot in blobseer_types::chunk_span(touched, chunk_size) {
                out.push(LeafMapping {
                    slot_range: slot.range(),
                    leaf: None,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InMemoryMetaStore;
    use proptest::prelude::*;

    const CS: u64 = 64; // chunk size used throughout the tests

    fn blob() -> BlobId {
        BlobId(1)
    }

    fn chunk_id(tag: u64, slot: u64) -> ChunkId {
        ChunkId {
            blob: blob(),
            write_tag: tag,
            slot,
        }
    }

    fn written(tag: u64, slot: u64, len: u64) -> WrittenChunk {
        WrittenChunk {
            slot,
            chunk: chunk_id(tag, slot),
            providers: vec![ProviderId((slot % 4) as u32)],
            len,
        }
    }

    /// Applies a write covering `[offset, offset+len)` (whole slots assumed)
    /// on top of `reference`, storing its metadata, and returns the new
    /// descriptor.
    fn apply_write(
        store: &dyn MetadataStore,
        reference: &SnapshotDescriptor,
        tag: u64,
        offset: u64,
        len: u64,
    ) -> SnapshotDescriptor {
        assert_eq!(offset % CS, 0, "test writes are slot aligned");
        let new_size = reference.size.max(offset + len);
        let slots = blobseer_types::chunk_span(ByteRange::new(offset, len), CS);
        let chunks: Vec<WrittenChunk> = slots
            .iter()
            .map(|s| {
                let slot_end = (s.index + 1) * CS;
                let chunk_len = if slot_end > new_size {
                    new_size - s.index * CS
                } else {
                    CS
                };
                written(tag, s.index, chunk_len)
            })
            .collect();
        let meta = build_write_metadata(
            store,
            blob(),
            reference,
            reference.version.next(),
            new_size,
            &chunks,
        )
        .unwrap();
        let descriptor = meta.descriptor;
        publish_metadata(store, meta).unwrap();
        descriptor
    }

    #[test]
    fn empty_snapshot_descriptor() {
        let d = SnapshotDescriptor::initial(CS);
        assert_eq!(d.version, Version::ZERO);
        assert_eq!(d.size, 0);
        assert_eq!(d.expanse_chunks(), 0);
        assert_eq!(d.root_range(), None);
        assert_eq!(d.root_key(blob()), None);
        assert_eq!(d.tree_depth(), 0);
    }

    #[test]
    fn descriptor_expanse_rounds_to_power_of_two() {
        let d = SnapshotDescriptor {
            version: Version(1),
            size: 5 * CS,
            chunk_size: CS,
            flat: false,
        };
        assert_eq!(d.used_chunks(), 5);
        assert_eq!(d.expanse_chunks(), 8);
        assert_eq!(d.root_range(), Some(ByteRange::new(0, 8 * CS)));
        assert_eq!(d.tree_depth(), 4);

        let partial = SnapshotDescriptor {
            version: Version(1),
            size: CS + 1,
            chunk_size: CS,
            flat: false,
        };
        assert_eq!(partial.used_chunks(), 2);
        assert_eq!(partial.expanse_chunks(), 2);
    }

    #[test]
    fn first_write_builds_a_complete_path() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        // Write 4 chunks: expanse 4, depth 3 (leaves + 2 inner levels).
        let chunks: Vec<WrittenChunk> = (0..4).map(|s| written(1, s, CS)).collect();
        let meta = build_write_metadata(&store, blob(), &v0, Version(1), 4 * CS, &chunks).unwrap();
        assert_eq!(meta.descriptor.size, 4 * CS);
        assert_eq!(meta.leaf_count(), 4);
        assert_eq!(meta.inner_count(), 3); // two level-1 nodes + root
        assert_eq!(meta.tree_depth(), 3);
        assert_eq!(meta.root.range, ByteRange::new(0, 4 * CS));
        assert_eq!(meta.root.version, Version(1));
        // Children come before parents so the store never holds dangling
        // parents while weaving.
        let root_index = meta
            .nodes
            .iter()
            .position(|(k, _)| k.range == meta.root.range)
            .unwrap();
        assert_eq!(root_index, meta.nodes.len() - 1);
        assert!(meta.metadata_bytes() > 0);
    }

    #[test]
    fn read_after_single_write_maps_every_slot() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 3 * CS);
        let leaves = collect_leaves(&store, blob(), &v1, ByteRange::new(0, 3 * CS)).unwrap();
        assert_eq!(leaves.len(), 3);
        for (i, mapping) in leaves.iter().enumerate() {
            assert_eq!(mapping.slot_range, ByteRange::new(i as u64 * CS, CS));
            let leaf = mapping.leaf.as_ref().expect("no holes expected");
            assert_eq!(leaf.chunk, chunk_id(1, i as u64));
            assert_eq!(leaf.len, CS);
        }
    }

    #[test]
    fn partial_overwrite_borrows_untouched_subtrees() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 8 * CS);
        let nodes_before = store.node_count();

        // Overwrite only slot 5.
        let v2 = apply_write(&store, &v1, 2, 5 * CS, CS);
        let new_nodes = store.node_count() - nodes_before;
        // One leaf plus one inner node per level above it: depth is 4
        // (8 slots), so 1 leaf + 3 inner nodes.
        assert_eq!(new_nodes, 4);

        // The new snapshot sees the new chunk at slot 5 and the old ones
        // elsewhere.
        let leaves = collect_leaves(&store, blob(), &v2, ByteRange::new(0, 8 * CS)).unwrap();
        assert_eq!(leaves.len(), 8);
        for (i, mapping) in leaves.iter().enumerate() {
            let leaf = mapping.leaf.as_ref().unwrap();
            let expected_tag = if i == 5 { 2 } else { 1 };
            assert_eq!(leaf.chunk, chunk_id(expected_tag, i as u64), "slot {i}");
        }

        // The old snapshot is untouched (versioning: readers of v1 never see
        // the concurrent writer's chunk).
        let old = collect_leaves(&store, blob(), &v1, ByteRange::new(5 * CS, CS)).unwrap();
        assert_eq!(old[0].leaf.as_ref().unwrap().chunk, chunk_id(1, 5));
    }

    #[test]
    fn append_grows_the_expanse_and_borrows_the_old_root() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 4 * CS);
        assert_eq!(v1.expanse_chunks(), 4);

        // Append one chunk: expanse doubles to 8.
        let v2 = apply_write(&store, &v1, 2, 4 * CS, CS);
        assert_eq!(v2.expanse_chunks(), 8);
        assert_eq!(v2.size, 5 * CS);

        // Reading the old region still returns tag-1 chunks, the new region
        // returns the appended chunk.
        let leaves = collect_leaves(&store, blob(), &v2, ByteRange::new(0, 5 * CS)).unwrap();
        assert_eq!(leaves.len(), 5);
        assert_eq!(leaves[0].leaf.as_ref().unwrap().chunk, chunk_id(1, 0));
        assert_eq!(leaves[4].leaf.as_ref().unwrap().chunk, chunk_id(2, 4));
    }

    #[test]
    fn large_append_bridges_multiple_expanse_doublings() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        // 2 chunks -> expanse 2.
        let v1 = apply_write(&store, &v0, 1, 0, 2 * CS);
        assert_eq!(v1.expanse_chunks(), 2);
        // Append 10 chunks -> 12 used, expanse 16 (three doublings).
        let v2 = apply_write(&store, &v1, 2, 2 * CS, 10 * CS);
        assert_eq!(v2.expanse_chunks(), 16);
        // Every slot is reachable: old ones from the borrowed subtree, new
        // ones from the append, and the never-written tail is out of bounds.
        let leaves = collect_leaves(&store, blob(), &v2, ByteRange::new(0, 12 * CS)).unwrap();
        assert_eq!(leaves.len(), 12);
        assert_eq!(leaves[0].leaf.as_ref().unwrap().chunk, chunk_id(1, 0));
        assert_eq!(leaves[1].leaf.as_ref().unwrap().chunk, chunk_id(1, 1));
        for slot in 2..12u64 {
            assert_eq!(
                leaves[slot as usize].leaf.as_ref().unwrap().chunk,
                chunk_id(2, slot),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn sparse_write_leaves_holes() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        // Write only slots 6 and 7 of an 8-slot expanse.
        let v1 = apply_write(&store, &v0, 1, 6 * CS, 2 * CS);
        assert_eq!(v1.size, 8 * CS);
        let leaves = collect_leaves(&store, blob(), &v1, ByteRange::new(0, 8 * CS)).unwrap();
        assert_eq!(leaves.len(), 8);
        for (i, mapping) in leaves.iter().enumerate() {
            if i < 6 {
                assert!(mapping.leaf.is_none(), "slot {i} should be a hole");
            } else {
                assert_eq!(mapping.leaf.as_ref().unwrap().chunk, chunk_id(1, i as u64));
            }
        }
    }

    #[test]
    fn reads_are_clipped_to_the_requested_range() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 16 * CS);
        let leaves =
            collect_leaves(&store, blob(), &v1, ByteRange::new(5 * CS + 10, 2 * CS)).unwrap();
        // Bytes [5*CS+10, 7*CS+10) touch slots 5, 6 and 7.
        let slots: Vec<u64> = leaves.iter().map(|m| m.slot_range.offset / CS).collect();
        assert_eq!(slots, vec![5, 6, 7]);
    }

    #[test]
    fn out_of_bounds_reads_are_rejected() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 2 * CS);
        let err = collect_leaves(&store, blob(), &v1, ByteRange::new(CS, 2 * CS)).unwrap_err();
        assert!(matches!(err, BlobError::ReadOutOfBounds { .. }));
        // Reading the empty snapshot is always out of bounds.
        let err = collect_leaves(&store, blob(), &v0, ByteRange::new(0, 1)).unwrap_err();
        assert!(matches!(err, BlobError::ReadOutOfBounds { .. }));
        // Empty reads succeed trivially.
        assert!(collect_leaves(&store, blob(), &v1, ByteRange::new(0, 0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn final_partial_chunk_records_its_true_length() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let new_size = CS + 10;
        let chunks = vec![written(1, 0, CS), written(1, 1, 10)];
        let meta =
            build_write_metadata(&store, blob(), &v0, Version(1), new_size, &chunks).unwrap();
        let descriptor = meta.descriptor;
        publish_metadata(&store, meta).unwrap();
        let leaves =
            collect_leaves(&store, blob(), &descriptor, ByteRange::new(0, new_size)).unwrap();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[1].leaf.as_ref().unwrap().len, 10);
    }

    #[test]
    fn invalid_writes_are_rejected() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        // No chunks.
        assert!(matches!(
            build_write_metadata(&store, blob(), &v0, Version(1), CS, &[]),
            Err(BlobError::EmptyWrite)
        ));
        // Chunk longer than the chunk size.
        assert!(build_write_metadata(
            &store,
            blob(),
            &v0,
            Version(1),
            2 * CS,
            &[written(1, 0, CS + 1)],
        )
        .is_err());
        // Duplicate slot.
        assert!(build_write_metadata(
            &store,
            blob(),
            &v0,
            Version(1),
            CS,
            &[written(1, 0, CS), written(2, 0, CS)],
        )
        .is_err());
        // Shrinking size.
        let v1 = apply_write(&store, &v0, 1, 0, 4 * CS);
        assert!(
            build_write_metadata(&store, blob(), &v1, Version(2), CS, &[written(2, 0, CS)],)
                .is_err()
        );
        // Slots past the declared size.
        assert!(
            build_write_metadata(&store, blob(), &v0, Version(1), CS, &[written(1, 5, CS)],)
                .is_err()
        );
    }

    #[test]
    fn metadata_overhead_is_logarithmic_in_blob_size() {
        // The property behind Fig. A1: once the blob is large, a
        // single-chunk write creates O(log(number of chunks)) nodes.
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 1024 * CS); // 1024 chunks
        let meta = build_write_metadata(
            &store,
            blob(),
            &v1,
            Version(2),
            v1.size,
            &[written(2, 17, CS)],
        )
        .unwrap();
        // depth = log2(1024) + 1 = 11: one new leaf + 10 inner nodes.
        assert_eq!(meta.node_count(), 11);
        assert_eq!(meta.tree_depth(), 11);
    }

    #[test]
    fn concurrent_style_writes_against_same_reference_do_not_conflict() {
        // Two writers weaving against the same reference snapshot (as
        // happens under write/write concurrency) produce disjoint node sets
        // as long as the version manager assigned them different versions.
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 8 * CS);

        let w2 = build_write_metadata(
            &store,
            blob(),
            &v1,
            Version(2),
            v1.size,
            &[written(2, 1, CS)],
        )
        .unwrap();
        let w3 = build_write_metadata(
            &store,
            blob(),
            &v1,
            Version(3),
            v1.size,
            &[written(3, 6, CS)],
        )
        .unwrap();
        publish_metadata(&store, w2.clone()).unwrap();
        publish_metadata(&store, w3.clone()).unwrap();

        // Version 3 linked against version 1, so it does not see writer 2's
        // chunk — the version manager is responsible for serialising the
        // reference snapshots when strict last-writer-wins ordering is
        // needed; here we only check isolation.
        let leaves =
            collect_leaves(&store, blob(), &w3.descriptor, ByteRange::new(0, 8 * CS)).unwrap();
        assert_eq!(leaves[6].leaf.as_ref().unwrap().chunk, chunk_id(3, 6));
        assert_eq!(leaves[1].leaf.as_ref().unwrap().chunk, chunk_id(1, 1));

        let leaves_v2 =
            collect_leaves(&store, blob(), &w2.descriptor, ByteRange::new(0, 8 * CS)).unwrap();
        assert_eq!(leaves_v2[1].leaf.as_ref().unwrap().chunk, chunk_id(2, 1));
        assert_eq!(leaves_v2[6].leaf.as_ref().unwrap().chunk, chunk_id(1, 6));
    }

    #[test]
    fn missing_reference_node_is_reported() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        // Build v1 but "forget" to publish its nodes.
        let chunks: Vec<WrittenChunk> = (0..4).map(|s| written(1, s, CS)).collect();
        let meta = build_write_metadata(&store, blob(), &v0, Version(1), 4 * CS, &chunks).unwrap();
        // Weaving v2 against v1 needs v1's tree: it must fail loudly.
        let err = build_write_metadata(
            &store,
            blob(),
            &meta.descriptor,
            Version(2),
            meta.descriptor.size,
            &[written(2, 0, CS)],
        )
        .unwrap_err();
        assert!(matches!(err, BlobError::MissingMetadata { .. }));
    }

    #[test]
    fn chained_weaving_links_to_unwoven_predecessors() {
        // Writer A (v2) and writer B (v3) both weave against base v1 while
        // neither has published yet. B's chain contains A's summary, so B
        // links to A's future nodes for the ranges A rebuilds.
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 8 * CS);

        // A: overwrite slot 2, assigned v2 (metadata NOT yet stored).
        let a_summary = WriteSummary {
            version: Version(2),
            written_slots: ByteRange::new(2 * CS, CS),
            size: v1.size,
            chunk_size: CS,
        };
        let a_meta = build_write_metadata_chained(
            &store,
            blob(),
            &ReferenceChain::published_only(v1),
            Version(2),
            v1.size,
            &[written(2, 2, CS)],
        )
        .unwrap();

        // B: overwrite slot 3, assigned v3; its chain includes A's summary.
        let b_chain = ReferenceChain {
            base: v1,
            pending: vec![a_summary],
        };
        let b_meta = build_write_metadata_chained(
            &store,
            blob(),
            &b_chain,
            Version(3),
            v1.size,
            &[written(3, 3, CS)],
        )
        .unwrap();

        // Slots 2 and 3 share the level-1 parent [2*CS, 4*CS): B's new
        // parent must reference A's future leaf for slot 2 at version 2.
        let parent = b_meta
            .nodes
            .iter()
            .find(|(k, _)| k.range == ByteRange::new(2 * CS, 2 * CS))
            .expect("B rebuilds the shared parent");
        let inner = parent.1.as_inner().unwrap();
        assert_eq!(
            inner.left,
            Some(ChildRef {
                version: Version(2),
                range: ByteRange::new(2 * CS, CS),
            })
        );

        // Once both writers have stored their nodes (in any order), reading
        // v3 sees both writes and v2 sees only A's.
        publish_metadata(&store, b_meta.clone()).unwrap();
        publish_metadata(&store, a_meta.clone()).unwrap();
        let v3_leaves = collect_leaves(
            &store,
            blob(),
            &b_meta.descriptor,
            ByteRange::new(0, 8 * CS),
        )
        .unwrap();
        assert_eq!(v3_leaves[2].leaf.as_ref().unwrap().chunk, chunk_id(2, 2));
        assert_eq!(v3_leaves[3].leaf.as_ref().unwrap().chunk, chunk_id(3, 3));
        assert_eq!(v3_leaves[1].leaf.as_ref().unwrap().chunk, chunk_id(1, 1));
        let v2_leaves = collect_leaves(
            &store,
            blob(),
            &a_meta.descriptor,
            ByteRange::new(0, 8 * CS),
        )
        .unwrap();
        assert_eq!(v2_leaves[2].leaf.as_ref().unwrap().chunk, chunk_id(2, 2));
        assert_eq!(v2_leaves[3].leaf.as_ref().unwrap().chunk, chunk_id(1, 3));
    }

    #[test]
    fn chained_weaving_handles_concurrent_appends() {
        // Two appenders get tickets for consecutive regions; the second
        // appender's tree must reference the first appender's future nodes
        // even though the first has not woven yet.
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 2 * CS);

        // Appender A gets [2*CS, 4*CS), version 2.
        let a_summary = WriteSummary {
            version: Version(2),
            written_slots: ByteRange::new(2 * CS, 2 * CS),
            size: 4 * CS,
            chunk_size: CS,
        };
        let a_meta = build_write_metadata_chained(
            &store,
            blob(),
            &ReferenceChain::published_only(v1),
            Version(2),
            4 * CS,
            &[written(2, 2, CS), written(2, 3, CS)],
        )
        .unwrap();

        // Appender B gets [4*CS, 6*CS), version 3, chain includes A.
        let b_chain = ReferenceChain {
            base: v1,
            pending: vec![a_summary],
        };
        let b_meta = build_write_metadata_chained(
            &store,
            blob(),
            &b_chain,
            Version(3),
            6 * CS,
            &[written(3, 4, CS), written(3, 5, CS)],
        )
        .unwrap();
        assert_eq!(b_meta.descriptor.expanse_chunks(), 8);

        // B's root left child covers [0, 4*CS): exactly A's root, borrowed
        // at version 2.
        let root = b_meta.nodes.last().unwrap();
        let root_inner = root.1.as_inner().unwrap();
        assert_eq!(
            root_inner.left,
            Some(ChildRef {
                version: Version(2),
                range: ByteRange::new(0, 4 * CS),
            })
        );

        publish_metadata(&store, a_meta).unwrap();
        publish_metadata(&store, b_meta.clone()).unwrap();
        let leaves = collect_leaves(
            &store,
            blob(),
            &b_meta.descriptor,
            ByteRange::new(0, 6 * CS),
        )
        .unwrap();
        let tags: Vec<u64> = leaves
            .iter()
            .map(|m| m.leaf.as_ref().unwrap().chunk.write_tag)
            .collect();
        assert_eq!(tags, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn repair_weaving_unblocks_later_writers() {
        // Writer A (v2) dies before weaving anything; writer B (v3) already
        // linked against A's future nodes. Repair weaving materialises A's
        // keys as aliases/holes so B's snapshot stays fully readable.
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 4 * CS);

        // A claims an append of 2 chunks (slots 4 and 5) but never weaves.
        let a_summary = WriteSummary {
            version: Version(2),
            written_slots: ByteRange::new(4 * CS, 2 * CS),
            size: 6 * CS,
            chunk_size: CS,
        };
        // B overwrites slot 1 and links against the chain [A].
        let b_chain = ReferenceChain {
            base: v1,
            pending: vec![a_summary],
        };
        let b_meta = build_write_metadata_chained(
            &store,
            blob(),
            &b_chain,
            Version(3),
            6 * CS,
            &[written(3, 1, CS)],
        )
        .unwrap();
        publish_metadata(&store, b_meta.clone()).unwrap();

        // Without repair, reading B's snapshot would hit missing metadata in
        // the region A claimed.
        assert!(collect_leaves(
            &store,
            blob(),
            &b_meta.descriptor,
            ByteRange::new(0, 6 * CS)
        )
        .is_err());

        // Repair A.
        let repair = build_repair_metadata(
            &store,
            blob(),
            &ReferenceChain::published_only(v1),
            &a_summary,
        )
        .unwrap();
        publish_metadata(&store, repair.clone()).unwrap();
        assert_eq!(repair.descriptor.size, 6 * CS);

        // A's snapshot reads as v1 plus a zero hole in the claimed region.
        let a_leaves = collect_leaves(
            &store,
            blob(),
            &repair.descriptor,
            ByteRange::new(0, 6 * CS),
        )
        .unwrap();
        assert_eq!(a_leaves.len(), 6);
        assert_eq!(a_leaves[0].leaf.as_ref().unwrap().chunk, chunk_id(1, 0));
        assert!(a_leaves[4].leaf.is_none());
        assert!(a_leaves[5].leaf.is_none());

        // B's snapshot is now fully readable: its own write plus v1's data
        // plus holes where A claimed.
        let b_leaves = collect_leaves(
            &store,
            blob(),
            &b_meta.descriptor,
            ByteRange::new(0, 6 * CS),
        )
        .unwrap();
        assert_eq!(b_leaves[1].leaf.as_ref().unwrap().chunk, chunk_id(3, 1));
        assert_eq!(b_leaves[0].leaf.as_ref().unwrap().chunk, chunk_id(1, 0));
        assert!(b_leaves[4].leaf.is_none());
    }

    #[test]
    fn repair_weaving_rejects_stale_versions() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 2 * CS);
        let stale = WriteSummary {
            version: Version(1),
            written_slots: ByteRange::new(0, CS),
            size: 2 * CS,
            chunk_size: CS,
        };
        assert!(
            build_repair_metadata(&store, blob(), &ReferenceChain::published_only(v1), &stale)
                .is_err()
        );
    }

    #[test]
    fn chained_weaving_rejects_stale_versions() {
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 0, 2 * CS);
        // A new write must carry a version greater than its predecessor's.
        let err = build_write_metadata_chained(
            &store,
            blob(),
            &ReferenceChain::published_only(v1),
            Version(1),
            v1.size,
            &[written(9, 0, CS)],
        )
        .unwrap_err();
        assert!(matches!(err, BlobError::Internal(_)));
    }

    #[test]
    fn write_summary_creates_node_predicate() {
        let s = WriteSummary {
            version: Version(5),
            written_slots: ByteRange::new(2 * CS, CS),
            size: 8 * CS,
            chunk_size: CS,
        };
        let prev_root = Some(ByteRange::new(0, 8 * CS));
        // Touched leaf and its ancestors.
        assert!(s.creates_node(ByteRange::new(2 * CS, CS), prev_root));
        assert!(s.creates_node(ByteRange::new(2 * CS, 2 * CS), prev_root));
        assert!(s.creates_node(ByteRange::new(0, 4 * CS), prev_root));
        assert!(s.creates_node(ByteRange::new(0, 8 * CS), prev_root));
        // Untouched sibling subtrees.
        assert!(!s.creates_node(ByteRange::new(3 * CS, CS), prev_root));
        assert!(!s.creates_node(ByteRange::new(4 * CS, 4 * CS), prev_root));
        // Ranges outside the summary's own expanse.
        assert!(!s.creates_node(ByteRange::new(0, 16 * CS), prev_root));

        // Expanse growth: an append whose write range is the new half also
        // creates the bridging nodes that contain the old root.
        let grow = WriteSummary {
            version: Version(6),
            written_slots: ByteRange::new(8 * CS, CS),
            size: 9 * CS,
            chunk_size: CS,
        };
        let old_root = Some(ByteRange::new(0, 2 * CS));
        assert!(grow.creates_node(ByteRange::new(0, 16 * CS), old_root));
        assert!(grow.creates_node(ByteRange::new(0, 8 * CS), old_root));
        assert!(grow.creates_node(ByteRange::new(0, 4 * CS), old_root));
        assert!(!grow.creates_node(ByteRange::new(0, 2 * CS), old_root));
        assert!(!grow.creates_node(ByteRange::new(4 * CS, 4 * CS), old_root));
    }

    #[test]
    fn streaming_levels_union_to_the_full_mapping() {
        // The level callback must report every mapping exactly once and the
        // union of all levels must equal the sorted final result, including
        // under holes (sparse write) and aliases (repaired write).
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 6 * CS, 2 * CS); // slots 0..6 are holes
        let aborted = WriteSummary {
            version: Version(2),
            written_slots: ByteRange::new(8 * CS, 2 * CS),
            size: 10 * CS,
            chunk_size: CS,
        };
        let chain = ReferenceChain {
            base: v1,
            pending: vec![aborted],
        };
        let b_meta = build_write_metadata_chained(
            &store,
            blob(),
            &chain,
            Version(3),
            10 * CS,
            &[written(3, 1, CS)],
        )
        .unwrap();
        publish_metadata(&store, b_meta.clone()).unwrap();
        let repair = build_repair_metadata(
            &store,
            blob(),
            &ReferenceChain::published_only(v1),
            &aborted,
        )
        .unwrap();
        publish_metadata(&store, repair).unwrap();

        let range = ByteRange::new(0, 10 * CS);
        let mut streamed: Vec<LeafMapping> = Vec::new();
        let mut levels = 0usize;
        let full = collect_leaves_streaming(&store, blob(), &b_meta.descriptor, range, |level| {
            levels += 1;
            streamed.extend_from_slice(level);
        })
        .unwrap();
        assert!(levels > 1, "a multi-level tree must stream multiple levels");
        streamed.sort_by_key(|m| m.slot_range.offset);
        assert_eq!(streamed, full);
        assert_eq!(
            full,
            collect_leaves(&store, blob(), &b_meta.descriptor, range).unwrap()
        );
    }

    #[test]
    fn frontier_descent_matches_recursive_descent_with_aliases_and_holes() {
        // Build a history containing every node flavour the descent can
        // meet: borrowed subtrees, holes from a sparse write, and aliases
        // from a repaired (aborted) write.
        let store = InMemoryMetaStore::new();
        let v0 = SnapshotDescriptor::initial(CS);
        let v1 = apply_write(&store, &v0, 1, 6 * CS, 2 * CS); // sparse: slots 0..6 are holes
        let aborted = WriteSummary {
            version: Version(2),
            written_slots: ByteRange::new(8 * CS, 2 * CS),
            size: 10 * CS,
            chunk_size: CS,
        };
        let b_chain = ReferenceChain {
            base: v1,
            pending: vec![aborted],
        };
        let b_meta = build_write_metadata_chained(
            &store,
            blob(),
            &b_chain,
            Version(3),
            10 * CS,
            &[written(3, 1, CS)],
        )
        .unwrap();
        publish_metadata(&store, b_meta.clone()).unwrap();
        let repair = build_repair_metadata(
            &store,
            blob(),
            &ReferenceChain::published_only(v1),
            &aborted,
        )
        .unwrap();
        publish_metadata(&store, repair.clone()).unwrap();

        for snapshot in [v1, repair.descriptor, b_meta.descriptor] {
            for (offset, len) in [(0, snapshot.size), (CS + 7, 3 * CS), (5 * CS, 4 * CS)] {
                let len = len.min(snapshot.size - offset);
                let range = ByteRange::new(offset, len);
                let batched = collect_leaves(&store, blob(), &snapshot, range).unwrap();
                let recursive = collect_leaves_unbatched(&store, blob(), &snapshot, range).unwrap();
                assert_eq!(
                    batched, recursive,
                    "divergence at v{} {range}",
                    snapshot.version
                );
            }
        }
    }

    /// Reference model for the property test: per-slot tag of the last
    /// writer, applied in version order.
    #[derive(Default, Clone)]
    struct SlotModel {
        last_writer: HashMap<u64, u64>,
        size: u64,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_linear_history_reads_match_model(
            ops in proptest::collection::vec((0u64..32, 1u64..8), 1..12)
        ) {
            let store = InMemoryMetaStore::new();
            let mut snapshot = SnapshotDescriptor::initial(CS);
            let mut model = SlotModel::default();

            for (tag0, (start_slot, slot_count)) in ops.iter().enumerate() {
                let tag = tag0 as u64 + 1;
                let offset = start_slot * CS;
                let len = slot_count * CS;
                snapshot = apply_write(&store, &snapshot, tag, offset, len);
                for s in *start_slot..start_slot + slot_count {
                    model.last_writer.insert(s, tag);
                }
                model.size = model.size.max(offset + len);
            }

            prop_assert_eq!(snapshot.size, model.size);
            let leaves = collect_leaves(
                &store,
                blob(),
                &snapshot,
                ByteRange::new(0, snapshot.size),
            ).unwrap();
            prop_assert_eq!(leaves.len() as u64, snapshot.size.div_ceil(CS));
            for mapping in leaves {
                let slot = mapping.slot_range.offset / CS;
                match model.last_writer.get(&slot) {
                    Some(&tag) => {
                        let leaf = mapping.leaf.as_ref().expect("written slot must have a leaf");
                        prop_assert_eq!(leaf.chunk, chunk_id(tag, slot));
                    }
                    None => prop_assert!(mapping.leaf.is_none(), "slot {} should be a hole", slot),
                }
            }
        }

        #[test]
        fn prop_frontier_descent_matches_recursive_descent(
            ops in proptest::collection::vec((0u64..32, 1u64..8), 1..12),
            read in (0u64..28, 1u64..12),
        ) {
            let store = InMemoryMetaStore::new();
            let mut snapshot = SnapshotDescriptor::initial(CS);
            for (tag0, (start_slot, slot_count)) in ops.iter().enumerate() {
                snapshot = apply_write(
                    &store,
                    &snapshot,
                    tag0 as u64 + 1,
                    start_slot * CS,
                    slot_count * CS,
                );
            }
            // Clip the read into bounds: the equivalence is about descent,
            // not the (shared) bounds check.
            let (start_slot, slot_count) = read;
            let offset = (start_slot * CS).min(snapshot.size - 1);
            let len = (slot_count * CS).min(snapshot.size - offset);
            let range = ByteRange::new(offset, len);
            let batched = collect_leaves(&store, blob(), &snapshot, range).unwrap();
            let recursive = collect_leaves_unbatched(&store, blob(), &snapshot, range).unwrap();
            prop_assert_eq!(batched, recursive);
        }

        #[test]
        fn prop_old_versions_are_immutable(
            ops in proptest::collection::vec((0u64..16, 1u64..4), 2..8)
        ) {
            let store = InMemoryMetaStore::new();
            let mut snapshots = vec![SnapshotDescriptor::initial(CS)];
            for (tag0, (start_slot, slot_count)) in ops.iter().enumerate() {
                let tag = tag0 as u64 + 1;
                let prev = *snapshots.last().unwrap();
                let next = apply_write(&store, &prev, tag, start_slot * CS, slot_count * CS);
                snapshots.push(next);
            }
            // Re-reading the *first* non-empty snapshot after all later
            // writes still returns only tag-1 chunks.
            let first = snapshots[1];
            let leaves = collect_leaves(
                &store,
                blob(),
                &first,
                ByteRange::new(0, first.size),
            ).unwrap();
            for mapping in leaves {
                if let Some(leaf) = mapping.leaf {
                    prop_assert_eq!(leaf.chunk.write_tag, 1);
                }
            }
        }
    }
}
