//! Wire codec for segment-tree nodes.
//!
//! The networked metadata plane ships [`NodeKey`]s and [`NodeBody`]s inside
//! framed RPC headers; their binary layout lives here, next to the types, so
//! the metadata crate — not the transport — owns what its values look like
//! on the wire. Built on the little-endian [`blobseer_types::wire`] codec.

use crate::node::{ChildRef, InnerNode, LeafNode, NodeBody, NodeKey};
use crate::tree::{ReferenceChain, SnapshotDescriptor, WriteSummary};
use blobseer_types::wire::{Wire, WireReader, WireWriter};
use blobseer_types::{BlobError, Result};

impl Wire for NodeKey {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.blob);
        w.put(&self.version);
        w.put(&self.range);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(NodeKey {
            blob: r.get()?,
            version: r.get()?,
            range: r.get()?,
        })
    }
}

impl Wire for ChildRef {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.version);
        w.put(&self.range);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(ChildRef {
            version: r.get()?,
            range: r.get()?,
        })
    }
}

impl Wire for LeafNode {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.chunk);
        w.put(&self.providers);
        w.put_u64(self.len);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(LeafNode {
            chunk: r.get()?,
            providers: r.get()?,
            len: r.get_u64()?,
        })
    }
}

impl Wire for InnerNode {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.left);
        w.put(&self.right);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(InnerNode {
            left: r.get()?,
            right: r.get()?,
        })
    }
}

impl Wire for NodeBody {
    fn put(&self, w: &mut WireWriter) {
        match self {
            NodeBody::Leaf(leaf) => {
                w.put_u8(0);
                w.put(leaf);
            }
            NodeBody::Inner(inner) => {
                w.put_u8(1);
                w.put(inner);
            }
            NodeBody::Alias(target) => {
                w.put_u8(2);
                w.put(target);
            }
        }
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => NodeBody::Leaf(r.get()?),
            1 => NodeBody::Inner(r.get()?),
            2 => NodeBody::Alias(r.get()?),
            tag => {
                return Err(BlobError::Transport(format!(
                    "wire: unknown NodeBody tag {tag}"
                )))
            }
        })
    }
}

impl Wire for SnapshotDescriptor {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.version);
        w.put_u64(self.size);
        w.put_u64(self.chunk_size);
        w.put_u8(u8::from(self.flat));
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(SnapshotDescriptor {
            version: r.get()?,
            size: r.get_u64()?,
            chunk_size: r.get_u64()?,
            flat: r.get_u8()? != 0,
        })
    }
}

impl Wire for WriteSummary {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.version);
        w.put(&self.written_slots);
        w.put_u64(self.size);
        w.put_u64(self.chunk_size);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(WriteSummary {
            version: r.get()?,
            written_slots: r.get()?,
            size: r.get_u64()?,
            chunk_size: r.get_u64()?,
        })
    }
}

impl Wire for ReferenceChain {
    fn put(&self, w: &mut WireWriter) {
        w.put(&self.base);
        w.put(&self.pending);
    }

    fn get(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(ReferenceChain {
            base: r.get()?,
            pending: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::wire::{decode, encode};
    use blobseer_types::{BlobId, ByteRange, ChunkId, ProviderId, Version};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(decode::<T>(&encode(&value)).unwrap(), value);
    }

    fn leaf() -> LeafNode {
        LeafNode {
            chunk: ChunkId {
                blob: BlobId(1),
                write_tag: 0xfeed,
                slot: 9,
            },
            providers: vec![ProviderId(0), ProviderId(3)],
            len: 4096,
        }
    }

    #[test]
    fn node_keys_and_bodies_roundtrip() {
        roundtrip(NodeKey {
            blob: BlobId(7),
            version: Version(3),
            range: ByteRange::new(128, 64),
        });
        roundtrip(NodeBody::Leaf(leaf()));
        roundtrip(NodeBody::Leaf(LeafNode::hole(BlobId(1), 4)));
        roundtrip(NodeBody::Inner(InnerNode {
            left: Some(ChildRef {
                version: Version(1),
                range: ByteRange::new(0, 64),
            }),
            right: None,
        }));
        roundtrip(NodeBody::Alias(ChildRef {
            version: Version(2),
            range: ByteRange::new(64, 64),
        }));
    }

    #[test]
    fn batches_roundtrip_as_the_rpc_headers_ship_them() {
        // The shapes the metadata plane actually sends: a key batch (get),
        // an optional-body batch (get response) and a key/body batch (put).
        let key = |v: u64| NodeKey {
            blob: BlobId(2),
            version: Version(v),
            range: ByteRange::new(0, 64),
        };
        roundtrip(vec![key(1), key(2), key(3)]);
        roundtrip(vec![
            Some(NodeBody::Leaf(leaf())),
            None,
            Some(NodeBody::Inner(InnerNode {
                left: None,
                right: None,
            })),
        ]);
        roundtrip(vec![
            (key(1), NodeBody::Leaf(leaf())),
            (
                key(2),
                NodeBody::Alias(ChildRef {
                    version: Version(1),
                    range: ByteRange::new(0, 64),
                }),
            ),
        ]);
    }

    #[test]
    fn version_plane_values_roundtrip() {
        let base = SnapshotDescriptor {
            version: Version(4),
            size: 1024,
            chunk_size: 64,
            flat: true,
        };
        roundtrip(base);
        roundtrip(ReferenceChain {
            base,
            pending: vec![WriteSummary {
                version: Version(5),
                written_slots: ByteRange::new(64, 128),
                size: 2048,
                chunk_size: 64,
            }],
        });
    }

    #[test]
    fn unknown_body_tags_fail_cleanly() {
        assert!(matches!(
            decode::<NodeBody>(&[7]),
            Err(BlobError::Transport(_))
        ));
    }
}
