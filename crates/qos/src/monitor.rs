//! Monitoring: turning raw provider counters into per-window feature
//! vectors suitable for behaviour modelling.

use blobseer_provider::{DataProvider, ProviderStats};
use blobseer_types::ProviderId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One monitoring window of one provider: the feature vector the behaviour
/// model works on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderWindow {
    /// Provider the window describes.
    pub provider: ProviderId,
    /// Window sequence number (0 is the first collected window).
    pub window: u64,
    /// Chunk operations (reads + writes) served during the window.
    pub ops: f64,
    /// Bytes stored at the end of the window, in MiB.
    pub stored_mib: f64,
    /// Requests rejected during the window (a failed or failing provider
    /// rejects everything sent to it).
    pub rejected: f64,
}

impl ProviderWindow {
    /// The feature vector used for clustering: operations served, rejection
    /// count and stored volume.
    #[must_use]
    pub fn features(&self) -> [f64; 3] {
        [self.ops, self.rejected, self.stored_mib]
    }
}

/// Collects periodic snapshots of provider statistics and converts them into
/// per-window deltas.
pub struct MonitoringCollector {
    providers: Vec<Arc<DataProvider>>,
    last: Mutex<HashMap<ProviderId, ProviderStats>>,
    window: Mutex<u64>,
    history: Mutex<Vec<ProviderWindow>>,
}

impl MonitoringCollector {
    /// Creates a collector over the given providers.
    pub fn new(providers: Vec<Arc<DataProvider>>) -> Self {
        MonitoringCollector {
            providers,
            last: Mutex::new(HashMap::new()),
            window: Mutex::new(0),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Takes one monitoring sample: computes the delta of every provider's
    /// counters since the previous sample and appends one window per
    /// provider to the history. Returns the new windows.
    pub fn sample(&self) -> Vec<ProviderWindow> {
        let mut last = self.last.lock();
        let mut window = self.window.lock();
        let mut produced = Vec::with_capacity(self.providers.len());
        for provider in &self.providers {
            let id = provider.id();
            let now = provider.stats();
            let prev = last.get(&id).copied().unwrap_or_default();
            let window_stats = ProviderWindow {
                provider: id,
                window: *window,
                ops: (now.reads + now.writes).saturating_sub(prev.reads + prev.writes) as f64,
                stored_mib: now.bytes as f64 / (1024.0 * 1024.0),
                rejected: now.rejected.saturating_sub(prev.rejected) as f64,
            };
            last.insert(id, now);
            produced.push(window_stats);
        }
        *window += 1;
        self.history.lock().extend(produced.iter().copied());
        produced
    }

    /// Every window collected so far.
    pub fn history(&self) -> Vec<ProviderWindow> {
        self.history.lock().clone()
    }

    /// The most recent window of each provider, if any.
    pub fn latest(&self) -> HashMap<ProviderId, ProviderWindow> {
        let mut latest: HashMap<ProviderId, ProviderWindow> = HashMap::new();
        for w in self.history.lock().iter() {
            latest
                .entry(w.provider)
                .and_modify(|existing| {
                    if w.window > existing.window {
                        *existing = *w;
                    }
                })
                .or_insert(*w);
        }
        latest
    }

    /// Number of sampling rounds performed.
    pub fn windows_collected(&self) -> u64 {
        *self.window.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::{BlobId, ChunkId};
    use bytes::Bytes;

    fn provider(id: u32) -> Arc<DataProvider> {
        Arc::new(DataProvider::in_memory(ProviderId(id)))
    }

    fn chunk(slot: u64) -> ChunkId {
        ChunkId {
            blob: BlobId(1),
            write_tag: 1,
            slot,
        }
    }

    #[test]
    fn windows_report_deltas_not_totals() {
        let p = provider(0);
        let collector = MonitoringCollector::new(vec![Arc::clone(&p)]);
        p.put_chunk(chunk(0), Bytes::from(vec![0u8; 1024]).into())
            .unwrap();
        p.put_chunk(chunk(1), Bytes::from(vec![0u8; 1024]).into())
            .unwrap();
        let w0 = collector.sample();
        assert_eq!(w0[0].ops, 2.0);

        // No traffic in the second window.
        let w1 = collector.sample();
        assert_eq!(w1[0].ops, 0.0);
        assert_eq!(w1[0].window, 1);
        assert_eq!(collector.windows_collected(), 2);
        assert_eq!(collector.history().len(), 2);
    }

    #[test]
    fn rejections_show_up_for_failed_providers() {
        let p = provider(3);
        let collector = MonitoringCollector::new(vec![Arc::clone(&p)]);
        p.set_alive(false);
        let _ = p.put_chunk(chunk(0), Bytes::from_static(b"x").into());
        let _ = p.get_chunk(&chunk(0));
        let w = collector.sample();
        assert_eq!(w[0].rejected, 2.0);
        assert_eq!(w[0].ops, 0.0);
    }

    #[test]
    fn latest_returns_the_newest_window_per_provider() {
        let a = provider(0);
        let b = provider(1);
        let collector = MonitoringCollector::new(vec![Arc::clone(&a), Arc::clone(&b)]);
        collector.sample();
        a.put_chunk(chunk(0), Bytes::from_static(b"abc").into())
            .unwrap();
        collector.sample();
        let latest = collector.latest();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[&ProviderId(0)].window, 1);
        assert_eq!(latest[&ProviderId(0)].ops, 1.0);
        assert_eq!(latest[&ProviderId(1)].ops, 0.0);
    }

    #[test]
    fn features_expose_the_three_dimensions() {
        let w = ProviderWindow {
            provider: ProviderId(0),
            window: 0,
            ops: 10.0,
            stored_mib: 2.5,
            rejected: 1.0,
        };
        assert_eq!(w.features(), [10.0, 1.0, 2.5]);
    }
}
