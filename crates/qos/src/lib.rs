//! Monitoring, behaviour modelling and QoS feedback.
//!
//! Section IV.E of the paper improves BlobSeer's quality of service by
//! combining *global behaviour modelling* (GloBeM, an offline machine-
//! learning analysis of monitoring data) with client-side feedback: the
//! model identifies "dangerous behaviour patterns" of the storage service
//! and the placement layer is steered away from providers exhibiting them.
//!
//! GloBeM itself is proprietary; this crate plays its role with the same
//! inputs and outputs:
//!
//! * [`monitor::MonitoringCollector`] turns raw provider statistics into
//!   per-window feature vectors (throughput, request rate, rejection rate);
//! * [`model::BehaviourModel`] clusters the windows with k-means and labels
//!   the clusters whose centroids show degraded service as *dangerous*;
//! * [`feedback::QosController`] scores each provider from its recent
//!   windows and pushes the scores into the provider manager, whose
//!   QoS-aware placement policy then avoids the flagged providers.

pub mod feedback;
pub mod model;
pub mod monitor;

pub use feedback::QosController;
pub use model::{BehaviourModel, BehaviourState};
pub use monitor::{MonitoringCollector, ProviderWindow};
