//! The QoS feedback loop: from behaviour states to placement decisions.
//!
//! The paper's approach is offline: monitoring data is analysed, dangerous
//! behaviour patterns are identified, and the storage service is adjusted to
//! avoid them. [`QosController`] packages that loop: it periodically samples
//! the monitoring collector, refits (or reuses) the behaviour model, scores
//! every provider by how often its recent windows fall into dangerous
//! states, and pushes the scores into the provider manager so that the
//! QoS-aware placement policy steers new chunks away from flagged providers.

use crate::model::BehaviourModel;
use crate::monitor::{MonitoringCollector, ProviderWindow};
use blobseer_provider::ProviderManager;
use blobseer_types::{ProviderId, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// The feedback controller.
pub struct QosController {
    collector: Arc<MonitoringCollector>,
    manager: Arc<ProviderManager>,
    /// Number of behaviour states the model is fitted with.
    states: usize,
    /// How many recent windows per provider are considered when scoring.
    scoring_horizon: usize,
    model: Option<BehaviourModel>,
}

impl QosController {
    /// Creates a controller that fits models with `states` states and scores
    /// providers over their last `scoring_horizon` windows.
    pub fn new(
        collector: Arc<MonitoringCollector>,
        manager: Arc<ProviderManager>,
        states: usize,
        scoring_horizon: usize,
    ) -> Self {
        QosController {
            collector,
            manager,
            states: states.max(2),
            scoring_horizon: scoring_horizon.max(1),
            model: None,
        }
    }

    /// The currently fitted model, if any.
    pub fn model(&self) -> Option<&BehaviourModel> {
        self.model.as_ref()
    }

    /// Fits (or refits) the behaviour model from the full monitoring history
    /// collected so far. Returns the number of dangerous states found.
    pub fn refit(&mut self) -> usize {
        let history = self.collector.history();
        let model = BehaviourModel::fit(&history, self.states);
        let dangerous = model.dangerous_states();
        self.model = Some(model);
        dangerous
    }

    /// Scores every provider from its recent windows: the fraction of
    /// non-dangerous windows among the last `scoring_horizon` ones. A
    /// provider with no windows keeps the neutral score 1.
    pub fn scores(&self) -> HashMap<ProviderId, f64> {
        let Some(model) = &self.model else {
            return HashMap::new();
        };
        let mut per_provider: HashMap<ProviderId, Vec<&ProviderWindow>> = HashMap::new();
        let history = self.collector.history();
        for window in &history {
            per_provider
                .entry(window.provider)
                .or_default()
                .push(window);
        }
        per_provider
            .into_iter()
            .map(|(provider, mut windows)| {
                windows.sort_by_key(|w| w.window);
                let recent: Vec<&&ProviderWindow> =
                    windows.iter().rev().take(self.scoring_horizon).collect();
                let dangerous = recent.iter().filter(|w| model.is_dangerous(w)).count();
                let score = 1.0 - dangerous as f64 / recent.len().max(1) as f64;
                (provider, score)
            })
            .collect()
    }

    /// One full control step: sample monitoring, refit the model and push
    /// the per-provider scores into the provider manager. Returns the
    /// providers whose score dropped below 0.5 (the "avoid these" set).
    pub fn step(&mut self) -> Result<Vec<ProviderId>> {
        self.collector.sample();
        self.refit();
        let scores = self.scores();
        let mut flagged = Vec::new();
        for (provider, score) in &scores {
            self.manager.set_qos_score(*provider, *score)?;
            if *score < 0.5 {
                flagged.push(*provider);
            }
        }
        flagged.sort();
        Ok(flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_provider::{DataProvider, PlacementRequest};
    use blobseer_types::{BlobId, ChunkId, PlacementPolicy};
    use bytes::Bytes;

    /// Builds a 4-provider deployment where provider 3 rejects everything
    /// (it is failed) while the others serve traffic normally.
    fn deployment() -> (
        Vec<Arc<DataProvider>>,
        Arc<ProviderManager>,
        Arc<MonitoringCollector>,
    ) {
        let providers: Vec<Arc<DataProvider>> = (0..4)
            .map(|i| Arc::new(DataProvider::in_memory(ProviderId(i))))
            .collect();
        let manager = Arc::new(ProviderManager::with_providers(
            PlacementPolicy::QosAware,
            4,
        ));
        let collector = Arc::new(MonitoringCollector::new(providers.clone()));
        (providers, manager, collector)
    }

    fn generate_traffic(providers: &[Arc<DataProvider>], rounds: u64) {
        for round in 0..rounds {
            for (i, p) in providers.iter().enumerate() {
                for j in 0..20u64 {
                    let id = ChunkId {
                        blob: BlobId(round),
                        write_tag: i as u64,
                        slot: j,
                    };
                    // The failed provider rejects these, producing the
                    // "dangerous" monitoring signature.
                    let _ = p.put_chunk(id, Bytes::from(vec![0u8; 256]).into());
                }
            }
        }
    }

    #[test]
    fn controller_flags_the_misbehaving_provider() {
        let (providers, manager, collector) = deployment();
        providers[3].set_alive(false);
        let mut controller = QosController::new(Arc::clone(&collector), Arc::clone(&manager), 3, 4);

        // A few monitoring rounds with traffic in between.
        for _ in 0..6 {
            generate_traffic(&providers, 1);
            collector.sample();
        }
        let flagged = controller.step().unwrap();
        assert_eq!(flagged, vec![ProviderId(3)]);

        // The provider manager received the scores: the QoS-aware policy now
        // avoids provider 3 entirely.
        let placement = manager
            .allocate(PlacementRequest {
                chunk_count: 12,
                replication: 1,
            })
            .unwrap();
        assert!(placement.iter().all(|r| r[0] != ProviderId(3)));
        let bad = manager.status(ProviderId(3)).unwrap().qos_score;
        let good = manager.status(ProviderId(0)).unwrap().qos_score;
        assert!(
            bad < 0.5,
            "failed provider must fall below the avoidance threshold ({bad})"
        );
        assert!(good > 0.5, "healthy provider must stay usable ({good})");
        assert!(good > bad);
    }

    #[test]
    fn healthy_deployment_flags_nobody() {
        let (providers, manager, collector) = deployment();
        let mut controller = QosController::new(Arc::clone(&collector), Arc::clone(&manager), 3, 4);
        for _ in 0..5 {
            generate_traffic(&providers, 1);
            collector.sample();
        }
        let flagged = controller.step().unwrap();
        assert!(
            flagged.is_empty(),
            "no provider misbehaves, none should be flagged"
        );
    }

    #[test]
    fn scores_are_empty_before_any_model_is_fitted() {
        let (_providers, manager, collector) = deployment();
        let controller = QosController::new(collector, manager, 3, 4);
        assert!(controller.scores().is_empty());
        assert!(controller.model().is_none());
    }

    #[test]
    fn recovery_raises_the_score_again() {
        let (providers, manager, collector) = deployment();
        providers[3].set_alive(false);
        let mut controller = QosController::new(Arc::clone(&collector), Arc::clone(&manager), 3, 3);
        for _ in 0..4 {
            generate_traffic(&providers, 1);
            collector.sample();
        }
        controller.step().unwrap();
        assert!(manager.status(ProviderId(3)).unwrap().qos_score < 0.5);

        // Provider 3 recovers and serves traffic again; after enough healthy
        // windows its score climbs back above the avoidance threshold.
        providers[3].set_alive(true);
        for _ in 0..8 {
            generate_traffic(&providers, 1);
            collector.sample();
        }
        controller.step().unwrap();
        assert!(
            manager.status(ProviderId(3)).unwrap().qos_score > 0.5,
            "recovered provider must be usable again"
        );
    }
}
