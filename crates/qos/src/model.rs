//! Behaviour modelling: clustering monitoring windows into a small set of
//! global behaviour states and flagging the dangerous ones.
//!
//! GloBeM (the technique the paper uses) builds a state model of the whole
//! grid from monitoring data. The reproduction uses a deliberately simple
//! but faithful stand-in: k-means over per-window feature vectors, followed
//! by a rule that labels states *dangerous* when their centroid shows many
//! rejected requests or unusually little served traffic — the same
//! "dangerous behaviour patterns" the paper's feedback loop avoids.

use crate::monitor::ProviderWindow;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One behaviour state discovered by the model.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviourState {
    /// State index (cluster id).
    pub id: usize,
    /// Cluster centroid in feature space (`[ops, rejected, stored_mib]`).
    pub centroid: [f64; 3],
    /// Number of windows assigned to the state.
    pub population: usize,
    /// Whether the state is considered dangerous for quality of service.
    pub dangerous: bool,
}

/// A fitted behaviour model.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviourModel {
    states: Vec<BehaviourState>,
}

impl BehaviourModel {
    /// Fits a model with `k` states to the given monitoring windows using
    /// k-means (deterministic, seeded initialisation).
    ///
    /// Returns a trivial single-state model when fewer than `k` windows are
    /// available.
    #[must_use]
    pub fn fit(windows: &[ProviderWindow], k: usize) -> Self {
        let k = k.max(1);
        let points: Vec<[f64; 3]> = windows.iter().map(ProviderWindow::features).collect();
        if points.len() <= k {
            let centroid = mean_point(&points);
            return BehaviourModel {
                states: vec![BehaviourState {
                    id: 0,
                    centroid,
                    population: points.len(),
                    dangerous: false,
                }],
            };
        }

        // k-means with deterministic seeding so experiments are reproducible.
        let mut rng = StdRng::seed_from_u64(0x0910_ba11);
        let mut centroids: Vec<[f64; 3]> = points.choose_multiple(&mut rng, k).copied().collect();
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..50 {
            let mut changed = false;
            for (i, point) in points.iter().enumerate() {
                let nearest = nearest_centroid(point, &centroids);
                if assignment[i] != nearest {
                    assignment[i] = nearest;
                    changed = true;
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<[f64; 3]> = points
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == c)
                    .map(|(p, _)| *p)
                    .collect();
                if !members.is_empty() {
                    *centroid = mean_point(&members);
                }
            }
            if !changed {
                break;
            }
        }

        // Label dangerous states: a state is dangerous when its centroid
        // rejects requests, or when it serves markedly less traffic than the
        // global average while other states are active.
        let global_ops = mean_point(&points)[0];
        let states = centroids
            .iter()
            .enumerate()
            .map(|(id, centroid)| {
                let population = assignment.iter().filter(|&&a| a == id).count();
                let dangerous =
                    centroid[1] > 0.5 || (global_ops > 0.0 && centroid[0] < 0.25 * global_ops);
                BehaviourState {
                    id,
                    centroid: *centroid,
                    population,
                    dangerous,
                }
            })
            .collect();
        BehaviourModel { states }
    }

    /// The discovered states.
    #[must_use]
    pub fn states(&self) -> &[BehaviourState] {
        &self.states
    }

    /// The state a window belongs to.
    #[must_use]
    pub fn classify(&self, window: &ProviderWindow) -> &BehaviourState {
        let centroids: Vec<[f64; 3]> = self.states.iter().map(|s| s.centroid).collect();
        &self.states[nearest_centroid(&window.features(), &centroids)]
    }

    /// Whether a window falls in a dangerous state.
    #[must_use]
    pub fn is_dangerous(&self, window: &ProviderWindow) -> bool {
        self.classify(window).dangerous
    }

    /// Number of dangerous states in the model.
    #[must_use]
    pub fn dangerous_states(&self) -> usize {
        self.states.iter().filter(|s| s.dangerous).count()
    }
}

fn distance2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest_centroid(point: &[f64; 3], centroids: &[[f64; 3]]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            distance2(point, a)
                .partial_cmp(&distance2(point, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn mean_point(points: &[[f64; 3]]) -> [f64; 3] {
    if points.is_empty() {
        return [0.0; 3];
    }
    let mut sum = [0.0; 3];
    for p in points {
        for (s, v) in sum.iter_mut().zip(p) {
            *s += v;
        }
    }
    sum.map(|s| s / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::ProviderId;

    fn window(provider: u32, seq: u64, ops: f64, rejected: f64) -> ProviderWindow {
        ProviderWindow {
            provider: ProviderId(provider),
            window: seq,
            ops,
            rejected,
            stored_mib: 10.0,
        }
    }

    fn synthetic_history() -> Vec<ProviderWindow> {
        let mut windows = Vec::new();
        // Healthy windows: ~100 ops, no rejections.
        for i in 0..40 {
            windows.push(window(i % 4, i as u64, 95.0 + (i % 10) as f64, 0.0));
        }
        // Degraded windows: almost no served traffic, many rejections.
        for i in 0..10 {
            windows.push(window(3, 100 + i as u64, 2.0, 20.0));
        }
        windows
    }

    #[test]
    fn model_separates_healthy_from_degraded_states() {
        let history = synthetic_history();
        let model = BehaviourModel::fit(&history, 3);
        assert_eq!(model.states().len(), 3);
        assert!(
            model.dangerous_states() >= 1,
            "the degraded cluster must be flagged"
        );

        // A clearly healthy window classifies into a non-dangerous state, a
        // clearly degraded one into a dangerous state.
        assert!(!model.is_dangerous(&window(0, 999, 100.0, 0.0)));
        assert!(model.is_dangerous(&window(0, 999, 1.0, 25.0)));
    }

    #[test]
    fn small_histories_fall_back_to_a_single_state() {
        let tiny = vec![window(0, 0, 10.0, 0.0)];
        let model = BehaviourModel::fit(&tiny, 4);
        assert_eq!(model.states().len(), 1);
        assert!(!model.states()[0].dangerous);
        assert_eq!(model.states()[0].population, 1);
    }

    #[test]
    fn fit_is_deterministic() {
        let history = synthetic_history();
        let a = BehaviourModel::fit(&history, 3);
        let b = BehaviourModel::fit(&history, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn populations_cover_every_window() {
        let history = synthetic_history();
        let model = BehaviourModel::fit(&history, 3);
        let total: usize = model.states().iter().map(|s| s.population).sum();
        assert_eq!(total, history.len());
    }
}
