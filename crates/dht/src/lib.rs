//! A consistent-hashing DHT (Distributed Hash Table) used by the BlobSeer
//! metadata providers.
//!
//! The paper stores metadata tree nodes "in a fine-grain manner among the
//! metadata providers, which form a DHT". This crate provides that
//! substrate:
//!
//! * [`ring::HashRing`] — a consistent-hashing ring with virtual nodes, so
//!   that keys spread evenly and membership changes move little data;
//! * [`node::DhtNode`] — one metadata provider: an in-memory key/value store
//!   with per-node statistics and a failure switch;
//! * [`Dht`] — the client-side view tying the two together, with replicated
//!   `put`/`get`, membership management and a `route` query used by the
//!   cluster simulator to attribute costs to the right node.
//!
//! Values are write-once (metadata in BlobSeer is immutable): `put` of an
//! existing key is accepted only if idempotent, which is exactly the
//! behaviour concurrent writers rely on.

pub mod node;
pub mod ring;

use blobseer_types::{BlobError, MetaNodeId, Result};
use node::DhtNode;
use parking_lot::RwLock;
use ring::HashRing;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A replicated, consistent-hashed key/value store spread over a set of
/// metadata providers.
///
/// The table is generic over the key and value types; BlobSeer-RS
/// instantiates it with segment-tree node keys and node bodies, keeping the
/// hot path free of serialisation.
///
/// Besides per-key `put`/`get`, the table offers [`Dht::put_batch`] and
/// [`Dht::get_batch`]: the keys of a batch are grouped by owning node so
/// that one *round-trip* per owning node moves the whole group, instead of
/// one round-trip per key. The accumulated round-trip count is exposed via
/// [`Dht::round_trips`] — the unit the paper's metadata-path costs are
/// measured in.
pub struct Dht<K, V> {
    ring: RwLock<HashRing>,
    nodes: RwLock<HashMap<MetaNodeId, Arc<DhtNode<K, V>>>>,
    replication: usize,
    virtual_nodes: usize,
    /// Logical request/response exchanges with individual nodes: one per
    /// node contacted by a `get`/`put`, one per owning node per batch.
    round_trips: AtomicU64,
}

impl<K, V> Dht<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone + PartialEq,
{
    /// Creates a DHT over `node_count` metadata providers with ids `0..n`,
    /// `virtual_nodes` ring positions per provider and the given replication
    /// factor.
    pub fn new(node_count: usize, virtual_nodes: usize, replication: usize) -> Result<Self> {
        if node_count == 0 {
            return Err(BlobError::InvalidConfig(
                "a DHT needs at least one node".into(),
            ));
        }
        if replication == 0 || replication > node_count {
            return Err(BlobError::InvalidConfig(format!(
                "DHT replication must be in 1..={node_count}"
            )));
        }
        if virtual_nodes == 0 {
            return Err(BlobError::InvalidConfig(
                "a DHT needs at least one virtual node per provider".into(),
            ));
        }
        let ids: Vec<MetaNodeId> = (0..node_count as u32).map(MetaNodeId).collect();
        let ring = HashRing::new(&ids, virtual_nodes);
        let nodes = ids
            .iter()
            .map(|&id| (id, Arc::new(DhtNode::new(id))))
            .collect();
        Ok(Dht {
            ring: RwLock::new(ring),
            nodes: RwLock::new(nodes),
            replication,
            virtual_nodes,
            round_trips: AtomicU64::new(0),
        })
    }

    /// Number of metadata providers currently part of the table.
    pub fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// The replication factor used for every key.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Identifiers of all member nodes, in id order.
    pub fn node_ids(&self) -> Vec<MetaNodeId> {
        let mut ids: Vec<MetaNodeId> = self.nodes.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// The nodes responsible for `key`, primary first.
    ///
    /// This is exposed so that the simulator can charge metadata traffic to
    /// the correct node without duplicating the routing logic.
    pub fn route(&self, key: &K) -> Vec<MetaNodeId> {
        let hash = ring::hash_key(key);
        self.ring.read().successors(hash, self.replication)
    }

    /// Number of logical node round-trips issued since the table was
    /// created: one per node contacted by a `put`/`get`, one per owning node
    /// per batch operation. This is the unit in which the paper measures the
    /// metadata path — a batched read of a whole tree level costs at most
    /// one round-trip per metadata provider, however many nodes the level
    /// has.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Stores `value` under `key` on every replica responsible for it.
    ///
    /// Metadata in BlobSeer is immutable: storing a *different* value under
    /// an existing key is rejected; storing the same value again is a no-op
    /// (concurrent writers may legitimately race to persist identical tree
    /// nodes).
    pub fn put(&self, key: K, value: V) -> Result<()> {
        self.put_shared(key, Arc::new(value))
    }

    fn put_shared(&self, key: K, value: Arc<V>) -> Result<()> {
        let replicas = self.route(&key);
        let nodes = self.nodes.read();
        let mut stored_on = 0usize;
        for id in &replicas {
            let node = nodes.get(id).ok_or(BlobError::Internal(format!(
                "ring references unknown node {id}"
            )))?;
            if !node.is_alive() {
                continue;
            }
            self.round_trips.fetch_add(1, Ordering::Relaxed);
            node.put_shared(key.clone(), Arc::clone(&value))?;
            stored_on += 1;
        }
        if stored_on == 0 {
            return Err(BlobError::InsufficientProviders {
                needed: 1,
                available: 0,
            });
        }
        Ok(())
    }

    /// Stores a whole batch of entries, grouping them by owning node: one
    /// round-trip per owning node per replica rank (`replication × nodes`
    /// in the worst case; with the common replication factor of 1, exactly
    /// one per owning node), however many entries the batch has. The value
    /// of each entry is allocated once and shared across its replicas.
    ///
    /// Write-once semantics are per entry, exactly as for [`Dht::put`] —
    /// replicas are visited in routing order (all primaries first), so a
    /// conflicting entry fails at its primary before its value spreads to
    /// any other replica, and every *other* entry of the batch still
    /// reaches its full replica set; the first error is reported after the
    /// batch completes. Every entry must reach at least one live replica.
    pub fn put_batch(&self, entries: Vec<(K, V)>) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let entries: Vec<(K, Arc<V>)> =
            entries.into_iter().map(|(k, v)| (k, Arc::new(v))).collect();
        let routes: Vec<Vec<MetaNodeId>> = entries.iter().map(|(key, _)| self.route(key)).collect();
        let nodes = self.nodes.read();
        let mut stored_on = vec![0usize; entries.len()];
        let mut failed = vec![false; entries.len()];
        let mut first_error = None;
        // One wave per replica rank, each wave grouped by owning node: an
        // entry rejected as conflicting at its primary (the same replica a
        // per-key put would hit first) is never pushed onto later ranks,
        // which would permanently diverge the write-once replicas.
        for rank in 0..self.replication {
            let mut groups: HashMap<MetaNodeId, Vec<usize>> = HashMap::new();
            for (index, route) in routes.iter().enumerate() {
                if failed[index] {
                    continue;
                }
                if let Some(id) = route.get(rank) {
                    groups.entry(*id).or_default().push(index);
                }
            }
            for (id, indices) in groups {
                let node = nodes.get(&id).ok_or(BlobError::Internal(format!(
                    "ring references unknown node {id}"
                )))?;
                if !node.is_alive() {
                    continue;
                }
                self.round_trips.fetch_add(1, Ordering::Relaxed);
                for index in indices {
                    let (key, value) = &entries[index];
                    match node.put_shared(key.clone(), Arc::clone(value)) {
                        Ok(()) => stored_on[index] += 1,
                        Err(err) => {
                            failed[index] = true;
                            first_error.get_or_insert(err);
                        }
                    }
                }
            }
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        if stored_on.contains(&0) {
            return Err(BlobError::InsufficientProviders {
                needed: 1,
                available: 0,
            });
        }
        Ok(())
    }

    /// Removes a whole batch of keys from every replica responsible for
    /// them, grouped by owning node: one round-trip per owning node per
    /// replica rank, however many keys the batch holds. Returns the number
    /// of keys that were present on at least one live replica.
    ///
    /// Absent keys and dead replicas are skipped silently — the lifecycle
    /// sweeps issuing these removals are idempotent, and a replica that was
    /// down merely keeps an unreachable (harmless) copy.
    pub fn remove_batch(&self, keys: &[K]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let routes: Vec<Vec<MetaNodeId>> = keys.iter().map(|k| self.route(k)).collect();
        let nodes = self.nodes.read();
        let mut removed = vec![false; keys.len()];
        for rank in 0..self.replication {
            let mut groups: HashMap<MetaNodeId, Vec<usize>> = HashMap::new();
            for (index, route) in routes.iter().enumerate() {
                if let Some(id) = route.get(rank) {
                    groups.entry(*id).or_default().push(index);
                }
            }
            for (id, indices) in groups {
                let Some(node) = nodes.get(&id) else {
                    continue;
                };
                if !node.is_alive() {
                    continue;
                }
                self.round_trips.fetch_add(1, Ordering::Relaxed);
                for index in indices {
                    if node.remove(&keys[index]).is_some() {
                        removed[index] = true;
                    }
                }
            }
        }
        removed.into_iter().filter(|r| *r).count()
    }

    /// Fetches the value stored under `key`, trying replicas in routing
    /// order and skipping failed nodes.
    pub fn get(&self, key: &K) -> Option<V> {
        let replicas = self.route(key);
        let nodes = self.nodes.read();
        for id in &replicas {
            if let Some(node) = nodes.get(id) {
                if !node.is_alive() {
                    continue;
                }
                self.round_trips.fetch_add(1, Ordering::Relaxed);
                if let Some(v) = node.get(key) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Fetches a whole batch of keys, contacting every owning node once per
    /// replica rank: the common case (every key present on its primary)
    /// costs one round-trip per *distinct primary node*, however many keys
    /// the batch has. Keys a node turns out not to hold fall through to the
    /// next replica in routing order, one extra grouped round per rank.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut out: Vec<Option<V>> = keys.iter().map(|_| None).collect();
        if keys.is_empty() {
            return out;
        }
        let routes: Vec<Vec<MetaNodeId>> = keys.iter().map(|k| self.route(k)).collect();
        let nodes = self.nodes.read();
        let mut unresolved: Vec<usize> = (0..keys.len()).collect();
        for rank in 0..self.replication {
            if unresolved.is_empty() {
                break;
            }
            let mut groups: HashMap<MetaNodeId, Vec<usize>> = HashMap::new();
            let mut next_round: Vec<usize> = Vec::new();
            for index in unresolved {
                if let Some(id) = routes[index].get(rank) {
                    match nodes.get(id) {
                        Some(node) if node.is_alive() => {
                            groups.entry(*id).or_default().push(index);
                        }
                        // Dead or unknown replica: retry on the next rank.
                        _ => next_round.push(index),
                    }
                }
            }
            for (id, indices) in groups {
                let node = &nodes[&id];
                self.round_trips.fetch_add(1, Ordering::Relaxed);
                for index in indices {
                    match node.get(&keys[index]) {
                        Some(v) => out[index] = Some(v),
                        None => next_round.push(index),
                    }
                }
            }
            unresolved = next_round;
        }
        out
    }

    /// Returns whether any live replica currently stores `key`.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Marks a node failed: it stops serving reads and writes until
    /// [`Dht::recover_node`] is called.
    pub fn fail_node(&self, id: MetaNodeId) -> Result<()> {
        let nodes = self.nodes.read();
        let node = nodes.get(&id).ok_or(BlobError::Internal(format!(
            "cannot fail unknown DHT node {id}"
        )))?;
        node.set_alive(false);
        Ok(())
    }

    /// Brings a previously failed node back.
    pub fn recover_node(&self, id: MetaNodeId) -> Result<()> {
        let nodes = self.nodes.read();
        let node = nodes.get(&id).ok_or(BlobError::Internal(format!(
            "cannot recover unknown DHT node {id}"
        )))?;
        node.set_alive(true);
        Ok(())
    }

    /// Adds a new (empty) metadata provider and rebalances: every key whose
    /// replica set now includes the new node is copied onto it.
    pub fn join(&self, id: MetaNodeId) -> Result<()> {
        {
            let mut nodes = self.nodes.write();
            if nodes.contains_key(&id) {
                return Err(BlobError::AlreadyExists(format!("DHT node {id}")));
            }
            nodes.insert(id, Arc::new(DhtNode::new(id)));
            self.ring.write().add_node(id, self.virtual_nodes);
        }
        self.rebalance();
        Ok(())
    }

    /// Removes a metadata provider permanently, copying every key it was the
    /// only live holder of onto the new replica set first.
    pub fn leave(&self, id: MetaNodeId) -> Result<()> {
        let departing = {
            let nodes = self.nodes.read();
            nodes.get(&id).cloned().ok_or(BlobError::Internal(format!(
                "cannot remove unknown DHT node {id}"
            )))?
        };
        // Take the node off the ring first so that `route` no longer points
        // at it, then re-insert all of its entries through the normal path.
        {
            let mut nodes = self.nodes.write();
            if nodes.len() == 1 {
                return Err(BlobError::InvalidConfig(
                    "cannot remove the last DHT node".into(),
                ));
            }
            self.ring.write().remove_node(id);
            nodes.remove(&id);
        }
        for (k, v) in departing.drain() {
            // Ignore immutability conflicts: replicas already hold the value.
            let _ = self.put_shared(k, v);
        }
        Ok(())
    }

    /// Copies every entry onto the nodes currently responsible for it.
    /// Called after membership changes; also usable as an anti-entropy pass.
    pub fn rebalance(&self) {
        let nodes: Vec<Arc<DhtNode<K, V>>> = self.nodes.read().values().cloned().collect();
        for node in nodes {
            for (k, v) in node.snapshot() {
                let _ = self.put_shared(k, v);
            }
        }
    }

    /// Per-node entry counts, useful to verify load balance.
    pub fn load_distribution(&self) -> HashMap<MetaNodeId, usize> {
        self.nodes
            .read()
            .iter()
            .map(|(id, n)| (*id, n.len()))
            .collect()
    }

    /// Per-node operation statistics (puts, gets) accumulated since start.
    pub fn stats(&self) -> HashMap<MetaNodeId, node::NodeStats> {
        self.nodes
            .read()
            .iter()
            .map(|(id, n)| (*id, n.stats()))
            .collect()
    }

    /// Total number of entries stored across all nodes (replicas counted
    /// once per node that holds them).
    pub fn total_entries(&self) -> usize {
        self.nodes.read().values().map(|n| n.len()).sum()
    }

    /// Every distinct entry in the table (replicas deduplicated, dead nodes
    /// included — their data still exists, they are just not serving).
    /// Metadata checkpointing uses this to write a compacted image of the
    /// live node set; it walks every node, so it is not a hot-path call.
    pub fn export_entries(&self) -> Vec<(K, V)> {
        let mut seen: HashMap<K, V> = HashMap::new();
        for node in self.nodes.read().values() {
            for (key, value) in node.snapshot() {
                seen.entry(key).or_insert_with(|| (*value).clone());
            }
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dht(nodes: usize, replication: usize) -> Dht<String, u64> {
        Dht::new(nodes, 32, replication).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let d = dht(4, 1);
        d.put("alpha".to_string(), 1).unwrap();
        d.put("beta".to_string(), 2).unwrap();
        assert_eq!(d.get(&"alpha".to_string()), Some(1));
        assert_eq!(d.get(&"beta".to_string()), Some(2));
        assert_eq!(d.get(&"gamma".to_string()), None);
    }

    #[test]
    fn batch_put_get_roundtrip() {
        let d = dht(6, 2);
        let entries: Vec<(String, u64)> = (0..200u64).map(|i| (format!("key-{i}"), i)).collect();
        d.put_batch(entries).unwrap();
        let keys: Vec<String> = (0..200u64).map(|i| format!("key-{i}")).collect();
        let values = d.get_batch(&keys);
        assert_eq!(values.len(), 200);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, Some(i as u64), "key-{i}");
        }
        // Unknown keys come back as None, in position.
        let mixed = d.get_batch(&["key-3".to_string(), "ghost".to_string()]);
        assert_eq!(mixed, vec![Some(3), None]);
        // Empty batches are free.
        let before = d.round_trips();
        d.put_batch(Vec::new()).unwrap();
        assert!(d.get_batch(&[]).is_empty());
        assert_eq!(d.round_trips(), before);
    }

    #[test]
    fn batches_cost_one_round_trip_per_owning_node() {
        let d = dht(4, 1);
        let entries: Vec<(String, u64)> = (0..500u64).map(|i| (format!("key-{i}"), i)).collect();
        let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
        let before = d.round_trips();
        d.put_batch(entries).unwrap();
        let put_trips = d.round_trips() - before;
        assert!(
            put_trips <= 4,
            "a batched put contacts each owning node once, got {put_trips} trips"
        );
        let before = d.round_trips();
        let values = d.get_batch(&keys);
        let get_trips = d.round_trips() - before;
        assert!(values.iter().all(Option::is_some));
        assert!(
            get_trips <= 4,
            "a batched get contacts each primary once, got {get_trips} trips"
        );
        // Per-key access costs one trip per key instead.
        let before = d.round_trips();
        for key in keys.iter().take(50) {
            assert!(d.get(key).is_some());
        }
        assert!(d.round_trips() - before >= 50);
    }

    #[test]
    fn batch_get_falls_back_to_replicas_of_failed_primaries() {
        let d = dht(5, 3);
        let entries: Vec<(String, u64)> = (0..300u64).map(|i| (format!("key-{i}"), i)).collect();
        let keys: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
        d.put_batch(entries).unwrap();
        d.fail_node(MetaNodeId(1)).unwrap();
        d.fail_node(MetaNodeId(4)).unwrap();
        let values = d.get_batch(&keys);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, Some(i as u64), "key-{i} lost behind failed primary");
        }
    }

    #[test]
    fn batch_put_rejects_conflicts_and_all_dead_nodes() {
        let d = dht(3, 1);
        d.put("k".to_string(), 1).unwrap();
        // Conflicting value inside a batch is rejected...
        assert!(d
            .put_batch(vec![("k".to_string(), 2), ("fresh".to_string(), 9)])
            .is_err());
        // ...but the other entries of the batch still store fully.
        assert_eq!(d.get(&"fresh".to_string()), Some(9));
        // Idempotent batch re-put is fine.
        d.put_batch(vec![("k".to_string(), 1)]).unwrap();
        for i in 0..3u32 {
            d.fail_node(MetaNodeId(i)).unwrap();
        }
        assert!(matches!(
            d.put_batch(vec![("x".to_string(), 1)]),
            Err(BlobError::InsufficientProviders { .. })
        ));
    }

    #[test]
    fn immutable_puts_reject_conflicting_values() {
        let d = dht(4, 1);
        d.put("k".to_string(), 1).unwrap();
        // Idempotent re-put is fine.
        d.put("k".to_string(), 1).unwrap();
        // Conflicting value is rejected.
        assert!(d.put("k".to_string(), 2).is_err());
        assert_eq!(d.get(&"k".to_string()), Some(1));
    }

    #[test]
    fn keys_spread_over_nodes() {
        let d = dht(8, 1);
        for i in 0..2_000u64 {
            d.put(format!("key-{i}"), i).unwrap();
        }
        let dist = d.load_distribution();
        assert_eq!(dist.len(), 8);
        let total: usize = dist.values().sum();
        assert_eq!(total, 2_000);
        // Every node should hold a non-trivial share (load balance).
        for (&id, &count) in &dist {
            assert!(count > 50, "node {id} only holds {count} of 2000 keys");
        }
    }

    #[test]
    fn replicated_get_survives_primary_failure() {
        let d = dht(5, 3);
        for i in 0..200u64 {
            d.put(format!("key-{i}"), i).unwrap();
        }
        // Fail two arbitrary nodes: with replication 3 every key still has a
        // live replica.
        d.fail_node(MetaNodeId(0)).unwrap();
        d.fail_node(MetaNodeId(3)).unwrap();
        for i in 0..200u64 {
            assert_eq!(d.get(&format!("key-{i}")), Some(i), "key-{i} lost");
        }
        d.recover_node(MetaNodeId(0)).unwrap();
        d.recover_node(MetaNodeId(3)).unwrap();
    }

    #[test]
    fn unreplicated_put_fails_when_all_replicas_down() {
        let d = dht(1, 1);
        d.fail_node(MetaNodeId(0)).unwrap();
        assert!(matches!(
            d.put("k".to_string(), 1),
            Err(BlobError::InsufficientProviders { .. })
        ));
    }

    #[test]
    fn join_rebalances_and_keeps_all_keys_readable() {
        let d = dht(3, 2);
        for i in 0..500u64 {
            d.put(format!("key-{i}"), i).unwrap();
        }
        d.join(MetaNodeId(100)).unwrap();
        assert_eq!(d.node_count(), 4);
        for i in 0..500u64 {
            assert_eq!(d.get(&format!("key-{i}")), Some(i));
        }
        // The new node picked up a share of the keys.
        let dist = d.load_distribution();
        assert!(dist[&MetaNodeId(100)] > 0);
    }

    #[test]
    fn leave_preserves_all_keys() {
        let d = dht(4, 2);
        for i in 0..500u64 {
            d.put(format!("key-{i}"), i).unwrap();
        }
        d.leave(MetaNodeId(2)).unwrap();
        assert_eq!(d.node_count(), 3);
        for i in 0..500u64 {
            assert_eq!(
                d.get(&format!("key-{i}")),
                Some(i),
                "key-{i} lost after leave"
            );
        }
    }

    #[test]
    fn join_of_existing_node_is_rejected() {
        let d = dht(2, 1);
        assert!(d.join(MetaNodeId(0)).is_err());
    }

    #[test]
    fn route_is_deterministic_and_distinct() {
        let d = dht(6, 3);
        let a = d.route(&"some key".to_string());
        let b = d.route(&"some key".to_string());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "replicas must be distinct nodes");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(Dht::<String, u64>::new(0, 8, 1).is_err());
        assert!(Dht::<String, u64>::new(4, 0, 1).is_err());
        assert!(Dht::<String, u64>::new(4, 8, 0).is_err());
        assert!(Dht::<String, u64>::new(4, 8, 5).is_err());
    }

    #[test]
    fn rebalance_restores_replication_after_an_outage() {
        let d = dht(4, 2);
        // Write while node 0 is down: every key routed to it is stored on
        // fewer live replicas than configured.
        d.fail_node(MetaNodeId(0)).unwrap();
        for i in 0..300u64 {
            d.put(format!("key-{i}"), i).unwrap();
        }
        d.recover_node(MetaNodeId(0)).unwrap();
        assert_eq!(
            d.load_distribution()[&MetaNodeId(0)],
            0,
            "the recovered node comes back empty"
        );

        // Anti-entropy pass: the recovered node picks its share back up...
        d.rebalance();
        assert!(d.load_distribution()[&MetaNodeId(0)] > 0);
        // ...so keys survive losing the replica that covered the outage.
        for other in 1..4u32 {
            d.fail_node(MetaNodeId(other)).unwrap();
        }
        let served_by_zero = (0..300u64)
            .filter(|i| d.get(&format!("key-{i}")) == Some(*i))
            .count();
        assert!(
            served_by_zero > 0,
            "node 0 must serve its share alone after rebalance"
        );
        for other in 1..4u32 {
            d.recover_node(MetaNodeId(other)).unwrap();
        }
        for i in 0..300u64 {
            assert_eq!(d.get(&format!("key-{i}")), Some(i));
        }
    }

    #[test]
    fn join_leave_churn_preserves_every_key() {
        let d = dht(3, 2);
        for i in 0..400u64 {
            d.put(format!("key-{i}"), i).unwrap();
        }
        // Membership churn: two joins, two leaves (one of them a founding
        // member), with full availability throughout.
        d.join(MetaNodeId(50)).unwrap();
        d.join(MetaNodeId(51)).unwrap();
        d.leave(MetaNodeId(1)).unwrap();
        d.leave(MetaNodeId(50)).unwrap();
        assert_eq!(d.node_count(), 3);
        for i in 0..400u64 {
            assert_eq!(d.get(&format!("key-{i}")), Some(i), "key-{i} lost in churn");
        }
        // New writes land on the post-churn membership.
        d.put("fresh".to_string(), 9).unwrap();
        assert_eq!(d.get(&"fresh".to_string()), Some(9));
    }

    #[test]
    fn leave_of_unknown_or_last_node_is_rejected() {
        let d = dht(1, 1);
        assert!(d.leave(MetaNodeId(7)).is_err());
        d.put("k".to_string(), 1).unwrap();
        assert!(
            d.leave(MetaNodeId(0)).is_err(),
            "cannot remove the last node"
        );
        // The rejected leave must not have torn the node down.
        assert_eq!(d.node_count(), 1);
        assert_eq!(d.get(&"k".to_string()), Some(1));
    }

    #[test]
    fn stats_count_operations() {
        let d = dht(2, 1);
        d.put("a".to_string(), 1).unwrap();
        d.put("b".to_string(), 2).unwrap();
        let _ = d.get(&"a".to_string());
        let stats = d.stats();
        let puts: u64 = stats.values().map(|s| s.puts).sum();
        let gets: u64 = stats.values().map(|s| s.gets).sum();
        assert_eq!(puts, 2);
        assert!(gets >= 1);
    }
}
