//! A single metadata provider: an in-memory, write-once key/value store with
//! operation statistics and a failure switch used by the fault-injection
//! experiments.

use blobseer_types::{BlobError, MetaNodeId, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Operation counters of one metadata provider.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Number of successful `put` operations served.
    pub puts: u64,
    /// Number of `get` operations served (hits and misses).
    pub gets: u64,
    /// Number of `get` operations that found the key.
    pub hits: u64,
}

/// One node of the metadata DHT.
///
/// Values are held behind [`Arc`] so that the replicas of one key across
/// several nodes share a single allocation: a replicated put clones the
/// `Arc`, never the value.
pub struct DhtNode<K, V> {
    id: MetaNodeId,
    entries: RwLock<HashMap<K, Arc<V>>>,
    alive: AtomicBool,
    puts: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
}

impl<K, V> DhtNode<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone + PartialEq,
{
    /// Creates an empty, live node.
    pub fn new(id: MetaNodeId) -> Self {
        DhtNode {
            id,
            entries: RwLock::new(HashMap::new()),
            alive: AtomicBool::new(true),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> MetaNodeId {
        self.id
    }

    /// Whether the node is currently serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Flips the node's availability (used by failure injection).
    pub fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::Release);
    }

    /// Stores `value` under `key`.
    ///
    /// Entries are write-once: writing a different value under an existing
    /// key is an error, writing an identical value again succeeds silently.
    pub fn put(&self, key: K, value: V) -> Result<()> {
        self.put_shared(key, Arc::new(value))
    }

    /// Stores an already-shared value under `key` (used by replicated puts:
    /// every replica holds the same `Arc`, so the value is allocated once no
    /// matter the replication factor).
    pub fn put_shared(&self, key: K, value: Arc<V>) -> Result<()> {
        let mut entries = self.entries.write();
        match entries.get(&key) {
            Some(existing) if **existing != *value => Err(BlobError::Internal(format!(
                "conflicting write-once put on metadata node {}",
                self.id
            ))),
            Some(_) => Ok(()),
            None => {
                entries.insert(key, value);
                self.puts.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Fetches the value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_shared(key).map(|v| (*v).clone())
    }

    /// Fetches the shared handle stored under `key`, if any (no value
    /// clone).
    pub fn get_shared(&self, key: &K) -> Option<Arc<V>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let found = self.entries.read().get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the node stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// A copy of every entry (used by rebalancing). The values are shared
    /// handles, so the copy is cheap regardless of the value sizes.
    pub fn snapshot(&self) -> Vec<(K, Arc<V>)> {
        self.entries
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Removes the entry stored under `key`, returning its shared handle if
    /// it was present. Removing an absent key is a harmless no-op (garbage
    /// sweeps are idempotent and may race each other).
    pub fn remove(&self, key: &K) -> Option<Arc<V>> {
        self.entries.write().remove(key)
    }

    /// Removes and returns every entry (used when the node leaves the ring).
    pub fn drain(&self) -> Vec<(K, Arc<V>)> {
        self.entries.write().drain().collect()
    }

    /// Operation counters accumulated since the node was created.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_stats() {
        let n: DhtNode<&str, u32> = DhtNode::new(MetaNodeId(1));
        assert!(n.is_empty());
        n.put("a", 1).unwrap();
        n.put("b", 2).unwrap();
        assert_eq!(n.get(&"a"), Some(1));
        assert_eq!(n.get(&"missing"), None);
        assert_eq!(n.len(), 2);
        let stats = n.stats();
        assert_eq!(stats.puts, 2);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn write_once_semantics() {
        let n: DhtNode<&str, u32> = DhtNode::new(MetaNodeId(1));
        n.put("a", 1).unwrap();
        n.put("a", 1).unwrap();
        assert!(n.put("a", 2).is_err());
        assert_eq!(n.get(&"a"), Some(1));
        // The idempotent re-put is not counted as a new put.
        assert_eq!(n.stats().puts, 1);
    }

    #[test]
    fn alive_flag_toggles() {
        let n: DhtNode<&str, u32> = DhtNode::new(MetaNodeId(3));
        assert!(n.is_alive());
        n.set_alive(false);
        assert!(!n.is_alive());
        n.set_alive(true);
        assert!(n.is_alive());
    }

    #[test]
    fn snapshot_and_drain() {
        let n: DhtNode<String, u32> = DhtNode::new(MetaNodeId(0));
        n.put("x".into(), 10).unwrap();
        n.put("y".into(), 20).unwrap();
        let mut snap: Vec<(String, u32)> = n.snapshot().into_iter().map(|(k, v)| (k, *v)).collect();
        snap.sort();
        assert_eq!(snap, vec![("x".into(), 10), ("y".into(), 20)]);
        assert_eq!(n.len(), 2);
        let drained = n.drain();
        assert_eq!(drained.len(), 2);
        assert!(n.is_empty());
    }

    #[test]
    fn shared_puts_store_one_allocation_across_nodes() {
        let a: DhtNode<&str, String> = DhtNode::new(MetaNodeId(0));
        let b: DhtNode<&str, String> = DhtNode::new(MetaNodeId(1));
        let v = Arc::new("payload".to_string());
        a.put_shared("k", Arc::clone(&v)).unwrap();
        b.put_shared("k", Arc::clone(&v)).unwrap();
        assert!(Arc::ptr_eq(
            &a.get_shared(&"k").unwrap(),
            &b.get_shared(&"k").unwrap()
        ));
        // Conflicting shared puts are still rejected.
        assert!(a.put_shared("k", Arc::new("other".to_string())).is_err());
    }

    #[test]
    fn concurrent_puts_of_distinct_keys() {
        use std::sync::Arc;
        let n: Arc<DhtNode<u64, u64>> = Arc::new(DhtNode::new(MetaNodeId(9)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let n = Arc::clone(&n);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    n.put(t * 1_000 + i, i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.len(), 4_000);
        assert_eq!(n.stats().puts, 4_000);
    }
}
