//! Consistent-hashing ring with virtual nodes.
//!
//! Every metadata provider owns `virtual_nodes` positions on a 64-bit ring;
//! a key is served by the first `replication` *distinct* providers found
//! walking clockwise from the key's hash. Virtual nodes smooth out the load
//! imbalance that plain consistent hashing suffers from with few nodes.

use blobseer_types::MetaNodeId;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Hashes an arbitrary key to its 64-bit ring position.
///
/// Uses FNV-1a over the key's `Hash` output: deterministic across processes
/// and platforms (unlike `DefaultHasher`, which is randomly seeded), which
/// matters because the simulator and the real cluster must route keys to the
/// same metadata providers.
pub fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// A minimal FNV-1a 64-bit hasher (no external dependency needed).
pub struct FnvHasher {
    state: u64,
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The consistent-hashing ring: a sorted map from ring position to the
/// provider owning that virtual node.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    positions: BTreeMap<u64, MetaNodeId>,
}

impl HashRing {
    /// Builds a ring containing `virtual_nodes` positions for each of the
    /// given providers.
    #[must_use]
    pub fn new(nodes: &[MetaNodeId], virtual_nodes: usize) -> Self {
        let mut ring = HashRing::default();
        for &node in nodes {
            ring.add_node(node, virtual_nodes);
        }
        ring
    }

    /// Adds a provider with the given number of virtual nodes.
    pub fn add_node(&mut self, node: MetaNodeId, virtual_nodes: usize) {
        for replica in 0..virtual_nodes {
            let pos = hash_key(&(node.0, replica as u64, "blobseer-vnode"));
            // In the astronomically unlikely event of a collision the later
            // node silently wins one position; correctness is unaffected.
            self.positions.insert(pos, node);
        }
    }

    /// Removes every virtual node belonging to the provider.
    pub fn remove_node(&mut self, node: MetaNodeId) {
        self.positions.retain(|_, owner| *owner != node);
    }

    /// Number of virtual node positions currently on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the ring has no positions at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of distinct providers on the ring.
    #[must_use]
    pub fn distinct_nodes(&self) -> usize {
        let mut ids: Vec<MetaNodeId> = self.positions.values().copied().collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// The first `count` distinct providers found walking clockwise from
    /// `hash`. Returns fewer than `count` providers only if the ring has
    /// fewer distinct members.
    #[must_use]
    pub fn successors(&self, hash: u64, count: usize) -> Vec<MetaNodeId> {
        let mut result = Vec::with_capacity(count);
        if self.positions.is_empty() || count == 0 {
            return result;
        }
        // Walk from `hash` to the end of the ring, then wrap around.
        let walk = self
            .positions
            .range(hash..)
            .chain(self.positions.range(..hash));
        for (_, &node) in walk {
            if !result.contains(&node) {
                result.push(node);
                if result.len() == count {
                    break;
                }
            }
        }
        result
    }

    /// The single provider owning `hash` (the primary replica).
    #[must_use]
    pub fn primary(&self, hash: u64) -> Option<MetaNodeId> {
        self.successors(hash, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn nodes(n: u32) -> Vec<MetaNodeId> {
        (0..n).map(MetaNodeId).collect()
    }

    #[test]
    fn hash_key_is_deterministic() {
        assert_eq!(hash_key(&"hello"), hash_key(&"hello"));
        assert_ne!(hash_key(&"hello"), hash_key(&"world"));
    }

    #[test]
    fn ring_contains_all_virtual_nodes() {
        let ring = HashRing::new(&nodes(4), 16);
        assert_eq!(ring.len(), 64);
        assert_eq!(ring.distinct_nodes(), 4);
        assert!(!ring.is_empty());
    }

    #[test]
    fn successors_are_distinct_and_bounded() {
        let ring = HashRing::new(&nodes(5), 32);
        let succ = ring.successors(hash_key(&"some key"), 3);
        assert_eq!(succ.len(), 3);
        let mut d = succ.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3);
        // Asking for more replicas than nodes returns every node once.
        let all = ring.successors(42, 10);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn empty_ring_returns_nothing() {
        let ring = HashRing::default();
        assert!(ring.successors(7, 3).is_empty());
        assert!(ring.primary(7).is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn removing_a_node_removes_all_its_positions() {
        let mut ring = HashRing::new(&nodes(3), 16);
        ring.remove_node(MetaNodeId(1));
        assert_eq!(ring.distinct_nodes(), 2);
        assert_eq!(ring.len(), 32);
        // Lookups never return the removed node.
        for i in 0..1_000u64 {
            for n in ring.successors(hash_key(&i), 2) {
                assert_ne!(n, MetaNodeId(1));
            }
        }
    }

    #[test]
    fn load_is_roughly_balanced_with_virtual_nodes() {
        let ring = HashRing::new(&nodes(8), 128);
        let mut counts: HashMap<MetaNodeId, u64> = HashMap::new();
        for i in 0..20_000u64 {
            let primary = ring.primary(hash_key(&i)).unwrap();
            *counts.entry(primary).or_default() += 1;
        }
        let expected = 20_000.0 / 8.0;
        for (&node, &count) in &counts {
            let ratio = count as f64 / expected;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "node {node} holds {count} keys, ratio {ratio:.2} outside [0.5, 1.5]"
            );
        }
    }

    #[test]
    fn membership_change_moves_only_a_fraction_of_keys() {
        let ring_before = HashRing::new(&nodes(10), 64);
        let mut ring_after = ring_before.clone();
        ring_after.add_node(MetaNodeId(10), 64);

        let keys: Vec<u64> = (0..10_000).collect();
        let moved = keys
            .iter()
            .filter(|&&k| ring_before.primary(hash_key(&k)) != ring_after.primary(hash_key(&k)))
            .count();
        // Consistent hashing: roughly 1/11 of keys move; allow generous slack.
        let fraction = moved as f64 / keys.len() as f64;
        assert!(
            fraction < 0.25,
            "adding one node moved {fraction:.2} of keys, expected ~0.09"
        );
        assert!(moved > 0, "adding a node should move some keys");
    }

    proptest! {
        #[test]
        fn prop_successors_deterministic(hash in any::<u64>(), n in 1u32..12, reps in 1usize..5) {
            let ring = HashRing::new(&nodes(n), 32);
            let a = ring.successors(hash, reps);
            let b = ring.successors(hash, reps);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.len(), reps.min(n as usize));
        }

        #[test]
        fn prop_primary_is_first_successor(hash in any::<u64>(), n in 1u32..12) {
            let ring = HashRing::new(&nodes(n), 16);
            prop_assert_eq!(ring.primary(hash), ring.successors(hash, 1).first().copied());
        }
    }
}
