//! The chunk compression codec behind `ChunkCodec::Fast`.
//!
//! A small in-house LZ4-style block codec: greedy hash-table matching,
//! byte-aligned output, no entropy stage — tuned for the throughput-bound
//! data plane, where a codec only pays for itself if it is much faster than
//! the wire. The build environment has no registry access, so this is a
//! from-scratch dependency-free implementation, not a binding.
//!
//! ## Block format
//!
//! A compressed block is a sequence of *sequences*. Each sequence is:
//!
//! 1. a token byte — high nibble = literal count, low nibble = match length
//!    minus [`MIN_MATCH`]; a nibble of 15 is extended by following bytes
//!    (each `255` adds 255, the first byte `< 255` terminates and adds
//!    itself);
//! 2. the literal-count extension bytes, if any;
//! 3. the literal bytes;
//! 4. a little-endian `u16` match offset (`1..=65535`, distance back into
//!    the already-decoded output);
//! 5. the match-length extension bytes, if any.
//!
//! The final literals of a block (if any) form a trailing sequence that ends
//! after its literal bytes — the decoder knows it is final because the input
//! is exhausted. Matches may overlap their own output (offset < length),
//! which is how runs compress.
//!
//! ## Contract with the chunk envelope
//!
//! [`compress`] returns `None` whenever compression does not strictly win,
//! and [`seal`] then falls back to a verbatim envelope — a refcount bump of
//! the caller's `Bytes`, no copy. [`open`] is the single decompression
//! point: verbatim envelopes hand their payload back refcounted, compressed
//! ones materialise exactly one freshly allocated buffer. Every decode
//! failure maps to the retryable `BlobError::Transport` class, so a reader
//! that receives a mangled compressed chunk probes the next replica exactly
//! like it would for a mangled frame.

use blobseer_types::{BlobError, ChunkCodec, ChunkEnvelope, Result};
use bytes::Bytes;

/// Shortest match worth encoding (a sequence costs at least 3 bytes:
/// token + offset).
pub const MIN_MATCH: usize = 4;

/// Furthest back a match may reach (the offset is a `u16`; 0 is invalid).
pub const MAX_OFFSET: usize = 65_535;

/// Inputs shorter than this are never worth compressing: the first sequence
/// alone costs three bytes of framing, and chunks this small are dominated
/// by per-request overhead anyway.
pub const MIN_COMPRESS_INPUT: usize = 32;

const HASH_BITS: u32 = 14;

#[inline]
fn hash4(v: u32) -> usize {
    // Knuth's multiplicative hash over the next four bytes.
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32_le(input: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap())
}

fn put_nibble_ext(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn put_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    debug_assert!(match_len >= MIN_MATCH);
    debug_assert!(offset > 0);
    let lit_nibble = literals.len().min(15);
    let match_extra = match_len - MIN_MATCH;
    let match_nibble = match_extra.min(15);
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        put_nibble_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if match_nibble == 15 {
        put_nibble_ext(out, match_extra - 15);
    }
}

fn put_trailing_literals(out: &mut Vec<u8>, literals: &[u8]) {
    if literals.is_empty() {
        return;
    }
    let lit_nibble = literals.len().min(15);
    out.push((lit_nibble as u8) << 4);
    if lit_nibble == 15 {
        put_nibble_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
}

/// Compresses `input`, returning `None` unless the compressed block is
/// *strictly* smaller than the input (the caller then ships the input
/// verbatim — the zero-copy passthrough escape).
#[must_use]
pub fn compress(input: &[u8]) -> Option<Vec<u8>> {
    if input.len() < MIN_COMPRESS_INPUT {
        return None;
    }
    let mut out = Vec::with_capacity(input.len() / 2);
    // Positions are stored +1 so 0 can mean "empty slot".
    let mut table = vec![0u32; 1 << HASH_BITS];
    let end = input.len();
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= end {
        let h = hash4(read_u32_le(input, i));
        let candidate = table[h] as usize;
        table[h] = (i + 1) as u32;
        if candidate > 0 {
            let cand = candidate - 1;
            if i - cand <= MAX_OFFSET && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH] {
                let mut match_len = MIN_MATCH;
                while i + match_len < end && input[cand + match_len] == input[i + match_len] {
                    match_len += 1;
                }
                put_sequence(&mut out, &input[anchor..i], (i - cand) as u16, match_len);
                if out.len() >= input.len() {
                    return None; // compression is losing; bail early
                }
                i += match_len;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    put_trailing_literals(&mut out, &input[anchor..end]);
    (out.len() < input.len()).then_some(out)
}

fn truncated() -> BlobError {
    BlobError::Transport("codec: truncated compressed block".into())
}

fn get_nibble_ext(input: &[u8], pos: &mut usize) -> Result<usize> {
    let mut extra = 0usize;
    loop {
        let byte = *input.get(*pos).ok_or_else(truncated)?;
        *pos += 1;
        extra += byte as usize;
        if byte < 255 {
            return Ok(extra);
        }
    }
}

/// Decompresses a block produced by [`compress`] into exactly
/// `logical_len` bytes. Any malformed input — truncation, a bad offset, a
/// length disagreement — is rejected as the retryable transport error it
/// is, never panicked on and never silently padded.
pub fn decompress(input: &[u8], logical_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(logical_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let mut literal_len = (token >> 4) as usize;
        if literal_len == 15 {
            literal_len += get_nibble_ext(input, &mut pos)?;
        }
        if input.len() - pos < literal_len {
            return Err(truncated());
        }
        out.extend_from_slice(&input[pos..pos + literal_len]);
        pos += literal_len;
        if out.len() > logical_len {
            return Err(BlobError::Transport(format!(
                "codec: block decodes past its {logical_len}-byte logical length"
            )));
        }
        if pos == input.len() {
            break; // trailing-literal sequence: no match follows
        }
        if input.len() - pos < 2 {
            return Err(truncated());
        }
        let offset = u16::from_le_bytes(input[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(BlobError::Transport(format!(
                "codec: match offset {offset} reaches before the block start"
            )));
        }
        let mut match_len = (token & 0x0f) as usize + MIN_MATCH;
        if token & 0x0f == 15 {
            match_len += get_nibble_ext(input, &mut pos)?;
        }
        if logical_len - out.len() < match_len {
            return Err(BlobError::Transport(format!(
                "codec: block decodes past its {logical_len}-byte logical length"
            )));
        }
        // Byte-by-byte so a match may overlap its own output (runs).
        let start = out.len() - offset;
        for k in 0..match_len {
            let byte = out[start + k];
            out.push(byte);
        }
    }
    if out.len() != logical_len {
        return Err(BlobError::Transport(format!(
            "codec: block decoded to {} bytes, envelope declared {logical_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Seals one chunk into its envelope under `codec`.
///
/// `Off` and any chunk that does not strictly shrink ship verbatim — the
/// envelope then holds a refcount bump of `data`, preserving the zero-copy
/// write path end to end. Compression happens at most once per chunk, here,
/// at the writing client.
#[must_use]
pub fn seal(codec: ChunkCodec, data: Bytes) -> ChunkEnvelope {
    match codec {
        ChunkCodec::Off => ChunkEnvelope::verbatim(data),
        ChunkCodec::Fast => match compress(&data) {
            Some(block) => ChunkEnvelope::compressed(data.len() as u64, Bytes::from(block)),
            None => ChunkEnvelope::verbatim(data),
        },
    }
}

/// Opens one envelope back into the chunk's bytes.
///
/// Verbatim envelopes hand their payload back as a refcounted clone (no
/// copy); compressed envelopes materialise exactly one fresh buffer. This
/// is the single decompression point of the whole pipeline — providers and
/// frames carry envelopes verbatim.
pub fn open(envelope: &ChunkEnvelope) -> Result<Bytes> {
    if envelope.is_verbatim() {
        return Ok(envelope.payload().clone());
    }
    let logical = usize::try_from(envelope.logical_len())
        .map_err(|_| BlobError::Transport("codec: logical length overflows usize".into()))?;
    Ok(Bytes::from(decompress(envelope.payload(), logical)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(input: &[u8]) {
        match compress(input) {
            Some(block) => {
                assert!(block.len() < input.len(), "compress must strictly win");
                assert_eq!(decompress(&block, input.len()).unwrap(), input);
            }
            None => { /* verbatim passthrough: nothing to verify */ }
        }
    }

    #[test]
    fn repetitive_input_compresses_hard_and_roundtrips() {
        let input: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(64 * 1024)
            .collect();
        let block = compress(&input).expect("repetitive text must compress");
        assert!(
            block.len() * 4 < input.len(),
            "expected >4x on cyclic text, got {} -> {}",
            input.len(),
            block.len()
        );
        assert_eq!(decompress(&block, input.len()).unwrap(), input);
    }

    #[test]
    fn constant_runs_compress_to_almost_nothing() {
        let input = vec![7u8; 100_000];
        let block = compress(&input).unwrap();
        assert!(
            block.len() < 500,
            "a run must collapse, got {}",
            block.len()
        );
        assert_eq!(decompress(&block, input.len()).unwrap(), input);
    }

    #[test]
    fn random_input_is_passed_through() {
        let mut rng = StdRng::seed_from_u64(7);
        let input: Vec<u8> = (0..64 * 1024).map(|_| rng.gen()).collect();
        assert!(
            compress(&input).is_none(),
            "random bytes must not pretend to compress"
        );
    }

    #[test]
    fn tiny_inputs_are_never_compressed() {
        assert!(compress(b"").is_none());
        assert!(compress(&[0u8; MIN_COMPRESS_INPUT - 1]).is_none());
    }

    #[test]
    fn seal_and_open_respect_the_codec() {
        let compressible = Bytes::from(vec![42u8; 4096]);
        let off = seal(ChunkCodec::Off, compressible.clone());
        assert!(off.is_verbatim());
        // Verbatim seal is a refcount bump of the caller's buffer.
        assert_eq!(off.payload().as_ptr(), compressible.as_ptr());
        assert_eq!(open(&off).unwrap(), compressible);

        let fast = seal(ChunkCodec::Fast, compressible.clone());
        assert!(!fast.is_verbatim());
        assert!(fast.physical_len() < fast.logical_len());
        assert_eq!(open(&fast).unwrap(), compressible);

        // Incompressible data passes through verbatim even under Fast.
        let mut rng = StdRng::seed_from_u64(3);
        let noise = Bytes::from((0..4096).map(|_| rng.gen()).collect::<Vec<u8>>());
        let sealed = seal(ChunkCodec::Fast, noise.clone());
        assert!(sealed.is_verbatim());
        assert_eq!(sealed.payload().as_ptr(), noise.as_ptr());
        assert_eq!(open(&sealed).unwrap(), noise);
    }

    #[test]
    fn truncated_blocks_are_rejected_not_panicked_on() {
        let input: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(4096).collect();
        let block = compress(&input).unwrap();
        for cut in 0..block.len() {
            assert!(
                decompress(&block[..cut], input.len()).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn mangled_blocks_are_rejected_not_panicked_on() {
        let input: Vec<u8> = b"0123456789".iter().copied().cycle().take(2048).collect();
        let block = compress(&input).unwrap();
        for i in 0..block.len() {
            let mut mangled = block.clone();
            mangled[i] ^= 0xA5;
            // Every single-byte corruption either still decodes to the right
            // length (possible: a literal byte flip) or errors — never panics.
            let _ = decompress(&mangled, input.len());
        }
        // A wrong logical length is always caught.
        assert!(decompress(&block, input.len() + 1).is_err());
        assert!(decompress(&block, input.len() - 1).is_err());
    }

    #[test]
    fn zero_offset_is_rejected() {
        // token: 0 literals, match of 4; offset 0 is invalid.
        assert!(decompress(&[0x00, 0x00, 0x00], 4).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_buffers_roundtrip(data in proptest::collection::vec(0u16..256, 0..4096)) {
            let data: Vec<u8> = data.into_iter().map(|b| b as u8).collect();
            roundtrip(&data);
        }

        #[test]
        fn structured_buffers_roundtrip(
            seed in 0u64..1_000_000,
            run in 1usize..64,
            len in 64usize..8192,
        ) {
            // Alternating runs and noise: exercises both match emission and
            // literal runs, with plenty of boundary cases.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut data = Vec::with_capacity(len);
            while data.len() < len {
                if rng.gen_bool(0.5) {
                    let byte: u8 = rng.gen();
                    let n = run.min(len - data.len());
                    data.extend(std::iter::repeat_n(byte, n));
                } else {
                    let n = run.min(len - data.len());
                    data.extend((0..n).map(|_| rng.gen::<u8>()));
                }
            }
            roundtrip(&data);
        }

        #[test]
        fn sealed_envelopes_always_open_to_the_input(
            seed in 0u64..1_000_000,
            len in 0usize..4096,
            fast in proptest::any::<bool>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let compressible = rng.gen_bool(0.5);
            let data: Vec<u8> = if compressible {
                b"blobseer".iter().copied().cycle().take(len).collect()
            } else {
                (0..len).map(|_| rng.gen()).collect()
            };
            let codec = if fast { ChunkCodec::Fast } else { ChunkCodec::Off };
            let bytes = Bytes::from(data.clone());
            let env = seal(codec, bytes);
            prop_assert_eq!(env.logical_len(), data.len() as u64);
            prop_assert_eq!(open(&env).unwrap(), Bytes::from(data));
        }
    }
}
