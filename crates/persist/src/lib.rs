//! # blobseer-persist — the durable, log-structured persistence tier
//!
//! BlobSeer's versioning model is append-only all the way down: chunks are
//! immutable, metadata tree nodes are immutable, and a version exists the
//! instant the version manager publishes its snapshot descriptor. This
//! crate maps that model onto disks with the only layout an append-only
//! system needs — logs:
//!
//! - **Chunk segment files** ([`SegmentStore`]): each provider appends
//!   sealed [`ChunkEnvelope`](blobseer_types::wire::ChunkEnvelope)s
//!   verbatim (compressed chunks stay compressed) into per-record
//!   CRC-framed segment files. Recovery re-maps each sealed segment as one
//!   refcounted buffer, so post-restart reads are zero-copy slices of the
//!   recovered file image — the same `payload_bytes_copied == 0` discipline
//!   the RAM tier keeps. Deletes are tombstone records folded by
//!   [`SegmentStore::compact`].
//! - **Metadata WAL** ([`MetaWal`]): every blob creation, node batch,
//!   commit, delete, retire and flatten is a framed record. Publication is
//!   write-ahead: chunks and nodes land (and under
//!   [`Durability::Commit`](blobseer_types::Durability) are fsynced) before
//!   the commit record, so recovery can replay the log, truncate the torn
//!   tail, keep the longest contiguous commit prefix per blob and drop
//!   orphaned pre-commit records — a crash at any byte yields the last
//!   complete version, never a torn snapshot.
//! - **[`DurableTier`]**: one directory holding the WAL plus per-provider
//!   segment stores; implements [`Journal`], the version manager's
//!   durability hook, and takes periodic WAL checkpoints (compacted
//!   rewrite via temp-file + fsync + rename).
//!
//! The crate sits below `blobseer-core` (which wires the tier into cluster
//! construction and lifecycle maintenance) and beside `blobseer-provider`
//! (whose [`ChunkStore`](blobseer_provider::ChunkStore) trait the segment
//! store implements, with the RAM store relegated to cache duty).

mod frame;
mod segment;
mod tier;
mod wal;

pub use frame::{
    frame_record, record_crc, scan, Crc32, RecordView, ScanOutcome, RECORD_HEADER_BYTES,
    RECORD_MAGIC,
};
pub use segment::{SegmentRecovery, SegmentStore, SegmentStoreOptions};
pub use tier::{DurableTier, DurableTierOptions};
pub use wal::{Journal, MetaWal, RecoveredBlob, RecoveredMetadata, RecoveryStats, WalMetaStore};
