//! Record framing shared by chunk segment files and the metadata WAL.
//!
//! Every durable file is a sequence of self-delimiting records:
//!
//! ```text
//! ┌───────┬──────┬─────────┬─────────┬────────────────┐
//! │ magic │ kind │ len u32 │ crc u32 │ payload (len B)│
//! └───────┴──────┴─────────┴─────────┴────────────────┘
//! ```
//!
//! The CRC (IEEE CRC-32) covers the kind byte and the payload, so a record
//! whose framing survived a crash but whose contents did not is detectable.
//! [`scan`] walks a buffer and classifies every byte: complete records
//! (each flagged `crc_ok` or not) followed by at most one *torn tail* — an
//! incomplete or unframeable suffix that a crash mid-append leaves behind
//! and recovery physically truncates.

use std::ops::Range;

/// First byte of every record; anything else marks the start of a torn tail.
pub const RECORD_MAGIC: u8 = 0xB5;

/// Bytes of framing before the payload: magic, kind, length, CRC.
pub const RECORD_HEADER_BYTES: usize = 1 + 1 + 4 + 4;

/// Incrementally computed IEEE CRC-32 (the polynomial every storage format
/// uses; hand-rolled because the build environment vendors no crc crate).
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

impl Crc32 {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the accumulator.
    #[must_use]
    pub fn update(mut self, data: &[u8]) -> Self {
        for &byte in data {
            let idx = ((self.state ^ u32::from(byte)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx];
        }
        self
    }

    /// The final checksum.
    #[must_use]
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// The checksum a record with this kind and payload must carry.
#[must_use]
pub fn record_crc(kind: u8, payload: &[u8]) -> u32 {
    Crc32::new().update(&[kind]).update(payload).finalize()
}

/// Serialises one framed record ready to append.
#[must_use]
pub fn frame_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.push(RECORD_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One complete record found by [`scan`], as byte ranges into the scanned
/// buffer (no payload copies — the segment store slices its refcounted
/// buffer through these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordView {
    /// The record's kind byte.
    pub kind: u8,
    /// The whole record, framing included.
    pub span: Range<usize>,
    /// The payload bytes inside the buffer.
    pub payload: Range<usize>,
    /// The CRC the record carries.
    pub crc: u32,
    /// Whether the carried CRC matches the contents.
    pub crc_ok: bool,
}

/// What [`scan`] found in a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Every frame-complete record, in file order.
    pub records: Vec<RecordView>,
    /// Bytes of well-framed prefix; everything past this is the torn tail.
    pub valid_len: usize,
}

impl ScanOutcome {
    /// Bytes of torn tail a recovery pass should physically truncate, given
    /// the buffer length scanned.
    #[must_use]
    pub fn torn_bytes(&self, buf_len: usize) -> usize {
        buf_len - self.valid_len
    }
}

/// Walks `buf` record by record. Stops at the first incomplete or
/// unframeable suffix (bad magic, header cut short, or a declared length
/// running past the end of the buffer) — that suffix is the torn tail a
/// crash mid-append leaves. Records with intact framing but a failing CRC
/// are *returned* with `crc_ok == false`; the caller decides whether that
/// means "torn tail" (the WAL: trust nothing at or past it) or "corrupt
/// at-rest record" (chunk segments: keep it addressable and fail the read).
#[must_use]
pub fn scan(buf: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= RECORD_HEADER_BYTES {
        if buf[pos] != RECORD_MAGIC {
            break;
        }
        let kind = buf[pos + 1];
        let len = u32::from_le_bytes(buf[pos + 2..pos + 6].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 6..pos + 10].try_into().unwrap());
        let payload_start = pos + RECORD_HEADER_BYTES;
        let Some(end) = payload_start.checked_add(len) else {
            break;
        };
        if end > buf.len() {
            break;
        }
        let crc_ok = record_crc(kind, &buf[payload_start..end]) == crc;
        records.push(RecordView {
            kind,
            span: pos..end,
            payload: payload_start..end,
            crc,
            crc_ok,
        });
        pos = end;
    }
    ScanOutcome {
        records,
        valid_len: pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(Crc32::new().update(b"123456789").finalize(), 0xCBF4_3926);
        assert_eq!(Crc32::new().finalize(), 0);
        // Incremental feeding is equivalent to one shot.
        assert_eq!(
            Crc32::new().update(b"1234").update(b"56789").finalize(),
            0xCBF4_3926
        );
    }

    #[test]
    fn framed_records_scan_back() {
        let mut buf = frame_record(1, b"hello");
        buf.extend_from_slice(&frame_record(2, b""));
        buf.extend_from_slice(&frame_record(1, b"world"));
        let outcome = scan(&buf);
        assert_eq!(outcome.records.len(), 3);
        assert_eq!(outcome.valid_len, buf.len());
        assert!(outcome.records.iter().all(|r| r.crc_ok));
        assert_eq!(&buf[outcome.records[0].payload.clone()], b"hello");
        assert_eq!(outcome.records[1].kind, 2);
        assert_eq!(&buf[outcome.records[2].payload.clone()], b"world");
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_complete_record() {
        let mut buf = frame_record(1, b"complete");
        let keep = buf.len();
        let torn = frame_record(1, b"never finished");
        buf.extend_from_slice(&torn[..torn.len() - 3]);
        let outcome = scan(&buf);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.valid_len, keep);
        assert_eq!(outcome.torn_bytes(buf.len()), torn.len() - 3);
    }

    #[test]
    fn garbage_magic_ends_the_scan() {
        let mut buf = frame_record(3, b"good");
        let keep = buf.len();
        buf.extend_from_slice(&[0u8; 64]);
        let outcome = scan(&buf);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.valid_len, keep);
    }

    #[test]
    fn flipped_payload_byte_fails_the_crc_but_keeps_framing() {
        let mut buf = frame_record(1, b"precious bytes");
        let n = buf.len();
        buf[n - 3] ^= 0x40;
        buf.extend_from_slice(&frame_record(1, b"after"));
        let outcome = scan(&buf);
        assert_eq!(outcome.records.len(), 2);
        assert!(!outcome.records[0].crc_ok, "corruption must be detected");
        assert!(outcome.records[1].crc_ok, "later records still scan");
        assert_eq!(outcome.valid_len, buf.len());
    }

    #[test]
    fn a_declared_length_past_the_end_is_a_torn_tail() {
        let mut buf = frame_record(1, b"ok");
        let keep = buf.len();
        // Hand-build a header declaring 1 GiB of payload that is not there.
        buf.push(RECORD_MAGIC);
        buf.push(1);
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"tiny");
        let outcome = scan(&buf);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.valid_len, keep);
    }
}
