//! Append-only chunk segment files: the durable backend behind
//! [`blobseer_provider::ChunkStore`].
//!
//! One provider owns one directory of `seg-NNNNNN.log` files. Every sealed
//! [`ChunkEnvelope`] is appended verbatim as one CRC-framed record
//! ([`crate::frame`]); an in-memory index maps chunk ids to record
//! locations. Removals append *tombstone* records — the log itself is never
//! rewritten in place — and [`SegmentStore::compact`] folds tombstoned and
//! superseded bytes away by rewriting survivors into the active segment.
//!
//! Reads are zero-copy in the spirit of the `OwnedArchivedVersionChanges`
//! pattern: a recovered or sealed segment is held as one refcounted
//! [`Bytes`] buffer and every read hands out `buf.slice(..)` views of it —
//! the payload is never memcpy'd, so aligned reads keep the client's
//! `payload_bytes_copied == 0` even after a cold restart. Each mapped read
//! re-verifies the record CRC; a mismatch surfaces as the retryable
//! [`BlobError::Transport`] so readers rotate to another replica instead of
//! consuming silent corruption.

use crate::frame::{frame_record, record_crc, scan, RECORD_HEADER_BYTES};
use blobseer_provider::ChunkStore;
use blobseer_types::wire::{encode, WireReader};
use blobseer_types::{BlobError, ChunkEnvelope, ChunkId, Durability, EnvelopeHeader, Result};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Record kinds of the chunk segment log.
const KIND_CHUNK: u8 = 1;
const KIND_TOMBSTONE: u8 = 2;

/// Wire size of a `ChunkId` (three `u64`s).
const CHUNK_ID_BYTES: usize = 24;
/// Wire size of an `EnvelopeHeader` (encoding tag + logical len + physical
/// len).
const ENVELOPE_HEADER_BYTES: usize = 13;

/// Tuning knobs of a [`SegmentStore`].
#[derive(Debug, Clone, Copy)]
pub struct SegmentStoreOptions {
    /// Fsync policy: `Always` syncs every appended record, everything else
    /// leaves syncing to [`SegmentStore::sync`] (called by the durable
    /// tier's commit hook under `Commit`).
    pub durability: Durability,
    /// Size at which the active segment file is sealed and a new one
    /// started.
    pub segment_bytes: u64,
}

impl Default for SegmentStoreOptions {
    fn default() -> Self {
        SegmentStoreOptions {
            durability: Durability::default(),
            segment_bytes: 64 << 20,
        }
    }
}

/// What recovery found while opening a segment directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentRecovery {
    /// Live chunks indexed after replaying every segment.
    pub recovered_chunks: u64,
    /// Torn-tail bytes physically truncated.
    pub truncated_bytes: u64,
    /// Complete-but-CRC-failing records kept addressable (reads of them
    /// fail retryably) plus undecodable ones dropped.
    pub corrupt_records: u64,
    /// Segment files opened.
    pub segments: u64,
}

/// Where one chunk's record lives.
#[derive(Debug, Clone)]
struct Slot {
    seg: u64,
    /// Record span within the segment file (framing included).
    start: u64,
    end: u64,
    header: EnvelopeHeader,
    crc: u32,
    /// Envelope as written this process run; `None` once the segment sealed
    /// (or for recovered records), in which case reads map the segment
    /// buffer.
    resident: Option<ChunkEnvelope>,
}

struct Index {
    slots: HashMap<ChunkId, Slot>,
    /// Sealed (and recovered-prefix) segment buffers, one refcounted
    /// allocation per segment.
    buffers: HashMap<u64, Bytes>,
}

struct Active {
    seg: u64,
    file: File,
    len: u64,
}

/// The log-structured durable chunk store.
pub struct SegmentStore {
    dir: PathBuf,
    opts: SegmentStoreOptions,
    active: Mutex<Active>,
    index: RwLock<Index>,
    bytes: AtomicU64,
    recovery: SegmentRecovery,
}

fn segment_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("seg-{seg:06}.log"))
}

fn segment_number(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

fn chunk_record(id: &ChunkId, data: &ChunkEnvelope) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(CHUNK_ID_BYTES + ENVELOPE_HEADER_BYTES + data.payload().len());
    payload.extend_from_slice(&encode(id));
    payload.extend_from_slice(&encode(&data.header()));
    payload.extend_from_slice(data.payload());
    frame_record(KIND_CHUNK, &payload)
}

impl SegmentStore {
    /// Opens (or creates) the segment directory, replaying every segment
    /// file: torn tails are physically truncated, tombstones are folded into
    /// the index, and the last segment becomes the active append target.
    pub fn open(dir: impl AsRef<Path>, opts: SegmentStoreOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut seg_numbers: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|entry| segment_number(&entry.ok()?.path()))
            .collect();
        seg_numbers.sort_unstable();
        if seg_numbers.is_empty() {
            seg_numbers.push(1);
        }

        let mut slots: HashMap<ChunkId, Slot> = HashMap::new();
        let mut buffers = HashMap::new();
        let mut recovery = SegmentRecovery::default();
        let last_seg = *seg_numbers.last().unwrap();
        for &seg in &seg_numbers {
            let path = segment_path(&dir, seg);
            let raw = match std::fs::read(&path) {
                Ok(raw) => raw,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(err) => return Err(err.into()),
            };
            let outcome = scan(&raw);
            let mut cut = outcome.valid_len;
            let mut records = outcome.records;
            // A final record with intact framing but a failing CRC is a torn
            // append (the payload write itself was interrupted): cut there.
            // Mid-file CRC failures are at-rest corruption and stay
            // addressable so reads fail loudly instead of missing silently.
            if let Some(last) = records.last() {
                if !last.crc_ok {
                    cut = last.span.start;
                    records.pop();
                }
            }
            recovery.truncated_bytes += (raw.len() - cut) as u64;
            let buf = Bytes::from(raw).slice(0..cut);
            for record in records {
                let payload = &buf[record.payload.clone()];
                match record.kind {
                    KIND_CHUNK => {
                        let mut reader = WireReader::new(payload);
                        let parsed = reader
                            .get::<ChunkId>()
                            .and_then(|id| Ok((id, reader.get::<EnvelopeHeader>()?)));
                        match parsed {
                            Ok((id, header))
                                if RECORD_HEADER_BYTES
                                    + CHUNK_ID_BYTES
                                    + ENVELOPE_HEADER_BYTES
                                    + header.physical_len as usize
                                    == record.span.len() =>
                            {
                                if !record.crc_ok {
                                    recovery.corrupt_records += 1;
                                }
                                slots.insert(
                                    id,
                                    Slot {
                                        seg,
                                        start: record.span.start as u64,
                                        end: record.span.end as u64,
                                        header,
                                        crc: record.crc,
                                        resident: None,
                                    },
                                );
                            }
                            // Undecodable chunk record: unreachable with a
                            // passing CRC, droppable garbage without one.
                            _ => recovery.corrupt_records += 1,
                        }
                    }
                    KIND_TOMBSTONE => {
                        if record.crc_ok {
                            if let Ok(id) = blobseer_types::wire::decode::<ChunkId>(payload) {
                                slots.remove(&id);
                                continue;
                            }
                        }
                        // A corrupt tombstone is ignored rather than applied:
                        // deleting the wrong chunk is worse than leaking one
                        // (the sweeper re-issues deletes it could not prove).
                        recovery.corrupt_records += 1;
                    }
                    _ => recovery.corrupt_records += 1,
                }
            }
            if !buf.is_empty() {
                buffers.insert(seg, buf);
            }
            // Physically drop the torn tail so future appends extend a
            // well-framed file.
            let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            if file_len > cut as u64 {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(cut as u64)?;
                file.sync_data()?;
            }
            recovery.segments += 1;
        }

        let active_path = segment_path(&dir, last_seg);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        let len = file.metadata()?.len();
        let bytes = slots
            .values()
            .map(|slot| u64::from(slot.header.physical_len))
            .sum();
        recovery.recovered_chunks = slots.len() as u64;
        Ok(SegmentStore {
            dir,
            opts,
            active: Mutex::new(Active {
                seg: last_seg,
                file,
                len,
            }),
            index: RwLock::new(Index { slots, buffers }),
            bytes: AtomicU64::new(bytes),
            recovery,
        })
    }

    /// What recovery found when this store was opened.
    #[must_use]
    pub fn recovery(&self) -> SegmentRecovery {
        self.recovery
    }

    /// The directory the segments live in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flushes the active segment to stable storage. The durable tier calls
    /// this from its commit hook under [`Durability::Commit`], *before* the
    /// WAL commit record is written — the write-ahead ordering that makes
    /// publication atomic.
    pub fn sync(&self) -> Result<()> {
        self.active.lock().file.sync_data()?;
        Ok(())
    }

    /// Number of segment files currently on disk.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        let active_seg = self.active.lock().seg;
        let sealed = self
            .index
            .read()
            .buffers
            .keys()
            .filter(|&&seg| seg != active_seg)
            .count();
        sealed + 1
    }

    /// Bytes that a [`SegmentStore::compact`] pass could reclaim: everything
    /// in sealed segments not covered by a live record.
    #[must_use]
    pub fn reclaimable_bytes(&self) -> u64 {
        let active_seg = self.active.lock().seg;
        let index = self.index.read();
        let mut live: HashMap<u64, u64> = HashMap::new();
        for slot in index.slots.values() {
            *live.entry(slot.seg).or_default() += slot.end - slot.start;
        }
        index
            .buffers
            .iter()
            .filter(|(&seg, _)| seg != active_seg)
            .map(|(seg, buf)| buf.len() as u64 - live.get(seg).copied().unwrap_or(0))
            .sum()
    }

    /// Fraction of sealed-segment bytes a [`SegmentStore::compact`] pass
    /// would reclaim — the dead-record ratio compaction policy triggers on.
    /// `0.0` when no segment is sealed yet (an active segment is never a
    /// compaction victim, so its garbage does not count).
    #[must_use]
    pub fn dead_ratio(&self) -> f64 {
        let active_seg = self.active.lock().seg;
        let index = self.index.read();
        let mut live: HashMap<u64, u64> = HashMap::new();
        for slot in index.slots.values() {
            *live.entry(slot.seg).or_default() += slot.end - slot.start;
        }
        let (mut total, mut dead) = (0u64, 0u64);
        for (&seg, buf) in index.buffers.iter() {
            if seg == active_seg {
                continue;
            }
            let len = buf.len() as u64;
            total += len;
            dead += len - live.get(&seg).copied().unwrap_or(0);
        }
        if total == 0 {
            0.0
        } else {
            dead as f64 / total as f64
        }
    }

    /// Rewrites every sealed segment's surviving records into the active
    /// segment and deletes the sealed files, folding tombstoned, superseded
    /// and torn bytes away. Returns `(segments_removed, bytes_reclaimed)`.
    /// Corrupt records are dropped (they were unreadable anyway; replication
    /// and writer repair own redundancy).
    pub fn compact(&self) -> Result<(u64, u64)> {
        let mut removed_segments = 0u64;
        let mut reclaimed = 0u64;
        // Only segments sealed *before* this pass are victims. The rewrite
        // below may roll the active segment, sealing fresh buffers full of
        // survivors mid-flight; chasing those would copy the same records
        // forward forever.
        let victims: Vec<u64> = {
            let active_seg = self.active.lock().seg;
            let mut sealed: Vec<u64> = self
                .index
                .read()
                .buffers
                .keys()
                .copied()
                .filter(|&seg| seg != active_seg)
                .collect();
            sealed.sort_unstable();
            sealed
        };
        for victim in victims {
            if !self.index.read().buffers.contains_key(&victim) {
                continue;
            }
            let (buf, survivors) = {
                let index = self.index.read();
                let buf = index.buffers[&victim].clone();
                let survivors: Vec<(ChunkId, Slot)> = index
                    .slots
                    .iter()
                    .filter(|(_, slot)| slot.seg == victim)
                    .map(|(id, slot)| (*id, slot.clone()))
                    .collect();
                (buf, survivors)
            };
            let mut live_bytes = 0u64;
            for (id, slot) in survivors {
                live_bytes += slot.end - slot.start;
                match self.mapped_envelope(&buf, &slot) {
                    Ok(envelope) => {
                        self.append_chunk(&id, &envelope)?;
                    }
                    Err(_) => {
                        // Unreadable at rest: dropping it here converts a
                        // permanent read error into a clean miss replicas
                        // can answer.
                        self.index.write().slots.remove(&id);
                        self.bytes
                            .fetch_sub(u64::from(slot.header.physical_len), Ordering::Relaxed);
                    }
                }
            }
            self.index.write().buffers.remove(&victim);
            let path = segment_path(&self.dir, victim);
            let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            std::fs::remove_file(&path)?;
            removed_segments += 1;
            reclaimed += file_len.saturating_sub(live_bytes);
        }
        Ok((removed_segments, reclaimed))
    }

    /// Builds a zero-copy envelope out of a mapped record, re-verifying its
    /// CRC against the buffer contents.
    fn mapped_envelope(&self, buf: &Bytes, slot: &Slot) -> Result<ChunkEnvelope> {
        let start = slot.start as usize;
        let end = slot.end as usize;
        if end > buf.len() {
            return Err(BlobError::Internal(format!(
                "segment record {start}..{end} is beyond the {}-byte buffer",
                buf.len()
            )));
        }
        let body = &buf[start + RECORD_HEADER_BYTES..end];
        if record_crc(KIND_CHUNK, body) != slot.crc {
            return Err(BlobError::Transport(format!(
                "chunk record CRC mismatch at segment {} offset {start} (at-rest corruption)",
                slot.seg
            )));
        }
        let payload_start = start + RECORD_HEADER_BYTES + CHUNK_ID_BYTES + ENVELOPE_HEADER_BYTES;
        slot.header.into_envelope(buf.slice(payload_start..end))
    }

    /// Appends one chunk record to the active segment and indexes it,
    /// sealing the segment first if it is over budget. The caller has
    /// already resolved immutability conflicts.
    fn append_chunk(&self, id: &ChunkId, data: &ChunkEnvelope) -> Result<()> {
        let record = chunk_record(id, data);
        let slot = self.append_record(&record, |seg, start| Slot {
            seg,
            start,
            end: start + record.len() as u64,
            header: data.header(),
            crc: record_crc(KIND_CHUNK, &record[RECORD_HEADER_BYTES..]),
            resident: Some(data.clone()),
        })?;
        let replaced = self.index.write().slots.insert(*id, slot);
        let mut delta = data.physical_len();
        if let Some(old) = replaced {
            delta = delta.saturating_sub(u64::from(old.header.physical_len));
        }
        self.bytes.fetch_add(delta, Ordering::Relaxed);
        Ok(())
    }

    /// Appends a framed record, rolling the active segment when over
    /// budget, and returns the slot built by `make_slot` from the record's
    /// location.
    fn append_record(
        &self,
        record: &[u8],
        make_slot: impl FnOnce(u64, u64) -> Slot,
    ) -> Result<Slot> {
        let mut active = self.active.lock();
        if active.len >= self.opts.segment_bytes && active.len > 0 {
            self.seal_active(&mut active)?;
        }
        let start = active.len;
        active.file.write_all(record)?;
        if self.opts.durability == Durability::Always {
            active.file.sync_data()?;
        }
        active.len += record.len() as u64;
        Ok(make_slot(active.seg, start))
    }

    /// Seals the active segment: its full contents become one refcounted
    /// buffer (resident envelopes are dropped — reads map the buffer from
    /// now on) and a fresh segment file becomes the append target.
    fn seal_active(&self, active: &mut Active) -> Result<()> {
        active.file.flush()?;
        active.file.sync_data()?;
        let sealed_path = segment_path(&self.dir, active.seg);
        let buf = Bytes::from(std::fs::read(&sealed_path)?);
        {
            let mut index = self.index.write();
            index.buffers.insert(active.seg, buf);
            for slot in index.slots.values_mut() {
                if slot.seg == active.seg {
                    slot.resident = None;
                }
            }
        }
        let next = active.seg + 1;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.dir, next))?;
        active.seg = next;
        active.file = file;
        active.len = 0;
        Ok(())
    }
}

impl ChunkStore for SegmentStore {
    fn put(&self, id: ChunkId, data: ChunkEnvelope) -> Result<()> {
        match self.get(&id) {
            Ok(Some(existing)) if existing == data => return Ok(()),
            Ok(Some(_)) => {
                return Err(BlobError::Internal(format!(
                    "conflicting immutable chunk write for {id}"
                )))
            }
            // A corrupt at-rest copy is superseded by the rewrite: writers
            // repairing a failed read land here.
            Ok(None) | Err(_) => {}
        }
        self.append_chunk(&id, &data)
    }

    fn get(&self, id: &ChunkId) -> Result<Option<ChunkEnvelope>> {
        let index = self.index.read();
        let Some(slot) = index.slots.get(id) else {
            return Ok(None);
        };
        if let Some(resident) = &slot.resident {
            return Ok(Some(resident.clone()));
        }
        let Some(buf) = index.buffers.get(&slot.seg) else {
            return Err(BlobError::Internal(format!(
                "segment {} of {id} has no mapped buffer",
                slot.seg
            )));
        };
        self.mapped_envelope(buf, slot).map(Some)
    }

    fn remove(&self, id: &ChunkId) -> Option<u64> {
        // Check membership first so removing an absent chunk appends
        // nothing; the tombstone lands before the index forgets the chunk,
        // mirroring recovery's replay order.
        if !self.index.read().slots.contains_key(id) {
            return None;
        }
        let record = frame_record(KIND_TOMBSTONE, &encode(id));
        self.append_record(&record, |seg, start| Slot {
            seg,
            start,
            end: start + record.len() as u64,
            header: EnvelopeHeader {
                encoding: blobseer_types::ChunkEncoding::Verbatim,
                logical_len: 0,
                physical_len: 0,
            },
            crc: 0,
            resident: None,
        })
        .ok()?;
        let slot = self.index.write().slots.remove(id)?;
        let freed = u64::from(slot.header.physical_len);
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        Some(freed)
    }

    fn chunk_count(&self) -> usize {
        self.index.read().slots.len()
    }

    fn bytes_stored(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::BlobId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blobseer-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cid(slot: u64) -> ChunkId {
        ChunkId {
            blob: BlobId(1),
            write_tag: 7,
            slot,
        }
    }

    fn env(data: Vec<u8>) -> ChunkEnvelope {
        ChunkEnvelope::verbatim(Bytes::from(data))
    }

    #[test]
    fn roundtrip_and_reopen_recovers_everything() {
        let dir = temp_dir("roundtrip");
        {
            let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
            for i in 0..10u64 {
                store.put(cid(i), env(vec![i as u8; 100])).unwrap();
            }
            assert_eq!(store.chunk_count(), 10);
            assert_eq!(store.bytes_stored(), 1000);
        }
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        assert_eq!(store.recovery().recovered_chunks, 10);
        assert_eq!(store.recovery().truncated_bytes, 0);
        assert_eq!(store.chunk_count(), 10);
        assert_eq!(store.bytes_stored(), 1000);
        for i in 0..10u64 {
            assert_eq!(
                store.get(&cid(i)).unwrap().unwrap(),
                env(vec![i as u8; 100])
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_reads_share_the_segment_buffer() {
        let dir = temp_dir("zerocopy");
        {
            let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
            store.put(cid(0), env(vec![42u8; 4096])).unwrap();
        }
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        let a = store.get(&cid(0)).unwrap().unwrap();
        let b = store.get(&cid(0)).unwrap().unwrap();
        // Both reads are slices of the same recovered buffer: identical
        // payload addresses prove no copy was made.
        assert_eq!(a.payload().as_ptr(), b.payload().as_ptr());
        assert_eq!(a.payload().len(), 4096);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_envelopes_survive_restart_without_recoding() {
        let dir = temp_dir("codec");
        let sealed = ChunkEnvelope::compressed(8192, Bytes::from(vec![3u8; 512]));
        {
            let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
            store.put(cid(0), sealed.clone()).unwrap();
        }
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        let back = store.get(&cid(0)).unwrap().unwrap();
        assert_eq!(back, sealed);
        assert!(!back.is_verbatim());
        assert_eq!(back.logical_len(), 8192);
        assert_eq!(store.bytes_stored(), 512);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = temp_dir("torn");
        {
            let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
            store.put(cid(0), env(vec![1u8; 64])).unwrap();
            store.put(cid(1), env(vec![2u8; 64])).unwrap();
        }
        // Simulate a crash mid-append: chop the last record in half.
        let path = segment_path(&dir, 1);
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 40).unwrap();
        drop(file);
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        assert_eq!(store.recovery().recovered_chunks, 1);
        assert!(store.recovery().truncated_bytes > 0);
        assert_eq!(store.get(&cid(0)).unwrap().unwrap(), env(vec![1u8; 64]));
        assert_eq!(store.get(&cid(1)).unwrap(), None);
        // Appends after the truncation work and survive another reopen.
        store.put(cid(2), env(vec![3u8; 64])).unwrap();
        drop(store);
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        assert_eq!(store.recovery().recovered_chunks, 2);
        assert_eq!(store.recovery().truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_surfaces_as_retryable_transport_error() {
        let dir = temp_dir("corrupt");
        {
            let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
            store.put(cid(0), env(vec![5u8; 256])).unwrap();
            store.put(cid(1), env(vec![6u8; 256])).unwrap();
        }
        // Flip one payload byte of the FIRST record (not the last, which
        // the torn-tail rule would truncate instead).
        let path = segment_path(&dir, 1);
        let mut raw = std::fs::read(&path).unwrap();
        raw[RECORD_HEADER_BYTES + CHUNK_ID_BYTES + ENVELOPE_HEADER_BYTES + 17] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        assert_eq!(store.recovery().corrupt_records, 1);
        assert!(matches!(store.get(&cid(0)), Err(BlobError::Transport(_))));
        // The chunk still *counts* as held — it exists, it is unreadable.
        assert!(store.contains(&cid(0)));
        assert_eq!(store.get(&cid(1)).unwrap().unwrap(), env(vec![6u8; 256]));
        // A writer repairing the chunk overwrites the corrupt copy.
        store.put(cid(0), env(vec![5u8; 256])).unwrap();
        assert_eq!(store.get(&cid(0)).unwrap().unwrap(), env(vec![5u8; 256]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_survive_restart_and_compaction_reclaims() {
        let dir = temp_dir("tombstone");
        let opts = SegmentStoreOptions {
            segment_bytes: 1024,
            ..SegmentStoreOptions::default()
        };
        {
            let store = SegmentStore::open(&dir, opts).unwrap();
            for i in 0..20u64 {
                store.put(cid(i), env(vec![i as u8; 200])).unwrap();
            }
            for i in 0..10u64 {
                assert_eq!(store.remove(&cid(i)), Some(200));
            }
            assert_eq!(store.remove(&cid(0)), None, "removals are idempotent");
            assert_eq!(store.chunk_count(), 10);
        }
        let store = SegmentStore::open(&dir, opts).unwrap();
        assert_eq!(store.chunk_count(), 10, "tombstones replayed on reopen");
        assert!(store.get(&cid(3)).unwrap().is_none());
        assert!(store.get(&cid(15)).unwrap().is_some());
        assert!(store.segment_count() > 1);
        assert!(store.reclaimable_bytes() > 0);
        let (segments, reclaimed) = store.compact().unwrap();
        assert!(segments > 0);
        assert!(reclaimed > 0);
        // Every survivor still reads back after compaction and a reopen.
        for i in 10..20u64 {
            assert_eq!(
                store.get(&cid(i)).unwrap().unwrap(),
                env(vec![i as u8; 200])
            );
        }
        drop(store);
        let store = SegmentStore::open(&dir, opts).unwrap();
        assert_eq!(store.chunk_count(), 10);
        for i in 10..20u64 {
            assert_eq!(
                store.get(&cid(i)).unwrap().unwrap(),
                env(vec![i as u8; 200])
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_at_the_configured_size() {
        let dir = temp_dir("roll");
        let opts = SegmentStoreOptions {
            segment_bytes: 512,
            ..SegmentStoreOptions::default()
        };
        let store = SegmentStore::open(&dir, opts).unwrap();
        for i in 0..8u64 {
            store.put(cid(i), env(vec![i as u8; 300])).unwrap();
        }
        assert!(store.segment_count() >= 4);
        // Sealed-segment reads still verify and return the right bytes.
        for i in 0..8u64 {
            assert_eq!(
                store.get(&cid(i)).unwrap().unwrap(),
                env(vec![i as u8; 300])
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_rewrites_are_rejected() {
        let dir = temp_dir("conflict");
        let store = SegmentStore::open(&dir, SegmentStoreOptions::default()).unwrap();
        store.put(cid(0), env(vec![1u8; 16])).unwrap();
        store.put(cid(0), env(vec![1u8; 16])).unwrap();
        assert!(store.put(cid(0), env(vec![2u8; 16])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
