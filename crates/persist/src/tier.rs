//! The durable tier: one metadata WAL plus one chunk segment store per
//! hosted provider, opened from (and recovered out of) a single directory.
//!
//! ```text
//! <dir>/
//!   meta.wal            — indexed append-only metadata log (+ checkpoints)
//!   provider-0000/      — chunk segment files of provider 0
//!     seg-000000.log
//!     ...
//!   provider-0001/
//! ```
//!
//! The tier implements [`Journal`], the version manager's durability hook.
//! Its commit implementation is the write-ahead ordering in one place:
//! under [`Durability::Commit`] it fsyncs every provider's segment store
//! *before* appending (and fsyncing) the WAL commit record, so a commit
//! record on disk proves the chunks and nodes it names are on disk too.

use crate::segment::{SegmentStore, SegmentStoreOptions};
use crate::wal::{Journal, MetaWal, RecoveredMetadata, RecoveryStats};
use blobseer_meta::SnapshotDescriptor;
use blobseer_types::{BlobConfig, BlobId, Durability, Result, Version};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning knobs of a [`DurableTier`].
#[derive(Debug, Clone, Copy)]
pub struct DurableTierOptions {
    /// Fsync policy, shared by the WAL and every segment store.
    pub durability: Durability,
    /// Segment roll size per provider store.
    pub segment_bytes: u64,
    /// WAL records between automatic checkpoints (see
    /// [`MetaWal::records_since_checkpoint`]); the maintenance passes
    /// compare against this.
    pub checkpoint_every: u64,
    /// WAL bytes appended since the last checkpoint that also make one due
    /// (whichever threshold trips first). Zero disables the byte trigger.
    pub checkpoint_bytes: u64,
    /// Dead-record ratio above which a provider's segment store is
    /// compacted by [`DurableTier::compact_stores`].
    pub compact_dead_ratio: f64,
}

impl Default for DurableTierOptions {
    fn default() -> Self {
        DurableTierOptions {
            durability: Durability::default(),
            segment_bytes: 64 << 20,
            checkpoint_every: 4096,
            checkpoint_bytes: 16 << 20,
            compact_dead_ratio: 0.5,
        }
    }
}

/// One open durable directory: WAL + per-provider segment stores.
pub struct DurableTier {
    dir: PathBuf,
    options: DurableTierOptions,
    wal: Arc<MetaWal>,
    stores: Vec<Arc<SegmentStore>>,
}

impl DurableTier {
    /// Opens (creating if absent) a durable directory hosting `providers`
    /// segment stores, replaying the WAL and every segment file. Returns
    /// the tier and the recovered metadata image, its stats merged with
    /// the chunk-side recovery counters.
    pub fn open(
        dir: impl AsRef<Path>,
        providers: usize,
        options: DurableTierOptions,
    ) -> Result<(Self, RecoveredMetadata)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (wal, mut recovered) = MetaWal::open(dir.join("meta.wal"), options.durability)?;
        let seg_opts = SegmentStoreOptions {
            durability: options.durability,
            segment_bytes: options.segment_bytes,
        };
        let mut stores = Vec::with_capacity(providers);
        for idx in 0..providers {
            let store = SegmentStore::open(dir.join(format!("provider-{idx:04}")), seg_opts)?;
            let seg = store.recovery();
            recovered.stats.recovered_chunks += seg.recovered_chunks;
            recovered.stats.segment_truncated_bytes += seg.truncated_bytes;
            recovered.stats.corrupt_chunk_records += seg.corrupt_records;
            stores.push(Arc::new(store));
        }
        Ok((
            DurableTier {
                dir,
                options,
                wal: Arc::new(wal),
                stores,
            },
            recovered,
        ))
    }

    /// The directory this tier lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The tier's options.
    #[must_use]
    pub fn options(&self) -> DurableTierOptions {
        self.options
    }

    /// The metadata WAL.
    #[must_use]
    pub fn wal(&self) -> &Arc<MetaWal> {
        &self.wal
    }

    /// The per-provider segment stores, in provider index order.
    #[must_use]
    pub fn stores(&self) -> &[Arc<SegmentStore>] {
        &self.stores
    }

    /// Whether the WAL has accumulated enough records — or enough bytes —
    /// since the last checkpoint for a maintenance pass to take one. The
    /// record and byte triggers are independent so a durable cluster with
    /// the lifecycle engine disabled still bounds its replay cost.
    #[must_use]
    pub fn checkpoint_due(&self) -> bool {
        if self.wal.records_since_checkpoint() >= self.options.checkpoint_every {
            return true;
        }
        self.options.checkpoint_bytes > 0
            && self.wal.bytes_since_checkpoint() >= self.options.checkpoint_bytes
    }

    /// Takes a WAL checkpoint from the given live image (blobs from the
    /// version manager, nodes from the metadata store). Segment compaction
    /// is policy-driven and separate — see
    /// [`DurableTier::compact_stores`].
    pub fn checkpoint(
        &self,
        blobs: &[(BlobId, BlobConfig, Vec<SnapshotDescriptor>, Version)],
        nodes: Vec<(blobseer_meta::NodeKey, blobseer_meta::NodeBody)>,
    ) -> Result<()> {
        self.wal.checkpoint(blobs, nodes)
    }

    /// Compacts every segment store whose dead-record ratio has crossed
    /// `options.compact_dead_ratio`, returning the total
    /// `(segments_removed, bytes_reclaimed)`. Stores below the threshold
    /// are left alone — rewriting mostly-live segments would copy much and
    /// reclaim little.
    pub fn compact_stores(&self) -> Result<(u64, u64)> {
        let mut removed = 0u64;
        let mut reclaimed = 0u64;
        for store in &self.stores {
            if store.dead_ratio() >= self.options.compact_dead_ratio {
                let (segs, bytes) = store.compact()?;
                removed += segs;
                reclaimed += bytes;
            }
        }
        Ok((removed, reclaimed))
    }

    /// Merged recovery stats snapshot (WAL replay + chunk segments) — what
    /// the cold-restart figure and cluster stats report. Computed at open;
    /// the copy returned here is from the recovered image.
    #[must_use]
    pub fn recovery_stats_of(recovered: &RecoveredMetadata) -> RecoveryStats {
        recovered.stats
    }

    fn sync_stores(&self) -> Result<()> {
        for store in &self.stores {
            store.sync()?;
        }
        Ok(())
    }
}

impl Journal for DurableTier {
    fn record_create_blob(&self, blob: BlobId, config: &BlobConfig) -> Result<()> {
        self.wal.log_create_blob(blob, config)
    }

    fn record_commit(&self, blob: BlobId, descriptor: &SnapshotDescriptor) -> Result<()> {
        // Write-ahead ordering: the chunks and nodes of this version must
        // be durable before the record that publishes them. Under `Always`
        // every record was already synced; under `Buffered` the caller
        // opted out of syncing entirely.
        if self.options.durability == Durability::Commit {
            self.sync_stores()?;
        }
        self.wal.log_commit(blob, descriptor)
    }

    fn record_retire(&self, blob: BlobId, first_retained: Version) -> Result<()> {
        self.wal.log_retire(blob, first_retained)
    }

    fn record_flatten(&self, blob: BlobId, version: Version) -> Result<()> {
        self.wal.log_flatten(blob, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_provider::ChunkStore;
    use blobseer_types::wire::ChunkEnvelope;
    use blobseer_types::{BlobId as ChunkBlobId, ChunkId};
    use bytes::Bytes;

    fn chunk_id(tag: u64, slot: u64) -> ChunkId {
        ChunkId {
            blob: ChunkBlobId(1),
            write_tag: tag,
            slot,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "blobseer-persist-tier-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_creates_layout_and_recovers_chunks() {
        let dir = temp_dir("layout");
        let id = chunk_id(2, 3);
        {
            let (tier, recovered) =
                DurableTier::open(&dir, 2, DurableTierOptions::default()).unwrap();
            assert_eq!(recovered.stats.recovered_chunks, 0);
            tier.stores()[1]
                .put(id, ChunkEnvelope::verbatim(Bytes::from_static(b"payload")))
                .unwrap();
        }
        let (tier, recovered) = DurableTier::open(&dir, 2, DurableTierOptions::default()).unwrap();
        assert_eq!(recovered.stats.recovered_chunks, 1);
        assert!(tier.stores()[1].get(&id).unwrap().is_some());
        assert!(tier.stores()[0].get(&id).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_journal_survives_reopen() {
        let dir = temp_dir("journal");
        let config = BlobConfig::new(64, 1).unwrap();
        {
            let (tier, _) = DurableTier::open(&dir, 1, DurableTierOptions::default()).unwrap();
            tier.record_create_blob(BlobId(7), &config).unwrap();
            tier.record_commit(
                BlobId(7),
                &SnapshotDescriptor {
                    version: Version(1),
                    size: 64,
                    chunk_size: 64,
                    flat: false,
                },
            )
            .unwrap();
        }
        let (_, recovered) = DurableTier::open(&dir, 1, DurableTierOptions::default()).unwrap();
        assert_eq!(recovered.blobs.len(), 1);
        assert_eq!(recovered.blobs[0].id, BlobId(7));
        assert_eq!(recovered.blobs[0].published.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
