//! The metadata write-ahead log: an indexed append-only record of every
//! durable metadata mutation, with periodic checkpoints.
//!
//! Write-ahead ordering makes publication atomic: a writer's chunks land in
//! segment files and its tree nodes land here (`PutNodes`) *before* the
//! version manager's `Commit` record is appended — and the commit record is
//! appended (and, under [`Durability::Commit`], fsynced behind the chunk
//! segments) before the client's write is acknowledged. Recovery replays
//! the log, truncates any torn tail, applies the longest contiguous commit
//! prefix per blob, and drops every orphaned pre-commit record (nodes of
//! versions whose commit never made it).
//!
//! A checkpoint rewrites the log as a compacted image of the live state
//! (blobs, surviving nodes, commit prefix) via write-to-temp + fsync +
//! rename, so the log does not grow with history forever.

use crate::frame::{frame_record, scan};
use blobseer_meta::{MetadataStore, NodeBody, NodeKey, SnapshotDescriptor};
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobConfig, BlobError, BlobId, ChunkCodec, Durability, Result, Version};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Record kinds of the metadata WAL.
const KIND_CREATE_BLOB: u8 = 1;
const KIND_PUT_NODES: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_DELETE_NODES: u8 = 4;
const KIND_RETIRE: u8 = 5;
const KIND_FLATTEN: u8 = 6;

fn put_blob_config(w: &mut WireWriter, config: &BlobConfig) {
    w.put_u64(config.chunk_size);
    w.put_u64(config.replication as u64);
    w.put_u64(config.meta_retry.initial_delay_us);
    w.put_u64(config.meta_retry.max_delay_us);
    w.put_u32(config.meta_retry.max_attempts);
    match config.chunk_codec {
        None => w.put_u8(0),
        Some(ChunkCodec::Off) => w.put_u8(1),
        Some(ChunkCodec::Fast) => w.put_u8(2),
    }
}

fn get_blob_config(r: &mut WireReader<'_>) -> Result<BlobConfig> {
    let chunk_size = r.get_u64()?;
    let replication = r.get_u64()? as usize;
    let meta_retry = blobseer_types::RetryPolicy {
        initial_delay_us: r.get_u64()?,
        max_delay_us: r.get_u64()?,
        max_attempts: r.get_u32()?,
    };
    let chunk_codec = match r.get_u8()? {
        0 => None,
        1 => Some(ChunkCodec::Off),
        2 => Some(ChunkCodec::Fast),
        tag => {
            return Err(BlobError::Transport(format!(
                "wal: unknown chunk codec tag {tag}"
            )))
        }
    };
    Ok(BlobConfig {
        chunk_size,
        replication,
        meta_retry,
        chunk_codec,
    })
}

fn put_descriptor(w: &mut WireWriter, descriptor: &SnapshotDescriptor) {
    w.put(&descriptor.version);
    w.put_u64(descriptor.size);
    w.put_u64(descriptor.chunk_size);
    w.put_u8(u8::from(descriptor.flat));
}

fn get_descriptor(r: &mut WireReader<'_>) -> Result<SnapshotDescriptor> {
    Ok(SnapshotDescriptor {
        version: r.get()?,
        size: r.get_u64()?,
        chunk_size: r.get_u64()?,
        flat: r.get_u8()? != 0,
    })
}

/// One blob as the WAL knows it after replay.
#[derive(Debug, Clone)]
pub struct RecoveredBlob {
    /// The blob's id.
    pub id: BlobId,
    /// Creation-time configuration.
    pub config: BlobConfig,
    /// The contiguous published prefix, version 0's implicit descriptor
    /// included. Commits past a gap (torn publishes) are dropped.
    pub published: Vec<SnapshotDescriptor>,
    /// Lifecycle floor replayed from `Retire` records.
    pub first_retained: Version,
}

/// Counters describing one recovery pass (surfaced through cluster stats
/// and the cold-restart figure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records replayed (after tail truncation).
    pub wal_replayed_records: u64,
    /// Torn-tail bytes truncated from the WAL.
    pub wal_truncated_bytes: u64,
    /// Blobs restored.
    pub recovered_blobs: u64,
    /// Metadata nodes surviving replay and orphan filtering.
    pub recovered_nodes: u64,
    /// Pre-commit nodes dropped (their version's commit never landed).
    pub orphaned_nodes_dropped: u64,
    /// Commit records dropped for landing past a version gap.
    pub torn_commits_dropped: u64,
    /// Live chunks indexed across every provider's segment store.
    pub recovered_chunks: u64,
    /// Torn-tail bytes truncated across segment files.
    pub segment_truncated_bytes: u64,
    /// Corrupt (CRC-failing) segment records encountered.
    pub corrupt_chunk_records: u64,
}

/// Everything recovery reconstructed from the WAL, ready to install into a
/// fresh version manager and metadata store.
#[derive(Debug, Clone, Default)]
pub struct RecoveredMetadata {
    /// Restored blobs with their contiguous published prefixes.
    pub blobs: Vec<RecoveredBlob>,
    /// Surviving metadata nodes (orphans already dropped).
    pub nodes: Vec<(NodeKey, NodeBody)>,
    /// Replay counters (chunk-side fields still zero; the durable tier
    /// fills them in from its segment stores).
    pub stats: RecoveryStats,
}

#[derive(Debug)]
struct ReplayBlob {
    config: Option<BlobConfig>,
    commits: BTreeMap<u64, SnapshotDescriptor>,
    flattened: Vec<Version>,
    first_retained: Version,
}

impl Default for ReplayBlob {
    fn default() -> Self {
        ReplayBlob {
            config: None,
            commits: BTreeMap::new(),
            flattened: Vec::new(),
            first_retained: Version(0),
        }
    }
}

struct WalFile {
    file: File,
}

/// The append-only metadata log.
pub struct MetaWal {
    path: PathBuf,
    durability: Durability,
    inner: Mutex<WalFile>,
    records_since_checkpoint: AtomicU64,
    bytes_since_checkpoint: AtomicU64,
    checkpoints: AtomicU64,
    /// Set by [`MetaWal::seal`] at shutdown: every later append or
    /// checkpoint fails cleanly instead of racing the closing log.
    sealed: AtomicBool,
}

impl MetaWal {
    /// Opens (or creates) the WAL at `path`, replaying its records. The torn
    /// tail — everything at and past the first incomplete, CRC-failing or
    /// undecodable record — is physically truncated (a WAL cannot trust
    /// anything past the first unprovable record).
    pub fn open(
        path: impl AsRef<Path>,
        durability: Durability,
    ) -> Result<(Self, RecoveredMetadata)> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err.into()),
        };
        let outcome = scan(&raw);
        let mut blobs: BTreeMap<BlobId, ReplayBlob> = BTreeMap::new();
        let mut nodes: HashMap<NodeKey, NodeBody> = HashMap::new();
        let mut cut = outcome.valid_len;
        let mut replayed = 0u64;
        for record in &outcome.records {
            if !record.crc_ok {
                cut = record.span.start;
                break;
            }
            let payload = &raw[record.payload.clone()];
            if Self::apply_record(record.kind, payload, &mut blobs, &mut nodes).is_err() {
                cut = record.span.start;
                break;
            }
            replayed += 1;
        }
        let truncated = (raw.len() - cut) as u64;
        if (raw.len() as u64) > cut as u64 {
            // Keep the valid prefix; set_len below cuts only the torn tail.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            file.set_len(cut as u64)?;
            file.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut recovered = Self::finish_replay(blobs, nodes);
        recovered.stats.wal_replayed_records = replayed;
        recovered.stats.wal_truncated_bytes = truncated;
        Ok((
            MetaWal {
                path,
                durability,
                inner: Mutex::new(WalFile { file }),
                records_since_checkpoint: AtomicU64::new(replayed),
                // Seed with the surviving log length: a reopened WAL that is
                // already huge is as checkpoint-due as one that grew huge.
                bytes_since_checkpoint: AtomicU64::new(cut as u64),
                checkpoints: AtomicU64::new(0),
                sealed: AtomicBool::new(false),
            },
            recovered,
        ))
    }

    fn apply_record(
        kind: u8,
        payload: &[u8],
        blobs: &mut BTreeMap<BlobId, ReplayBlob>,
        nodes: &mut HashMap<NodeKey, NodeBody>,
    ) -> Result<()> {
        let mut r = WireReader::new(payload);
        match kind {
            KIND_CREATE_BLOB => {
                let id: BlobId = r.get()?;
                let config = get_blob_config(&mut r)?;
                r.expect_end()?;
                blobs.entry(id).or_default().config = Some(config);
            }
            KIND_PUT_NODES => {
                let batch: Vec<(NodeKey, NodeBody)> = r.get()?;
                r.expect_end()?;
                for (key, body) in batch {
                    nodes.insert(key, body);
                }
            }
            KIND_COMMIT => {
                let id: BlobId = r.get()?;
                let descriptor = get_descriptor(&mut r)?;
                r.expect_end()?;
                blobs
                    .entry(id)
                    .or_default()
                    .commits
                    .insert(descriptor.version.0, descriptor);
            }
            KIND_DELETE_NODES => {
                let keys: Vec<NodeKey> = r.get()?;
                r.expect_end()?;
                for key in keys {
                    nodes.remove(&key);
                }
            }
            KIND_RETIRE => {
                let id: BlobId = r.get()?;
                let first_retained: Version = r.get()?;
                r.expect_end()?;
                let entry = blobs.entry(id).or_default();
                entry.first_retained = entry.first_retained.max(first_retained);
            }
            KIND_FLATTEN => {
                let id: BlobId = r.get()?;
                let version: Version = r.get()?;
                r.expect_end()?;
                blobs.entry(id).or_default().flattened.push(version);
            }
            tag => {
                return Err(BlobError::Transport(format!(
                    "wal: unknown record kind {tag}"
                )))
            }
        }
        Ok(())
    }

    /// Applies prefix consistency and orphan filtering to the raw replay.
    fn finish_replay(
        blobs: BTreeMap<BlobId, ReplayBlob>,
        nodes: HashMap<NodeKey, NodeBody>,
    ) -> RecoveredMetadata {
        let mut out = RecoveredMetadata::default();
        let mut last_version: HashMap<BlobId, u64> = HashMap::new();
        for (id, replay) in blobs {
            // A blob whose create record is missing (pre-checkpoint
            // corruption) cannot be restored; its nodes become orphans.
            let Some(config) = replay.config else {
                continue;
            };
            let mut published = vec![SnapshotDescriptor::initial(config.chunk_size)];
            let mut next = 1u64;
            while let Some(descriptor) = replay.commits.get(&next) {
                published.push(*descriptor);
                next += 1;
            }
            out.stats.torn_commits_dropped += replay.commits.range(next..).count() as u64;
            for flattened in &replay.flattened {
                if let Some(descriptor) = published.get_mut(flattened.0 as usize) {
                    descriptor.flat = true;
                }
            }
            last_version.insert(id, next - 1);
            out.blobs.push(RecoveredBlob {
                id,
                config,
                published,
                first_retained: replay.first_retained,
            });
        }
        for (key, body) in nodes {
            match last_version.get(&key.blob) {
                Some(&last) if key.version.0 <= last => out.nodes.push((key, body)),
                // Orphaned pre-commit node: its write never published (or
                // its whole blob never committed to existence).
                _ => out.stats.orphaned_nodes_dropped += 1,
            }
        }
        out.stats.recovered_blobs = out.blobs.len() as u64;
        out.stats.recovered_nodes = out.nodes.len() as u64;
        out
    }

    /// Path of the backing log file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended (or replayed) since the last checkpoint — the
    /// trigger the durable tier's maintenance pass compares against its
    /// checkpoint threshold.
    #[must_use]
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint.load(Ordering::Relaxed)
    }

    /// Bytes appended (framing included) since the last checkpoint — the
    /// second trigger of the checkpoint policy. Seeded at open with the
    /// surviving log length, so replay cost is bounded in bytes too.
    #[must_use]
    pub fn bytes_since_checkpoint(&self) -> u64 {
        self.bytes_since_checkpoint.load(Ordering::Relaxed)
    }

    /// Seals the log for shutdown: every later append or checkpoint fails
    /// with a clean error instead of writing into a file that is being
    /// closed. Sealing is one-way and idempotent; in-flight appends holding
    /// the file lock finish untorn before the seal is observed.
    pub fn seal(&self) {
        // Take the file lock so a checkpoint or append in flight completes
        // (and its bytes are on their way to disk) before we flip the flag.
        let inner = self.inner.lock();
        self.sealed.store(true, Ordering::SeqCst);
        if self.durability != Durability::Buffered {
            let _ = inner.file.sync_data();
        }
    }

    /// Whether [`MetaWal::seal`] has been called.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::SeqCst)
    }

    /// Checkpoints taken since open.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    fn append(&self, kind: u8, payload: &[u8], sync: bool) -> Result<()> {
        let record = frame_record(kind, payload);
        let mut inner = self.inner.lock();
        if self.sealed.load(Ordering::SeqCst) {
            return Err(BlobError::Internal(
                "metadata WAL is sealed (shutting down)".into(),
            ));
        }
        inner.file.write_all(&record)?;
        if sync && self.durability != Durability::Buffered {
            inner.file.sync_data()?;
        }
        drop(inner);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        self.bytes_since_checkpoint
            .fetch_add(record.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn sync_every_record(&self) -> bool {
        self.durability == Durability::Always
    }

    /// Journals a blob creation. Synced before returning, whatever the
    /// policy short of `Buffered` — handing out a blob id that a restart
    /// forgets would let the next incarnation mint it twice.
    pub fn log_create_blob(&self, blob: BlobId, config: &BlobConfig) -> Result<()> {
        let mut w = WireWriter::new();
        w.put(&blob);
        put_blob_config(&mut w, config);
        self.append(KIND_CREATE_BLOB, &w.finish(), true)
    }

    /// Journals a batch of published tree nodes (before they reach the
    /// metadata store — the write-ahead half of publication).
    pub fn log_put_nodes(&self, nodes: &[(NodeKey, NodeBody)]) -> Result<()> {
        if nodes.is_empty() {
            return Ok(());
        }
        let mut w = WireWriter::new();
        w.put_u32(nodes.len() as u32);
        for (key, body) in nodes {
            w.put(key);
            w.put(body);
        }
        self.append(KIND_PUT_NODES, &w.finish(), self.sync_every_record())
    }

    /// Journals a version-manager commit: the publication point. Synced
    /// under every policy but `Buffered` — this is the record that makes a
    /// version durable, and it must land after the chunks and nodes it
    /// names (the caller syncs the chunk segments first).
    pub fn log_commit(&self, blob: BlobId, descriptor: &SnapshotDescriptor) -> Result<()> {
        let mut w = WireWriter::new();
        w.put(&blob);
        put_descriptor(&mut w, descriptor);
        self.append(KIND_COMMIT, &w.finish(), true)
    }

    /// Journals a sweeper delete so recovery does not resurrect swept nodes.
    pub fn log_delete_nodes(&self, keys: &[NodeKey]) -> Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        let mut w = WireWriter::new();
        w.put(&keys.to_vec());
        self.append(KIND_DELETE_NODES, &w.finish(), self.sync_every_record())
    }

    /// Journals a lifecycle retention floor so recovery does not resurrect
    /// retired versions.
    pub fn log_retire(&self, blob: BlobId, first_retained: Version) -> Result<()> {
        let mut w = WireWriter::new();
        w.put(&blob);
        w.put(&first_retained);
        self.append(KIND_RETIRE, &w.finish(), self.sync_every_record())
    }

    /// Journals a completed flatten so recovery restores the flat flag (and
    /// with it the one-batch read path) of the materialised version.
    pub fn log_flatten(&self, blob: BlobId, version: Version) -> Result<()> {
        let mut w = WireWriter::new();
        w.put(&blob);
        w.put(&version);
        self.append(KIND_FLATTEN, &w.finish(), self.sync_every_record())
    }

    /// Rewrites the log as a compacted image of the live state: temp file,
    /// fsync, atomic rename. Callers gather `blobs` from the version
    /// manager and `nodes` from the metadata store.
    pub fn checkpoint(
        &self,
        blobs: &[(BlobId, BlobConfig, Vec<SnapshotDescriptor>, Version)],
        nodes: Vec<(NodeKey, NodeBody)>,
    ) -> Result<()> {
        let tmp_path = self.path.with_extension("ckpt");
        let mut image: Vec<u8> = Vec::new();
        // Nodes land in the image *before* the publication records, for the
        // same reason live appends log metadata before the commit that
        // references it: recovery of any record-boundary prefix of the image
        // must never see a published version whose tree nodes are missing.
        if !nodes.is_empty() {
            let mut w = WireWriter::new();
            w.put_u32(nodes.len() as u32);
            for (key, body) in &nodes {
                w.put(key);
                w.put(body);
            }
            image.extend_from_slice(&frame_record(KIND_PUT_NODES, &w.finish()));
        }
        for (id, config, published, first_retained) in blobs {
            let mut w = WireWriter::new();
            w.put(id);
            put_blob_config(&mut w, config);
            image.extend_from_slice(&frame_record(KIND_CREATE_BLOB, &w.finish()));
            for descriptor in published.iter().filter(|d| d.version.0 > 0) {
                let mut w = WireWriter::new();
                w.put(id);
                put_descriptor(&mut w, descriptor);
                image.extend_from_slice(&frame_record(KIND_COMMIT, &w.finish()));
            }
            if first_retained.0 > 0 {
                let mut w = WireWriter::new();
                w.put(id);
                w.put(first_retained);
                image.extend_from_slice(&frame_record(KIND_RETIRE, &w.finish()));
            }
        }
        // Hold the file lock across the swap so no append lands in the old
        // file between rename and handle switch.
        let mut inner = self.inner.lock();
        if self.sealed.load(Ordering::SeqCst) {
            return Err(BlobError::Internal(
                "metadata WAL is sealed (shutting down)".into(),
            ));
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&image)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        if self.durability != Durability::Buffered {
            inner.file.sync_data()?;
        }
        drop(inner);
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        // Bytes count *appends* since the checkpoint — the compacted image
        // itself is the floor another checkpoint cannot shrink, so counting
        // it would loop the trigger forever on a large live state.
        self.bytes_since_checkpoint.store(0, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The version manager's durability hook: what it tells the durable tier at
/// each lifecycle-relevant transition. A RAM-resident deployment runs with
/// no journal at all; the durable tier implements this over its WAL and
/// segment stores.
pub trait Journal: Send + Sync {
    /// A blob was created (journaled before the creation is acknowledged).
    fn record_create_blob(&self, blob: BlobId, config: &BlobConfig) -> Result<()>;
    /// A version was published — the commit point. Implementations must
    /// make every preceding chunk and node of the version durable before
    /// this record (write-ahead ordering).
    fn record_commit(&self, blob: BlobId, descriptor: &SnapshotDescriptor) -> Result<()>;
    /// The retention floor moved.
    fn record_retire(&self, blob: BlobId, first_retained: Version) -> Result<()>;
    /// A version was materialised flat.
    fn record_flatten(&self, blob: BlobId, version: Version) -> Result<()>;
}

/// A [`MetadataStore`] that write-ahead-logs every mutation before handing
/// it to the wrapped store. Reads pass straight through.
pub struct WalMetaStore {
    inner: Arc<dyn MetadataStore>,
    wal: Arc<MetaWal>,
}

impl WalMetaStore {
    /// Wraps `inner` so every mutation hits `wal` first.
    pub fn new(inner: Arc<dyn MetadataStore>, wal: Arc<MetaWal>) -> Self {
        WalMetaStore { inner, wal }
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &Arc<dyn MetadataStore> {
        &self.inner
    }
}

impl MetadataStore for WalMetaStore {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        self.wal
            .log_put_nodes(std::slice::from_ref(&(key, body.clone())))?;
        self.inner.put_node(key, body)
    }

    fn get_node(&self, key: &NodeKey) -> Result<Option<NodeBody>> {
        self.inner.get_node(key)
    }

    fn get_nodes(&self, keys: &[NodeKey]) -> Result<Vec<Option<NodeBody>>> {
        self.inner.get_nodes(keys)
    }

    fn put_nodes(&self, nodes: Vec<(NodeKey, NodeBody)>) -> Result<()> {
        self.wal.log_put_nodes(&nodes)?;
        self.inner.put_nodes(nodes)
    }

    fn delete_nodes(&self, keys: &[NodeKey]) -> Result<usize> {
        self.wal.log_delete_nodes(keys)?;
        self.inner.delete_nodes(keys)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn snapshot_nodes(&self) -> Result<Vec<(NodeKey, NodeBody)>> {
        self.inner.snapshot_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_meta::LeafNode;
    use blobseer_types::ByteRange;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blobseer-persist-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("meta.wal")
    }

    fn node(blob: u64, version: u64, slot: u64) -> (NodeKey, NodeBody) {
        (
            NodeKey {
                blob: BlobId(blob),
                version: Version(version),
                range: ByteRange::new(slot * 64, 64),
            },
            NodeBody::Leaf(LeafNode::hole(BlobId(blob), slot)),
        )
    }

    fn descriptor(version: u64, size: u64) -> SnapshotDescriptor {
        SnapshotDescriptor {
            version: Version(version),
            size,
            chunk_size: 64,
            flat: false,
        }
    }

    #[test]
    fn replay_restores_blobs_nodes_and_commits() {
        let path = temp_wal("replay");
        let config = BlobConfig::new(64, 2).unwrap();
        {
            let (wal, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
            assert!(recovered.blobs.is_empty());
            wal.log_create_blob(BlobId(1), &config).unwrap();
            wal.log_put_nodes(&[node(1, 1, 0), node(1, 1, 1)]).unwrap();
            wal.log_commit(BlobId(1), &descriptor(1, 128)).unwrap();
        }
        let (_, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert_eq!(recovered.stats.wal_replayed_records, 3);
        assert_eq!(recovered.stats.recovered_blobs, 1);
        assert_eq!(recovered.stats.recovered_nodes, 2);
        assert_eq!(recovered.stats.orphaned_nodes_dropped, 0);
        let blob = &recovered.blobs[0];
        assert_eq!(blob.id, BlobId(1));
        assert_eq!(blob.config, config);
        assert_eq!(blob.published.len(), 2, "initial + committed v1");
        assert_eq!(blob.published[1], descriptor(1, 128));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn orphaned_pre_commit_nodes_are_dropped() {
        let path = temp_wal("orphans");
        {
            let (wal, _) = MetaWal::open(&path, Durability::Commit).unwrap();
            wal.log_create_blob(BlobId(1), &BlobConfig::default())
                .unwrap();
            wal.log_put_nodes(&[node(1, 1, 0)]).unwrap();
            wal.log_commit(BlobId(1), &descriptor(1, 64)).unwrap();
            // Version 2's nodes landed but its commit never did: a torn
            // publish.
            wal.log_put_nodes(&[node(1, 2, 0), node(1, 2, 1)]).unwrap();
        }
        let (_, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert_eq!(recovered.stats.orphaned_nodes_dropped, 2);
        assert_eq!(recovered.stats.recovered_nodes, 1);
        assert_eq!(recovered.blobs[0].published.len(), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn commits_past_a_gap_are_dropped() {
        let path = temp_wal("gap");
        {
            let (wal, _) = MetaWal::open(&path, Durability::Commit).unwrap();
            wal.log_create_blob(BlobId(1), &BlobConfig::default())
                .unwrap();
            wal.log_commit(BlobId(1), &descriptor(1, 64)).unwrap();
            // Version 2's commit is missing; version 3's somehow landed
            // (out-of-order append interleaving) — it must not publish.
            wal.log_commit(BlobId(1), &descriptor(3, 192)).unwrap();
        }
        let (_, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert_eq!(recovered.blobs[0].published.len(), 2);
        assert_eq!(recovered.stats.torn_commits_dropped, 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let path = temp_wal("torn");
        {
            let (wal, _) = MetaWal::open(&path, Durability::Commit).unwrap();
            wal.log_create_blob(BlobId(1), &BlobConfig::default())
                .unwrap();
            wal.log_commit(BlobId(1), &descriptor(1, 64)).unwrap();
        }
        // Crash mid-append: cut the file inside the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let (wal, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert!(recovered.stats.wal_truncated_bytes > 0);
        assert_eq!(recovered.blobs[0].published.len(), 1, "commit was torn");
        // The log still accepts appends after truncation.
        wal.log_commit(BlobId(1), &descriptor(1, 64)).unwrap();
        drop(wal);
        let (_, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert_eq!(recovered.blobs[0].published.len(), 2);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn deletes_and_retires_replay() {
        let path = temp_wal("lifecycle");
        {
            let (wal, _) = MetaWal::open(&path, Durability::Commit).unwrap();
            wal.log_create_blob(BlobId(1), &BlobConfig::default())
                .unwrap();
            wal.log_put_nodes(&[node(1, 1, 0), node(1, 1, 1)]).unwrap();
            wal.log_commit(BlobId(1), &descriptor(1, 64)).unwrap();
            wal.log_commit(BlobId(1), &descriptor(2, 128)).unwrap();
            wal.log_delete_nodes(&[node(1, 1, 1).0]).unwrap();
            wal.log_retire(BlobId(1), Version(2)).unwrap();
            wal.log_flatten(BlobId(1), Version(2)).unwrap();
        }
        let (_, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert_eq!(
            recovered.stats.recovered_nodes, 1,
            "deleted node stays dead"
        );
        assert_eq!(recovered.blobs[0].first_retained, Version(2));
        assert!(recovered.blobs[0].published[2].flat, "flatten replayed");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn checkpoint_compacts_and_replays_identically() {
        let path = temp_wal("checkpoint");
        let config = BlobConfig::default();
        let recovered_before;
        {
            let (wal, _) = MetaWal::open(&path, Durability::Commit).unwrap();
            wal.log_create_blob(BlobId(1), &config).unwrap();
            for v in 1..=5u64 {
                wal.log_put_nodes(&[node(1, v, 0)]).unwrap();
                wal.log_commit(BlobId(1), &descriptor(v, v * 64)).unwrap();
            }
            assert!(wal.records_since_checkpoint() >= 11);
            let published: Vec<SnapshotDescriptor> =
                std::iter::once(SnapshotDescriptor::initial(config.chunk_size))
                    .chain((1..=5u64).map(|v| descriptor(v, v * 64)))
                    .collect();
            let nodes: Vec<(NodeKey, NodeBody)> = (1..=5u64).map(|v| node(1, v, 0)).collect();
            wal.checkpoint(&[(BlobId(1), config, published, Version(0))], nodes)
                .unwrap();
            assert_eq!(wal.records_since_checkpoint(), 0);
            assert_eq!(wal.checkpoints(), 1);
            // Post-checkpoint appends extend the compacted log.
            wal.log_put_nodes(&[node(1, 6, 0)]).unwrap();
            wal.log_commit(BlobId(1), &descriptor(6, 384)).unwrap();
            let (_, r) = MetaWal::open(&path, Durability::Commit).unwrap();
            recovered_before = r;
        }
        assert_eq!(recovered_before.blobs[0].published.len(), 7);
        assert_eq!(recovered_before.stats.recovered_nodes, 6);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn byte_counter_tracks_appends_and_resets_on_checkpoint() {
        let path = temp_wal("bytes");
        let (wal, _) = MetaWal::open(&path, Durability::Buffered).unwrap();
        assert_eq!(wal.bytes_since_checkpoint(), 0);
        wal.log_create_blob(BlobId(1), &BlobConfig::default())
            .unwrap();
        wal.log_commit(BlobId(1), &descriptor(1, 64)).unwrap();
        let grown = wal.bytes_since_checkpoint();
        assert!(grown > 0, "appends must advance the byte counter");
        wal.checkpoint(
            &[(
                BlobId(1),
                BlobConfig::default(),
                vec![
                    SnapshotDescriptor::initial(BlobConfig::default().chunk_size),
                    descriptor(1, 64),
                ],
                Version(0),
            )],
            Vec::new(),
        )
        .unwrap();
        assert_eq!(
            wal.bytes_since_checkpoint(),
            0,
            "the compacted image is the floor — only fresh appends count"
        );
        drop(wal);
        // Reopening seeds the counter with the surviving log length, so an
        // already-large log reads as checkpoint-due in bytes too.
        let (wal, _) = MetaWal::open(&path, Durability::Buffered).unwrap();
        assert!(wal.bytes_since_checkpoint() > 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn sealed_wal_fails_appends_and_checkpoints_cleanly() {
        let path = temp_wal("seal");
        let (wal, _) = MetaWal::open(&path, Durability::Commit).unwrap();
        wal.log_create_blob(BlobId(1), &BlobConfig::default())
            .unwrap();
        wal.seal();
        assert!(wal.is_sealed());
        let err = wal
            .log_commit(BlobId(1), &descriptor(1, 64))
            .expect_err("append after seal must fail");
        assert!(matches!(err, BlobError::Internal(_)));
        assert!(wal.checkpoint(&[], Vec::new()).is_err());
        // The records before the seal survive untorn.
        let (_, recovered) = MetaWal::open(&path, Durability::Commit).unwrap();
        assert_eq!(recovered.blobs.len(), 1);
        assert_eq!(recovered.stats.wal_truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
