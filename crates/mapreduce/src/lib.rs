//! A minimal MapReduce engine with pluggable storage backends.
//!
//! Section IV.D of the paper evaluates BlobSeer as the storage layer of
//! Hadoop MapReduce. This crate provides the MapReduce substrate for that
//! experiment: a small but complete map/shuffle/reduce engine whose storage
//! layer is a trait ([`storage::JobStorage`]) implemented both by BSFS (the
//! BlobSeer-backed file system) and by the HDFS-like baseline, so identical
//! jobs can be run against either backend.
//!
//! The engine follows Hadoop's structure: inputs are cut into byte-range
//! *splits* annotated with the location of their data, map tasks process the
//! records of one split each (running in parallel on a pool of workers and
//! preferring data-local placement), the shuffle groups intermediate pairs
//! by key, and reduce tasks aggregate each key group and write one output
//! partition each.

pub mod engine;
pub mod jobs;
pub mod storage;

pub use engine::{JobReport, JobSpec, MapReduceEngine, Mapper, Reducer};
pub use jobs::{grep_job, sort_job, wordcount_job};
pub use storage::{BsfsStorage, HdfsStorage, JobStorage};
