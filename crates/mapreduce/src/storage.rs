//! The storage abstraction the MapReduce engine runs against, and its two
//! implementations: BSFS (BlobSeer) and the HDFS-like baseline.

use blobseer_bsfs::Bsfs;
use blobseer_hdfs::HdfsLikeFs;
use blobseer_types::{BlobSlice, ByteRange, ProviderId, Result};
use bytes::Bytes;
use std::sync::Arc;

/// One input split: a byte range of an input file plus the storage nodes
/// holding the data at its start (for locality-aware task placement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Input file the split belongs to.
    pub path: String,
    /// Byte range of the split.
    pub range: ByteRange,
    /// Storage nodes holding the split's leading data.
    pub locations: Vec<ProviderId>,
}

/// What the MapReduce engine needs from a file system.
pub trait JobStorage: Send + Sync {
    /// Cuts an input file into splits of roughly `split_bytes` bytes.
    fn input_splits(&self, path: &str, split_bytes: u64) -> Result<Vec<InputSplit>>;

    /// Reads a byte range of a file.
    fn read_range(&self, path: &str, range: ByteRange) -> Result<Vec<u8>>;

    /// Reads a byte range of a file as a scatter-gather [`BlobSlice`]. The
    /// map-task record reader consumes the segments directly, so backends
    /// that can serve zero-copy views of their stored chunks (both BSFS and
    /// the HDFS-like baseline can) never flatten split payloads. The default
    /// wraps [`JobStorage::read_range`] for backends without a slice path.
    fn read_range_slice(&self, path: &str, range: ByteRange) -> Result<BlobSlice> {
        Ok(BlobSlice::from_bytes(Bytes::from(
            self.read_range(path, range)?,
        )))
    }

    /// Size of a file.
    fn file_size(&self, path: &str) -> Result<u64>;

    /// Creates an (empty) output file.
    fn create_file(&self, path: &str) -> Result<()>;

    /// Appends data to an output file.
    fn append(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Reads a whole file (used by tests and by jobs that post-process their
    /// own output).
    fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        let size = self.file_size(path)?;
        self.read_range(path, ByteRange::new(0, size))
    }
}

/// BSFS (BlobSeer-backed) storage backend.
pub struct BsfsStorage {
    fs: Arc<Bsfs>,
}

impl BsfsStorage {
    /// Wraps a BSFS mount.
    pub fn new(fs: Arc<Bsfs>) -> Self {
        BsfsStorage { fs }
    }

    /// The wrapped file system.
    pub fn fs(&self) -> &Arc<Bsfs> {
        &self.fs
    }
}

impl JobStorage for BsfsStorage {
    fn input_splits(&self, path: &str, split_bytes: u64) -> Result<Vec<InputSplit>> {
        Ok(self
            .fs
            .input_splits(path, split_bytes)?
            .into_iter()
            .map(|(range, locations)| InputSplit {
                path: path.to_string(),
                range,
                locations,
            })
            .collect())
    }

    fn read_range(&self, path: &str, range: ByteRange) -> Result<Vec<u8>> {
        self.fs.read_at(path, range.offset, range.len)
    }

    fn read_range_slice(&self, path: &str, range: ByteRange) -> Result<BlobSlice> {
        self.fs.read_at_bytes(path, range.offset, range.len)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.fs.file_size(path)
    }

    fn create_file(&self, path: &str) -> Result<()> {
        if let Some(parent) = path.rfind('/') {
            if parent > 0 {
                self.fs.create_dir_all(&path[..parent])?;
            }
        }
        self.fs.create_file(path)
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.fs.append(path, data)
    }
}

/// HDFS-like baseline storage backend.
pub struct HdfsStorage {
    fs: Arc<HdfsLikeFs>,
}

impl HdfsStorage {
    /// Wraps an HDFS-like deployment.
    pub fn new(fs: Arc<HdfsLikeFs>) -> Self {
        HdfsStorage { fs }
    }

    /// The wrapped file system.
    pub fn fs(&self) -> &Arc<HdfsLikeFs> {
        &self.fs
    }
}

impl JobStorage for HdfsStorage {
    fn input_splits(&self, path: &str, split_bytes: u64) -> Result<Vec<InputSplit>> {
        let size = self.fs.file_size(path)?;
        let blocks = self.fs.block_locations(path)?;
        let mut splits = Vec::new();
        let mut offset = 0;
        while offset < size {
            let len = split_bytes.min(size - offset);
            let locations = blocks
                .iter()
                .find(|(start, blen, _)| offset >= *start && offset < start + blen)
                .map(|(_, _, nodes)| nodes.clone())
                .unwrap_or_default();
            splits.push(InputSplit {
                path: path.to_string(),
                range: ByteRange::new(offset, len),
                locations,
            });
            offset += len;
        }
        Ok(splits)
    }

    fn read_range(&self, path: &str, range: ByteRange) -> Result<Vec<u8>> {
        self.fs.read_at(path, range.offset, range.len)
    }

    fn read_range_slice(&self, path: &str, range: ByteRange) -> Result<BlobSlice> {
        self.fs.read_at_bytes(path, range.offset, range.len)
    }

    fn file_size(&self, path: &str) -> Result<u64> {
        self.fs.file_size(path)
    }

    fn create_file(&self, path: &str) -> Result<()> {
        self.fs.create_file(path)
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.fs.append(path, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_core::Cluster;
    use blobseer_types::{BlobConfig, ClusterConfig};

    fn bsfs_storage() -> BsfsStorage {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let fs = Bsfs::new(Arc::new(cluster.client()), BlobConfig::new(64, 1).unwrap()).unwrap();
        BsfsStorage::new(Arc::new(fs))
    }

    fn hdfs_storage() -> HdfsStorage {
        HdfsStorage::new(Arc::new(HdfsLikeFs::new(4, 128, 1).unwrap()))
    }

    fn exercise(storage: &dyn JobStorage) {
        storage.create_file("/out/data").unwrap();
        storage.append("/out/data", &vec![b'x'; 500]).unwrap();
        assert_eq!(storage.file_size("/out/data").unwrap(), 500);
        let splits = storage.input_splits("/out/data", 200).unwrap();
        assert_eq!(splits.len(), 3);
        let covered: u64 = splits.iter().map(|s| s.range.len).sum();
        assert_eq!(covered, 500);
        assert!(splits.iter().all(|s| !s.locations.is_empty()));
        let body = storage
            .read_range("/out/data", ByteRange::new(100, 50))
            .unwrap();
        assert_eq!(body, vec![b'x'; 50]);
        assert_eq!(storage.read_file("/out/data").unwrap().len(), 500);
    }

    #[test]
    fn bsfs_backend_implements_the_contract() {
        exercise(&bsfs_storage());
    }

    #[test]
    fn hdfs_backend_implements_the_contract() {
        exercise(&hdfs_storage());
    }
}
