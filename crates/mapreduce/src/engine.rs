//! The map/shuffle/reduce engine.

use crate::storage::{InputSplit, JobStorage};
use blobseer_types::{BlobError, ByteRange, Result};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// A map function: turns one input record (a text line, without its
/// terminating newline) into any number of key/value pairs.
pub type Mapper = Arc<dyn Fn(&str) -> Vec<(String, String)> + Send + Sync>;

/// A reduce function: folds all the values of one key into one output value.
pub type Reducer = Arc<dyn Fn(&str, &[String]) -> String + Send + Sync>;

/// Description of one MapReduce job.
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable name (used in output paths and reports).
    pub name: String,
    /// Input files.
    pub inputs: Vec<String>,
    /// Directory the output partitions are written under.
    pub output_dir: String,
    /// Number of reduce tasks (= output partitions).
    pub reducers: usize,
    /// Target size of one input split in bytes.
    pub split_bytes: u64,
    /// The map function.
    pub mapper: Mapper,
    /// The reduce function.
    pub reducer: Reducer,
}

/// Statistics of one executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Input bytes read by map tasks.
    pub input_bytes: u64,
    /// Output bytes written by reduce tasks.
    pub output_bytes: u64,
    /// Intermediate key/value pairs produced by the map phase.
    pub intermediate_pairs: u64,
    /// Map tasks whose split had at least one known data location (a proxy
    /// for the locality information BSFS exposes and HDFS also provides).
    pub tasks_with_locality: usize,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
    /// Paths of the output partition files.
    pub outputs: Vec<String>,
}

/// The MapReduce engine: a storage backend plus a worker pool size.
pub struct MapReduceEngine {
    storage: Arc<dyn JobStorage>,
    workers: usize,
}

impl MapReduceEngine {
    /// Creates an engine over `storage` using `workers` parallel map (and
    /// reduce) workers.
    pub fn new(storage: Arc<dyn JobStorage>, workers: usize) -> Self {
        MapReduceEngine {
            storage,
            workers: workers.max(1),
        }
    }

    /// Runs a job to completion and returns its report.
    pub fn run(&self, job: &JobSpec) -> Result<JobReport> {
        if job.inputs.is_empty() {
            return Err(BlobError::InvalidConfig(
                "a job needs at least one input".into(),
            ));
        }
        if job.reducers == 0 {
            return Err(BlobError::InvalidConfig(
                "a job needs at least one reducer".into(),
            ));
        }
        if job.split_bytes == 0 {
            return Err(BlobError::InvalidConfig(
                "split size must be positive".into(),
            ));
        }
        let started = Instant::now();

        // Plan: cut every input into splits.
        let mut splits = Vec::new();
        for input in &job.inputs {
            splits.extend(self.storage.input_splits(input, job.split_bytes)?);
        }
        let tasks_with_locality = splits.iter().filter(|s| !s.locations.is_empty()).count();

        // Map phase: run splits on the worker pool.
        let map_outputs = self.run_map_phase(job, &splits)?;
        let input_bytes: u64 = splits.iter().map(|s| s.range.len).sum();
        let intermediate_pairs: u64 = map_outputs.iter().map(|p| p.len() as u64).sum();

        // Shuffle: partition by key hash, then group values per key.
        let mut partitions: Vec<BTreeMap<String, Vec<String>>> =
            (0..job.reducers).map(|_| BTreeMap::new()).collect();
        for pairs in map_outputs {
            for (key, value) in pairs {
                let partition = (hash_key(&key) % job.reducers as u64) as usize;
                partitions[partition].entry(key).or_default().push(value);
            }
        }

        // Reduce phase: one output partition per reducer.
        let reduce_results = self.run_reduce_phase(job, partitions)?;
        let mut outputs = Vec::with_capacity(job.reducers);
        let mut output_bytes = 0u64;
        for (index, body) in reduce_results.into_iter().enumerate() {
            let path = format!("{}/{}-part-{index:05}", job.output_dir, job.name);
            self.storage.create_file(&path)?;
            if !body.is_empty() {
                self.storage.append(&path, body.as_bytes())?;
            }
            output_bytes += body.len() as u64;
            outputs.push(path);
        }

        Ok(JobReport {
            name: job.name.clone(),
            map_tasks: splits.len(),
            reduce_tasks: job.reducers,
            input_bytes,
            output_bytes,
            intermediate_pairs,
            tasks_with_locality,
            elapsed: started.elapsed(),
            outputs,
        })
    }

    /// Runs every split through the mapper, in parallel batches of
    /// `self.workers` tasks.
    fn run_map_phase(
        &self,
        job: &JobSpec,
        splits: &[InputSplit],
    ) -> Result<Vec<Vec<(String, String)>>> {
        let mut all = Vec::with_capacity(splits.len());
        for batch in splits.chunks(self.workers.max(1)) {
            let mut batch_results: Vec<Result<Vec<(String, String)>>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for split in batch {
                    let storage = Arc::clone(&self.storage);
                    let mapper = Arc::clone(&job.mapper);
                    handles
                        .push(scope.spawn(move || run_map_task(storage.as_ref(), &mapper, split)));
                }
                for handle in handles {
                    batch_results.push(handle.join().expect("map task panicked"));
                }
            });
            for result in batch_results {
                all.push(result?);
            }
        }
        Ok(all)
    }

    /// Runs the reducers in parallel and returns one output body per
    /// partition.
    fn run_reduce_phase(
        &self,
        job: &JobSpec,
        partitions: Vec<BTreeMap<String, Vec<String>>>,
    ) -> Result<Vec<String>> {
        let mut bodies = vec![String::new(); partitions.len()];
        for (batch_start, batch) in partitions
            .chunks(self.workers.max(1))
            .enumerate()
            .map(|(i, b)| (i * self.workers.max(1), b))
        {
            let mut batch_results: Vec<(usize, String)> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (offset, partition) in batch.iter().enumerate() {
                    let reducer = Arc::clone(&job.reducer);
                    handles.push(scope.spawn(move || {
                        let mut body = String::new();
                        for (key, values) in partition {
                            let reduced = reducer(key, values);
                            body.push_str(key);
                            body.push('\t');
                            body.push_str(&reduced);
                            body.push('\n');
                        }
                        (batch_start + offset, body)
                    }));
                }
                for handle in handles {
                    batch_results.push(handle.join().expect("reduce task panicked"));
                }
            });
            for (index, body) in batch_results {
                bodies[index] = body;
            }
        }
        Ok(bodies)
    }
}

/// Executes one map task: reads the split, reassembles line records across
/// the split boundary (a record belongs to the split its first byte falls
/// in), and applies the mapper to every record.
///
/// The split payload arrives as a scatter-gather slice and is consumed
/// segment by segment: records fully inside one segment are parsed in place
/// on the chunk the storage layer handed back, and only the rare record
/// spanning a segment boundary is stitched through a small carry buffer —
/// the split is never flattened into one contiguous allocation.
fn run_map_task(
    storage: &dyn JobStorage,
    mapper: &Mapper,
    split: &InputSplit,
) -> Result<Vec<(String, String)>> {
    let file_size = storage.file_size(&split.path)?;
    // Hadoop's line-record rule: a split with a non-zero offset starts
    // reading one byte early and skips everything up to and including the
    // first newline; it then owns every record whose first byte lies before
    // the split's end, reading past the end to finish the last record.
    let read_start = split.range.offset.saturating_sub(1);
    let lookahead = 64 * 1024;
    let read_len = (split.range.end() - read_start + lookahead).min(file_size - read_start);
    let data = storage.read_range_slice(&split.path, ByteRange::new(read_start, read_len))?;

    // Records starting at or past `limit` belong to the next split.
    let limit = split.range.end() - read_start;
    let mut pairs = Vec::new();
    let mut skipping = split.range.offset > 0;
    let mut carry: Vec<u8> = Vec::new();
    let mut carry_start = 0u64;
    let mut seg_start = 0u64;
    let emit = |line: &[u8]| {
        let line = String::from_utf8_lossy(line);
        if !line.is_empty() {
            mapper(&line)
        } else {
            Vec::new()
        }
    };
    'segments: for seg in data.iter_filled() {
        let mut pos = 0usize;
        while pos < seg.len() {
            let Some(nl) = seg[pos..].iter().position(|&b| b == b'\n') else {
                // The record continues into the next segment (or is the
                // unterminated tail): carry the fragment over.
                if !skipping {
                    if carry.is_empty() {
                        carry_start = seg_start + pos as u64;
                    }
                    carry.extend_from_slice(&seg[pos..]);
                }
                break;
            };
            let line_end = pos + nl;
            if skipping {
                skipping = false;
            } else {
                let line_start = if carry.is_empty() {
                    seg_start + pos as u64
                } else {
                    carry_start
                };
                if line_start >= limit {
                    carry.clear();
                    break 'segments;
                }
                if carry.is_empty() {
                    pairs.extend(emit(&seg[pos..line_end]));
                } else {
                    carry.extend_from_slice(&seg[pos..line_end]);
                    let stitched = std::mem::take(&mut carry);
                    pairs.extend(emit(&stitched));
                }
            }
            pos = line_end + 1;
        }
        seg_start += seg.len() as u64;
    }
    // The unterminated trailing record, if this split owns it.
    if !skipping && !carry.is_empty() && carry_start < limit {
        pairs.extend(emit(&carry));
    }
    Ok(pairs)
}

fn hash_key(key: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::BsfsStorage;
    use blobseer_bsfs::Bsfs;
    use blobseer_core::Cluster;
    use blobseer_types::{BlobConfig, ClusterConfig};
    use std::collections::HashMap;

    fn storage() -> Arc<dyn JobStorage> {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let fs = Bsfs::new(Arc::new(cluster.client()), BlobConfig::new(256, 1).unwrap()).unwrap();
        Arc::new(BsfsStorage::new(Arc::new(fs)))
    }

    fn wordcount_spec(inputs: Vec<String>, reducers: usize, split_bytes: u64) -> JobSpec {
        JobSpec {
            name: "wc".into(),
            inputs,
            output_dir: "/out".into(),
            reducers,
            split_bytes,
            mapper: Arc::new(|line: &str| {
                line.split_whitespace()
                    .map(|w| (w.to_lowercase(), "1".to_string()))
                    .collect()
            }),
            reducer: Arc::new(|_k: &str, values: &[String]| values.len().to_string()),
        }
    }

    fn load_counts(storage: &dyn JobStorage, report: &JobReport) -> HashMap<String, u64> {
        let mut counts = HashMap::new();
        for path in &report.outputs {
            let body = storage.read_file(path).unwrap();
            for line in String::from_utf8(body).unwrap().lines() {
                let (word, count) = line.split_once('\t').unwrap();
                counts.insert(word.to_string(), count.parse().unwrap());
            }
        }
        counts
    }

    #[test]
    fn wordcount_end_to_end() {
        let storage = storage();
        storage.create_file("/in/a.txt").unwrap();
        storage
            .append(
                "/in/a.txt",
                b"the quick brown fox\njumps over the lazy dog\nthe end\n",
            )
            .unwrap();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 4);
        let report = engine
            .run(&wordcount_spec(vec!["/in/a.txt".into()], 3, 20))
            .unwrap();
        assert!(
            report.map_tasks >= 2,
            "small splits must create several map tasks"
        );
        assert_eq!(report.reduce_tasks, 3);
        assert_eq!(report.outputs.len(), 3);
        assert!(report.input_bytes >= 50);
        assert!(report.intermediate_pairs >= 11);

        let counts = load_counts(storage.as_ref(), &report);
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["quick"], 1);
        assert_eq!(counts["dog"], 1);
        let total: u64 = counts.values().sum();
        assert_eq!(total, 11, "every word is counted exactly once");
    }

    #[test]
    fn records_straddling_split_boundaries_are_counted_once() {
        let storage = storage();
        storage.create_file("/in/long.txt").unwrap();
        // 100 identical 23-byte lines; with 64-byte splits almost every
        // record straddles a boundary.
        let line = "alpha beta gamma delta\n";
        let body: String = std::iter::repeat_n(line, 100).collect();
        storage.append("/in/long.txt", body.as_bytes()).unwrap();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 4);
        let report = engine
            .run(&wordcount_spec(vec!["/in/long.txt".into()], 2, 64))
            .unwrap();
        let counts = load_counts(storage.as_ref(), &report);
        assert_eq!(counts["alpha"], 100);
        assert_eq!(counts["beta"], 100);
        assert_eq!(counts["delta"], 100);
    }

    #[test]
    fn multiple_inputs_are_combined() {
        let storage = storage();
        for (i, text) in ["x y\n", "y z\n"].iter().enumerate() {
            let path = format!("/in/f{i}.txt");
            storage.create_file(&path).unwrap();
            storage.append(&path, text.as_bytes()).unwrap();
        }
        let engine = MapReduceEngine::new(Arc::clone(&storage), 2);
        let report = engine
            .run(&wordcount_spec(
                vec!["/in/f0.txt".into(), "/in/f1.txt".into()],
                1,
                1024,
            ))
            .unwrap();
        let counts = load_counts(storage.as_ref(), &report);
        assert_eq!(counts["y"], 2);
        assert_eq!(counts["x"], 1);
        assert_eq!(counts["z"], 1);
        assert_eq!(report.map_tasks, 2);
    }

    #[test]
    fn locality_information_is_reported() {
        let storage = storage();
        storage.create_file("/in/a.txt").unwrap();
        storage.append("/in/a.txt", &vec![b'a'; 2048]).unwrap();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 2);
        let report = engine
            .run(&wordcount_spec(vec!["/in/a.txt".into()], 1, 512))
            .unwrap();
        assert_eq!(report.map_tasks, 4);
        assert_eq!(
            report.tasks_with_locality, 4,
            "BSFS exposes chunk locations for every split"
        );
    }

    #[test]
    fn invalid_job_specs_are_rejected() {
        let storage = storage();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 2);
        assert!(engine.run(&wordcount_spec(vec![], 1, 64)).is_err());
        assert!(engine
            .run(&wordcount_spec(vec!["/in/a".into()], 0, 64))
            .is_err());
        assert!(engine
            .run(&wordcount_spec(vec!["/in/a".into()], 1, 0))
            .is_err());
        // Missing input file surfaces as an error from the storage layer.
        assert!(engine
            .run(&wordcount_spec(vec!["/in/missing".into()], 1, 64))
            .is_err());
    }
}
