//! Ready-made MapReduce jobs: word count, grep and sort — the synthetic and
//! "real application" workloads used by the Hadoop experiments (Section
//! IV.D).

use crate::engine::JobSpec;
use std::sync::Arc;

/// Classic word count: one output line per distinct word with its number of
/// occurrences.
#[must_use]
pub fn wordcount_job(
    inputs: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_bytes: u64,
) -> JobSpec {
    JobSpec {
        name: "wordcount".into(),
        inputs,
        output_dir: output_dir.to_string(),
        reducers,
        split_bytes,
        mapper: Arc::new(|line: &str| {
            line.split_whitespace()
                .map(|w| {
                    (
                        w.trim_matches(|c: char| !c.is_alphanumeric())
                            .to_lowercase(),
                        "1".to_string(),
                    )
                })
                .filter(|(w, _)| !w.is_empty())
                .collect()
        }),
        reducer: Arc::new(|_key: &str, values: &[String]| values.len().to_string()),
    }
}

/// Distributed grep: emits every line containing `pattern`, keyed by the
/// input line itself, with the match count as the value.
#[must_use]
pub fn grep_job(
    inputs: Vec<String>,
    output_dir: &str,
    pattern: &str,
    reducers: usize,
    split_bytes: u64,
) -> JobSpec {
    let needle = pattern.to_string();
    JobSpec {
        name: "grep".into(),
        inputs,
        output_dir: output_dir.to_string(),
        reducers,
        split_bytes,
        mapper: Arc::new(move |line: &str| {
            if line.contains(&needle) {
                vec![(line.to_string(), "1".to_string())]
            } else {
                Vec::new()
            }
        }),
        reducer: Arc::new(|_key: &str, values: &[String]| values.len().to_string()),
    }
}

/// Distributed sort: keys are the records themselves, so each output
/// partition comes out sorted (the engine's shuffle uses ordered maps); the
/// value counts duplicates.
#[must_use]
pub fn sort_job(
    inputs: Vec<String>,
    output_dir: &str,
    reducers: usize,
    split_bytes: u64,
) -> JobSpec {
    JobSpec {
        name: "sort".into(),
        inputs,
        output_dir: output_dir.to_string(),
        reducers,
        split_bytes,
        mapper: Arc::new(|line: &str| vec![(line.to_string(), "1".to_string())]),
        reducer: Arc::new(|_key: &str, values: &[String]| values.len().to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MapReduceEngine;
    use crate::storage::{BsfsStorage, JobStorage};
    use blobseer_bsfs::Bsfs;
    use blobseer_core::Cluster;
    use blobseer_types::{BlobConfig, ClusterConfig};

    fn storage_with_corpus() -> Arc<dyn JobStorage> {
        let cluster = Cluster::new(ClusterConfig::small()).unwrap();
        let fs = Bsfs::new(Arc::new(cluster.client()), BlobConfig::new(256, 1).unwrap()).unwrap();
        let storage: Arc<dyn JobStorage> = Arc::new(BsfsStorage::new(Arc::new(fs)));
        storage.create_file("/corpus/text").unwrap();
        storage
            .append(
                "/corpus/text",
                b"error: disk failed\nall good here\nerror: network down\nzebra\napple\nmango\n",
            )
            .unwrap();
        storage
    }

    #[test]
    fn grep_finds_only_matching_lines() {
        let storage = storage_with_corpus();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 2);
        let job = grep_job(vec!["/corpus/text".into()], "/out", "error", 1, 64);
        let report = engine.run(&job).unwrap();
        let body = String::from_utf8(storage.read_file(&report.outputs[0]).unwrap()).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.contains("error: disk failed"));
        assert!(body.contains("error: network down"));
        assert!(!body.contains("all good"));
    }

    #[test]
    fn sort_produces_ordered_partitions() {
        let storage = storage_with_corpus();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 2);
        let job = sort_job(vec!["/corpus/text".into()], "/out", 1, 1024);
        let report = engine.run(&job).unwrap();
        let body = String::from_utf8(storage.read_file(&report.outputs[0]).unwrap()).unwrap();
        let keys: Vec<&str> = body
            .lines()
            .map(|l| l.split('\t').next().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "partition output must be sorted");
        assert!(keys.contains(&"apple"));
        assert!(keys.contains(&"zebra"));
    }

    #[test]
    fn wordcount_job_strips_punctuation() {
        let storage = storage_with_corpus();
        let engine = MapReduceEngine::new(Arc::clone(&storage), 2);
        let job = wordcount_job(vec!["/corpus/text".into()], "/out", 2, 1024);
        let report = engine.run(&job).unwrap();
        let mut all = String::new();
        for path in &report.outputs {
            all.push_str(&String::from_utf8(storage.read_file(path).unwrap()).unwrap());
        }
        // "error:" appears twice but is normalised to "error".
        assert!(all.lines().any(|l| l == "error\t2"));
        assert!(all.lines().any(|l| l == "apple\t1"));
    }
}
