//! Simulated time and FIFO byte-server resources.
//!
//! A [`Resource`] models one contention point of the cluster — a node's NIC
//! direction, a metadata provider's request processor, the version manager's
//! CPU. Requests are served first-come-first-served at a fixed byte rate
//! plus a fixed per-request latency; the resource remembers when it will
//! next be free, which is all a queueing simulation at this granularity
//! needs.

/// Simulated time in nanoseconds since the start of the run.
pub type SimTime = u64;

/// Nanoseconds per second, for converting bandwidths and printing results.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A FIFO server with a fixed per-request latency and a byte-proportional
/// service time.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name, used in utilisation reports.
    name: String,
    /// Service rate in bytes per second (0 means "infinitely fast", only the
    /// latency applies).
    bandwidth_bps: u64,
    /// Fixed cost added to every request, in nanoseconds.
    latency_ns: u64,
    /// Time at which the server becomes idle again.
    next_free: SimTime,
    /// Total busy time accumulated, for utilisation reporting.
    busy_ns: u64,
    /// Number of requests served.
    requests: u64,
    /// Total bytes served.
    bytes: u64,
}

impl Resource {
    /// Creates a resource with the given service rate and per-request
    /// latency.
    #[must_use]
    pub fn new(name: impl Into<String>, bandwidth_bps: u64, latency_ns: u64) -> Self {
        Resource {
            name: name.into(),
            bandwidth_bps,
            latency_ns,
            next_free: 0,
            busy_ns: 0,
            requests: 0,
            bytes: 0,
        }
    }

    /// The resource's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How long serving `bytes` takes once the request reaches the head of
    /// the queue.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> u64 {
        let transfer = if self.bandwidth_bps == 0 {
            0
        } else {
            // bytes / (bytes per ns) — computed in u128 to avoid overflow for
            // multi-gigabyte transfers.
            ((bytes as u128 * NANOS_PER_SEC as u128) / self.bandwidth_bps as u128) as u64
        };
        self.latency_ns + transfer
    }

    /// Schedules a request of `bytes` arriving at `arrival`; returns the
    /// completion time. Requests are served in the order they are scheduled
    /// (the caller must schedule in non-decreasing arrival order for the
    /// FIFO abstraction to be meaningful).
    pub fn schedule(&mut self, arrival: SimTime, bytes: u64) -> SimTime {
        let start = arrival.max(self.next_free);
        let service = self.service_time(bytes);
        let finish = start + service;
        self.next_free = finish;
        self.busy_ns += service;
        self.requests += 1;
        self.bytes += bytes;
        finish
    }

    /// The time at which the resource becomes idle.
    #[must_use]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated so far.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of requests served so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total bytes served so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Fraction of `[0, horizon]` this resource spent busy.
    #[must_use]
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_ns as f64 / horizon as f64
        }
    }

    /// Resets the dynamic state (queue and counters), keeping the rate and
    /// latency. Used between sweep points.
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.busy_ns = 0;
        self.requests = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_combines_latency_and_transfer() {
        // 100 MB/s, 1 ms latency.
        let r = Resource::new("link", 100_000_000, 1_000_000);
        // 10 MB at 100 MB/s = 100 ms, plus 1 ms latency.
        assert_eq!(r.service_time(10_000_000), 101_000_000);
        // Zero-byte request costs only the latency.
        assert_eq!(r.service_time(0), 1_000_000);
    }

    #[test]
    fn zero_bandwidth_means_latency_only() {
        let r = Resource::new("cpu", 0, 50_000);
        assert_eq!(r.service_time(1 << 30), 50_000);
    }

    #[test]
    fn fifo_requests_queue_behind_each_other() {
        let mut r = Resource::new("link", 1_000_000, 0); // 1 MB/s
                                                         // Two 1 MB requests arriving together: the second waits for the first.
        let first = r.schedule(0, 1_000_000);
        let second = r.schedule(0, 1_000_000);
        assert_eq!(first, NANOS_PER_SEC);
        assert_eq!(second, 2 * NANOS_PER_SEC);
        assert_eq!(r.requests(), 2);
        assert_eq!(r.bytes(), 2_000_000);
    }

    #[test]
    fn idle_gaps_are_not_counted_as_busy() {
        let mut r = Resource::new("link", 1_000_000, 0);
        r.schedule(0, 500_000); // busy 0.5 s
        r.schedule(10 * NANOS_PER_SEC, 500_000); // busy another 0.5 s much later
        assert_eq!(r.busy_ns(), NANOS_PER_SEC);
        let horizon = r.next_free();
        assert!(r.utilisation(horizon) < 0.2);
    }

    #[test]
    fn reset_clears_dynamic_state() {
        let mut r = Resource::new("link", 1_000_000, 10);
        r.schedule(0, 1_000);
        r.reset();
        assert_eq!(r.next_free(), 0);
        assert_eq!(r.busy_ns(), 0);
        assert_eq!(r.requests(), 0);
        assert_eq!(r.utilisation(100), 0.0);
    }

    #[test]
    fn large_transfers_do_not_overflow() {
        let r = Resource::new("link", 125_000_000, 0);
        // 1 TiB at 125 MB/s ~ 8796 seconds; must not overflow u64 maths.
        let t = r.service_time(1 << 40);
        assert!(t > 8_000 * NANOS_PER_SEC && t < 9_000 * NANOS_PER_SEC);
    }
}
