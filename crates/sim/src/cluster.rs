//! The simulated cluster: protocol-faithful cost accounting on top of the
//! real BlobSeer-RS control-plane code.
//!
//! A [`SimulatedCluster`] owns
//!
//! * one FIFO [`Resource`] per contention point (version manager CPU, each
//!   data provider's NIC in both directions, each metadata provider's
//!   request processor, each client's NIC in both directions), and
//! * real instances of the version manager, provider manager and metadata
//!   DHT, which decide placement, versioning and metadata routing exactly as
//!   the production code does.
//!
//! Client operations are replayed in simulated-time order; each operation
//! runs the real protocol (ticket → chunks → metadata → publication) while
//! charging every transfer and every request to the resource that would
//! serve it in a distributed deployment. The result is the aggregated
//! throughput, per-operation latencies and per-resource utilisation the
//! paper's figures are built from.

use crate::resource::{Resource, SimTime, NANOS_PER_SEC};
use crate::workload::{OpKind, Workload};
use blobseer_core::{NodeArtifact, VersionManager, WriteKind};
use blobseer_dht::Dht;
use blobseer_meta::{
    build_flat_metadata, build_write_metadata_chained, collect_leaves_streaming, publish_metadata,
    MetadataStore, NodeBody, NodeKey, WrittenChunk,
};
use blobseer_provider::{PlacementRequest, ProviderManager};
use blobseer_types::FaultPlan;
use blobseer_types::{
    chunk_span, BlobError, BlobId, ByteRange, ChunkCodec, ChunkId, ClusterConfig, Durability,
    MetaNodeId, ProviderId, Result,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Wire size charged for one metadata node request/response, in bytes.
const META_NODE_WIRE_BYTES: u64 = 96;

/// Bytes one metadata-WAL record occupies on disk (framing header plus an
/// encoded tree node — same ballpark as its wire form).
const WAL_NODE_RECORD_BYTES: u64 = META_NODE_WIRE_BYTES + 10;

/// Bytes the WAL commit record (framing header plus one snapshot
/// descriptor) occupies on disk.
const WAL_COMMIT_RECORD_BYTES: u64 = 64;

/// Per-frame wire overhead charged for one data-plane transfer (frame
/// prefix, codec-encoded header and the response frame), in bytes.
const FRAME_OVERHEAD_BYTES: u64 = 64;

/// Attempts the lossy network model grants one transfer before forcing
/// success: mirrors the RPC layer's retry budget, deep enough that the
/// fault probabilities the tests run at converge with room to spare.
const NET_MAX_ATTEMPTS: u64 = 6;

/// Bytes the `Fast` codec scans per nanosecond of client CPU when sealing a
/// chunk (roughly the single-core pace of an LZ4-class greedy matcher).
/// Every chunk sealed under `Fast` pays this probe — including chunks that
/// turn out incompressible and ship through the verbatim escape, which is
/// exactly the cost the passthrough caps.
const COMPRESS_SCAN_BYTES_PER_NS: u64 = 4;

/// Record of one completed (or failed) simulated operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// Client that issued the operation.
    pub client: usize,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated completion time.
    pub end: SimTime,
    /// Payload bytes moved (zero if the operation failed).
    pub bytes: u64,
    /// Whether the operation was a write or append.
    pub is_write: bool,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// Outcome of one simulated workload run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Time at which the last measured operation completed.
    pub makespan_ns: SimTime,
    /// Total payload bytes moved by successful operations.
    pub total_bytes: u64,
    /// Every operation, in completion order.
    pub ops: Vec<OpRecord>,
    /// Number of operations that failed (e.g. all replicas of a chunk were
    /// on failed providers).
    pub failed_ops: usize,
    /// Total metadata tree nodes created during the measured phase.
    pub meta_nodes_created: u64,
    /// Total metadata *round-trips* issued during the measured phase: one
    /// request/response with one metadata provider, however many tree nodes
    /// it carried. Batched level-order reads and shard-grouped publication
    /// keep this O(tree-depth × metadata providers) per operation where a
    /// node-at-a-time walk paid O(nodes).
    pub meta_round_trips: u64,
    /// Total data-plane round-trips issued during the measured phase: one
    /// chunk moved between a client and a data provider (replica pushes
    /// counted individually). Together with `meta_round_trips` this is the
    /// pipeline-occupancy measure: the pipelined schedule moves the same
    /// number of chunks as the phased one, in strictly less elapsed time.
    /// Chunk-cache hits are *not* round-trips — they never touch the wire.
    pub data_round_trips: u64,
    /// Client-side payload bytes memcpy'd during the measured phase. Writes
    /// charge the assembly of boundary (not fully covered) chunk slots —
    /// aligned writes charge nothing, mirroring the zero-copy fast path —
    /// and every chunk actually fetched over the wire charges one receive
    /// materialisation; chunk-cache hits hand back the already materialised
    /// buffer and charge nothing.
    pub bytes_copied: u64,
    /// Chunk fetches served by a client's chunk cache (no round-trip, no
    /// resource charged).
    pub cache_hits: u64,
    /// Chunk fetches that missed the cache and hit the providers. Zero when
    /// `chunk_cache_bytes` is zero.
    pub cache_misses: u64,
    /// Data-plane frames put on the wire, *including* the retries the lossy
    /// network model forces (`data_round_trips` stays the logical transfer
    /// count, so `frames_sent - data_round_trips` is pure fault overhead).
    pub frames_sent: u64,
    /// Data-plane frames the lossy network model swallowed (each one costs
    /// the sender its `io_timeout` before the retry goes out).
    pub frames_dropped: u64,
    /// Bytes the data plane *physically* moved on the wire: payload as the
    /// codec shipped it (compressed when the `Fast` codec won) plus frame
    /// overhead, retries included. Chunk-cache hits move nothing. With the
    /// codec `Off` this equals [`SimulationResult::bytes_on_wire_logical`].
    pub bytes_on_wire: u64,
    /// Bytes the data plane *logically* moved: the decompressed payload
    /// sizes the application observes, plus the same frame overhead and
    /// retries as [`SimulationResult::bytes_on_wire`]. The gap between the
    /// two is the codec's wire saving.
    pub bytes_on_wire_logical: u64,
    /// Chunks the `Fast` codec actually shrank when they were sealed
    /// (verbatim passthroughs of incompressible chunks are not counted).
    pub chunks_compressed: u64,
    /// Logical-minus-physical bytes saved at sealing time, summed over
    /// `chunks_compressed` (replica pushes and re-reads multiply the wire
    /// saving but not this counter — a chunk is sealed once).
    pub compress_saved_bytes: u64,
    /// Metadata frames that shared a batched uplink write with a
    /// predecessor instead of paying their own per-request latency (a batch
    /// of `n` trips contributes `n - 1`) — the simulator's mirror of the
    /// RPC layer's small-frame coalescing counter.
    pub frames_coalesced: u64,
    /// Flat snapshot versions the lifecycle flattener materialised during
    /// the run (zero unless `ClusterConfig::flatten_threshold` is set).
    pub flattens: u64,
    /// Metadata tree nodes the lifecycle sweeper deleted during the run
    /// (zero unless `ClusterConfig::retained_versions` is set).
    pub meta_nodes_deleted: u64,
    /// Stored chunk bytes (physical, summed over replicas) the lifecycle
    /// sweeper reclaimed during the run. Together with
    /// [`SimulationResult::meta_nodes_deleted`] this is the simulator's
    /// measure of the lifecycle tier: without it both grow without bound as
    /// versions accumulate.
    pub reclaimed_bytes: u64,
    /// Fsyncs the durable tier would issue for the measured operations
    /// under `ClusterConfig::durability`: zero when `Buffered`, segment
    /// syncs plus one WAL commit sync per published version when `Commit`,
    /// one per appended record when `Always`. Each costs
    /// `ClusterConfig::fsync_ns` on the acknowledgement path.
    pub fsyncs: u64,
    /// Bytes appended to the metadata write-ahead log (node records plus
    /// one commit record per published version) — appended under *every*
    /// policy; durability only decides how often the tier flushes them.
    pub wal_bytes: u64,
    /// Per-metadata-provider number of requests served (load distribution).
    pub meta_load: HashMap<MetaNodeId, u64>,
    /// Per-data-provider bytes received (write load distribution).
    pub provider_write_bytes: HashMap<ProviderId, u64>,
}

impl SimulationResult {
    /// Aggregated throughput over the whole run, in MiB per second.
    #[must_use]
    pub fn aggregated_mibps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        let seconds = self.makespan_ns as f64 / NANOS_PER_SEC as f64;
        self.total_bytes as f64 / (1024.0 * 1024.0) / seconds
    }

    /// Mean per-operation latency in milliseconds (successful operations).
    #[must_use]
    pub fn mean_latency_ms(&self) -> f64 {
        let ok: Vec<&OpRecord> = self.ops.iter().filter(|o| o.ok).collect();
        if ok.is_empty() {
            return 0.0;
        }
        let total: u128 = ok.iter().map(|o| (o.end - o.start) as u128).sum();
        total as f64 / ok.len() as f64 / 1_000_000.0
    }

    /// Throughput per time window of `window_ns`, in MiB/s, covering the
    /// whole makespan. Used by the QoS-stability experiment (Fig. E1).
    #[must_use]
    pub fn windowed_throughput_mibps(&self, window_ns: u64) -> Vec<f64> {
        if self.makespan_ns == 0 || window_ns == 0 {
            return Vec::new();
        }
        let windows = self.makespan_ns.div_ceil(window_ns) as usize;
        let mut bytes = vec![0u64; windows];
        for op in self.ops.iter().filter(|o| o.ok) {
            let w = ((op.end.saturating_sub(1)) / window_ns) as usize;
            bytes[w.min(windows - 1)] += op.bytes;
        }
        let window_s = window_ns as f64 / NANOS_PER_SEC as f64;
        bytes
            .into_iter()
            .map(|b| b as f64 / (1024.0 * 1024.0) / window_s)
            .collect()
    }
}

/// A scheduled change in a data provider's health, applied while a run
/// progresses (failure injection for the fault-tolerance and QoS
/// experiments).
#[derive(Debug, Clone, Copy)]
struct HealthEvent {
    at: SimTime,
    provider: ProviderId,
    kind: HealthChange,
}

#[derive(Debug, Clone, Copy)]
enum HealthChange {
    Fail,
    Recover,
    /// The provider keeps serving but `factor` times slower (soft
    /// degradation, the "dangerous behaviour" the QoS layer hunts for).
    Degrade(f64),
    RestoreSpeed,
}

/// One logical metadata round-trip a protocol step issued: one request to
/// one metadata provider, carrying `items` node gets or puts.
#[derive(Debug, Clone, Copy)]
struct MetaTrip {
    node: MetaNodeId,
    items: u64,
}

/// Metadata store wrapper that groups traffic the way the real DHT routes
/// it — one round-trip per owning metadata node per batch — and records the
/// trips so their cost can be charged to the right resources. The
/// client-side metadata cache is emulated here (before grouping), so a
/// fully cached batch costs no round-trip at all.
struct RecordingStore<'a> {
    inner: &'a Dht<NodeKey, NodeBody>,
    cache: Option<&'a Mutex<HashSet<NodeKey>>>,
    trips: Mutex<Vec<MetaTrip>>,
    /// Owning metadata node of every key *charged* (not cache-hit) by the
    /// most recent `get_nodes` batch, keyed by the node's byte range. The
    /// pipelined read model uses this to start a leaf's chunk fetch when
    /// the leaf's own shard round-trip completed, not when the slowest
    /// shard of the level did.
    last_batch_routes: Mutex<HashMap<ByteRange, MetaNodeId>>,
}

impl<'a> RecordingStore<'a> {
    fn new(inner: &'a Dht<NodeKey, NodeBody>, cache: Option<&'a Mutex<HashSet<NodeKey>>>) -> Self {
        RecordingStore {
            inner,
            cache,
            trips: Mutex::new(Vec::new()),
            last_batch_routes: Mutex::new(HashMap::new()),
        }
    }

    /// Takes the round-trips recorded since the last drain.
    fn drain_trips(&self) -> Vec<MetaTrip> {
        std::mem::take(&mut *self.trips.lock())
    }

    /// Takes the per-range shard routing of the most recent get batch.
    fn take_last_routes(&self) -> HashMap<ByteRange, MetaNodeId> {
        std::mem::take(&mut *self.last_batch_routes.lock())
    }

    /// The metadata provider charged for a get of `key`: the first replica
    /// in routing order (the simulator injects no metadata-node failures).
    fn primary(&self, key: &NodeKey) -> MetaNodeId {
        self.inner
            .route(key)
            .first()
            .copied()
            .unwrap_or(MetaNodeId(0))
    }

    fn record(&self, per_node: HashMap<MetaNodeId, u64>) {
        // Charge trips in node order: hash-map iteration order is seeded per
        // process, and letting it leak into the charge order makes simulated
        // timings (and the figures built from them) vary run to run.
        let mut trips: Vec<MetaTrip> = per_node
            .into_iter()
            .map(|(node, items)| MetaTrip { node, items })
            .collect();
        trips.sort_by_key(|t| t.node);
        self.trips.lock().extend(trips);
    }
}

impl MetadataStore for RecordingStore<'_> {
    fn put_node(&self, key: NodeKey, body: NodeBody) -> Result<()> {
        self.put_nodes(vec![(key, body)])
    }

    fn get_node(&self, key: &NodeKey) -> Result<Option<NodeBody>> {
        Ok(self.get_nodes(std::slice::from_ref(key))?.pop().flatten())
    }

    fn get_nodes(&self, keys: &[NodeKey]) -> Result<Vec<Option<NodeBody>>> {
        let mut per_node: HashMap<MetaNodeId, u64> = HashMap::new();
        let mut routes: HashMap<ByteRange, MetaNodeId> = HashMap::with_capacity(keys.len());
        let mut cache = self.cache.map(|cache| cache.lock());
        for key in keys {
            let cached = match cache.as_mut() {
                Some(cache) => !cache.insert(*key),
                None => false,
            };
            if !cached {
                let node = self.primary(key);
                *per_node.entry(node).or_default() += 1;
                routes.insert(key.range, node);
            }
        }
        drop(cache);
        *self.last_batch_routes.lock() = routes;
        self.record(per_node);
        Ok(self.inner.get_batch(keys))
    }

    fn put_nodes(&self, nodes: Vec<(NodeKey, NodeBody)>) -> Result<()> {
        if let Some(cache) = self.cache {
            let mut cache = cache.lock();
            for (key, _) in &nodes {
                cache.insert(*key);
            }
        }
        // Mirror `Dht::put_batch` exactly: one wave of per-node requests per
        // replica rank, so the recorded trip count matches what
        // `Dht::round_trips` reports for the same traffic.
        let routes: Vec<Vec<MetaNodeId>> =
            nodes.iter().map(|(key, _)| self.inner.route(key)).collect();
        for rank in 0..self.inner.replication() {
            let mut per_node: HashMap<MetaNodeId, u64> = HashMap::new();
            for route in &routes {
                if let Some(id) = route.get(rank) {
                    *per_node.entry(*id).or_default() += 1;
                }
            }
            self.record(per_node);
        }
        self.inner.put_batch(nodes)
    }

    fn delete_nodes(&self, keys: &[NodeKey]) -> Result<usize> {
        // Deletes route exactly like gets: one round-trip per owning
        // metadata node per batch. The client-side cache is *not* consulted
        // — only the lifecycle sweeper deletes, and it runs cacheless.
        let mut per_node: HashMap<MetaNodeId, u64> = HashMap::new();
        for key in keys {
            *per_node.entry(self.primary(key)).or_default() += 1;
        }
        self.record(per_node);
        self.inner.delete_nodes(keys)
    }

    fn node_count(&self) -> usize {
        self.inner.total_entries()
    }
}

/// Byte-budgeted LRU bookkeeping of one simulated client's chunk cache.
/// Mirrors `blobseer-core::chunk_cache::ChunkCache` minus the payloads —
/// the simulator only needs identities and sizes to decide which fetches
/// stay off the wire. The admission rule matches the real cache: entries
/// larger than one shard's budget share are never cached, so the simulated
/// figures cannot promise hits a real client would refuse to hold.
struct SimChunkCache {
    budget: u64,
    /// Largest admissible entry (the real cache's per-shard budget).
    entry_limit: u64,
    bytes: u64,
    tick: u64,
    entries: HashMap<ChunkId, (u64, u64)>,
    order: std::collections::BTreeMap<u64, ChunkId>,
}

impl SimChunkCache {
    fn new(budget: u64) -> Self {
        SimChunkCache {
            budget,
            entry_limit: budget.div_ceil(blobseer_core::chunk_cache::SHARDS as u64),
            bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            order: std::collections::BTreeMap::new(),
        }
    }

    /// Whether the chunk is cached; refreshes its LRU position when it is.
    fn contains(&mut self, id: &ChunkId) -> bool {
        let Some(&(len, tick)) = self.entries.get(id) else {
            return false;
        };
        self.tick += 1;
        self.order.remove(&tick);
        self.order.insert(self.tick, *id);
        self.entries.insert(*id, (len, self.tick));
        true
    }

    fn insert(&mut self, id: ChunkId, len: u64) {
        if len == 0 || len > self.entry_limit || self.contains(&id) {
            return;
        }
        self.tick += 1;
        self.entries.insert(id, (len, self.tick));
        self.order.insert(self.tick, id);
        self.bytes += len;
        while self.bytes > self.budget {
            let (&oldest, &victim) = self.order.iter().next().expect("non-empty while over");
            self.order.remove(&oldest);
            let (evicted, _) = self.entries.remove(&victim).expect("order and map agree");
            self.bytes -= evicted;
        }
    }
}

/// The simulated BlobSeer deployment.
pub struct SimulatedCluster {
    config: ClusterConfig,
    version_manager: VersionManager,
    provider_manager: ProviderManager,
    metadata: Arc<Dht<NodeKey, NodeBody>>,
    vm_requests: u64,
    provider_in: Vec<Resource>,
    provider_out: Vec<Resource>,
    meta_cpu: Vec<Resource>,
    failed_providers: HashSet<ProviderId>,
    degraded: HashMap<ProviderId, f64>,
    health_events: Vec<HealthEvent>,
    meta_nodes_created: u64,
    meta_round_trips: u64,
    data_round_trips: u64,
    bytes_copied: u64,
    cache_hits: u64,
    cache_misses: u64,
    frames_sent: u64,
    frames_dropped: u64,
    bytes_on_wire: u64,
    bytes_on_wire_logical: u64,
    chunks_compressed: u64,
    compress_saved_bytes: u64,
    /// Compressibility of the corpus the running workload moves (its
    /// `Workload::compressibility`); `1.0` between runs.
    compress_ratio: f64,
    frames_coalesced: u64,
    /// Stored physical bytes of every live chunk, summed over its replicas
    /// — the ledger the lifecycle sweeper settles against when a chunk
    /// becomes unreachable from the retained versions.
    chunk_stored_bytes: HashMap<ChunkId, u64>,
    flattens: u64,
    meta_nodes_deleted: u64,
    reclaimed_bytes: u64,
    fsyncs: u64,
    wal_bytes: u64,
    /// Lossy network model: every data-plane transfer is routed through the
    /// same seeded per-frame fault decisions the channel transport injects
    /// (`None` = clean network, the default).
    net_faults: Option<(FaultPlan, StdRng)>,
}

impl SimulatedCluster {
    /// Builds a simulated deployment from a cluster configuration.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        config.validate()?;
        let provider_manager = ProviderManager::new(config.placement);
        for i in 0..config.data_providers {
            provider_manager.register(ProviderId(i as u32));
        }
        let metadata = Arc::new(Dht::new(
            config.metadata_providers,
            config.dht_virtual_nodes,
            config.dht_replication,
        )?);
        let bw = config.link_bandwidth_bps;
        let lat = config.link_latency_ns;
        Ok(SimulatedCluster {
            provider_in: (0..config.data_providers)
                .map(|i| Resource::new(format!("provider-{i}-in"), bw, lat))
                .collect(),
            provider_out: (0..config.data_providers)
                .map(|i| Resource::new(format!("provider-{i}-out"), bw, lat))
                .collect(),
            meta_cpu: (0..config.metadata_providers)
                .map(|i| Resource::new(format!("meta-{i}"), bw, config.meta_service_ns))
                .collect(),
            vm_requests: 0,
            version_manager: VersionManager::new(),
            provider_manager,
            metadata,
            failed_providers: HashSet::new(),
            degraded: HashMap::new(),
            health_events: Vec::new(),
            meta_nodes_created: 0,
            meta_round_trips: 0,
            data_round_trips: 0,
            bytes_copied: 0,
            cache_hits: 0,
            cache_misses: 0,
            frames_sent: 0,
            frames_dropped: 0,
            bytes_on_wire: 0,
            bytes_on_wire_logical: 0,
            chunks_compressed: 0,
            compress_saved_bytes: 0,
            compress_ratio: 1.0,
            frames_coalesced: 0,
            chunk_stored_bytes: HashMap::new(),
            flattens: 0,
            meta_nodes_deleted: 0,
            reclaimed_bytes: 0,
            fsyncs: 0,
            wal_bytes: 0,
            net_faults: None,
            config,
        })
    }

    /// Routes every data-plane transfer through a lossy network model
    /// driven by `plan` (seeded, deterministic): swallowed frames cost the
    /// sender its `io_timeout` and a retry, delayed frames add latency.
    /// Mirrors the channel transport's fault injector at flow level, so the
    /// `readers_during_writers`/`rescan_reads` workloads can be run over an
    /// unreliable network.
    pub fn set_network_faults(&mut self, plan: FaultPlan) -> Result<()> {
        plan.validate()?;
        self.net_faults = if plan.is_clean() {
            None
        } else {
            Some((plan, StdRng::seed_from_u64(plan.seed)))
        };
        Ok(())
    }

    /// Bytes a chunk of `logical` payload bytes occupies on the wire and at
    /// rest under the configured codec: `ceil(logical × compressibility)`
    /// when the `Fast` codec wins, the unchanged logical size otherwise
    /// (codec `Off`, incompressible corpus, or a chunk so small the ceiling
    /// rounds the saving away — the verbatim passthrough in all three
    /// cases).
    fn sealed_physical_len(&self, logical: u64) -> u64 {
        if self.config.chunk_codec != ChunkCodec::Fast || self.compress_ratio >= 1.0 {
            return logical;
        }
        (((logical as f64) * self.compress_ratio).ceil() as u64).clamp(1, logical)
    }

    /// Client CPU time to run the `Fast` codec's sealing scan over one
    /// chunk; zero with the codec `Off`.
    fn seal_probe_ns(&self, logical: u64) -> u64 {
        if self.config.chunk_codec != ChunkCodec::Fast {
            return 0;
        }
        logical / COMPRESS_SCAN_BYTES_PER_NS
    }

    /// Samples the lossy network model for one data-plane transfer whose
    /// payload is `logical` bytes to the application and `physical` bytes as
    /// the codec shipped it: returns the extra completion delay (timeouts of
    /// swallowed frames, injected latency) and charges the frame counters.
    /// Retries resend the physical frame, so both wire counters include
    /// them.
    fn net_transfer_penalty(&mut self, logical: u64, physical: u64) -> u64 {
        let frame_bytes = physical + FRAME_OVERHEAD_BYTES;
        let logical_frame_bytes = logical + FRAME_OVERHEAD_BYTES;
        let Some((plan, rng)) = &mut self.net_faults else {
            self.frames_sent += 1;
            self.bytes_on_wire += frame_bytes;
            self.bytes_on_wire_logical += logical_frame_bytes;
            return 0;
        };
        let io_timeout_ns = self.config.io_timeout_ms.saturating_mul(1_000_000).max(1);
        // Stalls, drops and disconnects all look the same at flow level —
        // silence until the sender's I/O timeout fires. Compose them the way
        // the channel transport's injector samples them (sequentially, each
        // on the frames the previous kind let through), so a plan means the
        // same loss rate in the simulator as on the real test transport.
        let p_lost = 1.0 - (1.0 - plan.disconnect) * (1.0 - plan.stall) * (1.0 - plan.drop);
        let mut penalty = 0u64;
        for attempt in 1..=NET_MAX_ATTEMPTS {
            self.frames_sent += 1;
            self.bytes_on_wire += frame_bytes;
            self.bytes_on_wire_logical += logical_frame_bytes;
            // A frame can be lost in either direction: request out, response
            // back.
            let lost_out = rng.gen_bool(p_lost);
            let lost_back = rng.gen_bool(p_lost);
            // A truncated frame is detected on receive and retried at once.
            let truncated = rng.gen_bool(plan.truncate);
            if rng.gen_bool(plan.delay) {
                penalty += plan.delay_us * 1_000;
            }
            if (lost_out || lost_back) && attempt < NET_MAX_ATTEMPTS {
                self.frames_dropped += 1;
                penalty += io_timeout_ns;
                continue;
            }
            if truncated && attempt < NET_MAX_ATTEMPTS {
                continue;
            }
            break;
        }
        penalty
    }

    /// The configuration the simulation was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The provider manager (exposed so experiments can adjust QoS scores,
    /// exactly as the behaviour-modelling feedback loop would).
    pub fn provider_manager(&self) -> &ProviderManager {
        &self.provider_manager
    }

    /// Schedules a hard failure of `provider` during the run, lasting
    /// `duration_ns` (recovery is scheduled automatically).
    pub fn schedule_failure(&mut self, provider: ProviderId, at: SimTime, duration_ns: u64) {
        self.health_events.push(HealthEvent {
            at,
            provider,
            kind: HealthChange::Fail,
        });
        self.health_events.push(HealthEvent {
            at: at + duration_ns,
            provider,
            kind: HealthChange::Recover,
        });
    }

    /// Schedules a soft degradation: between `at` and `at + duration_ns` the
    /// provider serves `slowdown` times slower than nominal.
    pub fn schedule_degradation(
        &mut self,
        provider: ProviderId,
        at: SimTime,
        duration_ns: u64,
        slowdown: f64,
    ) {
        self.health_events.push(HealthEvent {
            at,
            provider,
            kind: HealthChange::Degrade(slowdown.max(1.0)),
        });
        self.health_events.push(HealthEvent {
            at: at + duration_ns,
            provider,
            kind: HealthChange::RestoreSpeed,
        });
    }

    /// Immediately lowers/raises a provider's QoS score in the provider
    /// manager (the knob the behaviour-model feedback loop turns).
    pub fn set_provider_qos(&self, provider: ProviderId, score: f64) -> Result<()> {
        self.provider_manager.set_qos_score(provider, score)
    }

    fn apply_health_events(&mut self, now: SimTime) {
        // Events are few; a linear scan keeps the code simple.
        let due: Vec<HealthEvent> = self
            .health_events
            .iter()
            .filter(|e| e.at <= now)
            .copied()
            .collect();
        self.health_events.retain(|e| e.at > now);
        for event in due {
            match event.kind {
                HealthChange::Fail => {
                    self.failed_providers.insert(event.provider);
                    let _ = self.provider_manager.set_alive(event.provider, false);
                }
                HealthChange::Recover => {
                    self.failed_providers.remove(&event.provider);
                    let _ = self.provider_manager.set_alive(event.provider, true);
                }
                HealthChange::Degrade(f) => {
                    self.degraded.insert(event.provider, f);
                }
                HealthChange::RestoreSpeed => {
                    self.degraded.remove(&event.provider);
                }
            }
        }
    }

    fn slowdown(&self, provider: ProviderId) -> f64 {
        self.degraded.get(&provider).copied().unwrap_or(1.0)
    }

    /// The version manager is a lightweight control-plane hop: every request
    /// costs a fixed service time but the manager never becomes a queueing
    /// bottleneck at the request sizes involved (a few dozen bytes), so it
    /// is modelled as a pure delay.
    fn vm_delay(&mut self, now: SimTime) -> SimTime {
        self.vm_requests += 1;
        now + self.config.version_manager_service_ns
    }

    /// Runs a workload and returns its measured result.
    ///
    /// The blob is created fresh, pre-loaded (untimed) if the workload needs
    /// existing data, and then every client replays its operation sequence
    /// concurrently in simulated time.
    pub fn run(&mut self, workload: &Workload) -> Result<SimulationResult> {
        // Fresh measurement state (the control plane keeps its blobs, which
        // is harmless because every run uses a new blob).
        self.vm_requests = 0;
        for r in self
            .provider_in
            .iter_mut()
            .chain(self.provider_out.iter_mut())
            .chain(self.meta_cpu.iter_mut())
        {
            r.reset();
        }
        self.meta_nodes_created = 0;
        self.meta_round_trips = 0;
        self.data_round_trips = 0;
        self.bytes_copied = 0;
        self.cache_hits = 0;
        self.cache_misses = 0;
        self.frames_sent = 0;
        self.frames_dropped = 0;
        self.bytes_on_wire = 0;
        self.bytes_on_wire_logical = 0;
        self.chunks_compressed = 0;
        self.compress_saved_bytes = 0;
        self.compress_ratio = workload.compressibility.clamp(f64::MIN_POSITIVE, 1.0);
        self.frames_coalesced = 0;
        self.chunk_stored_bytes.clear();
        self.flattens = 0;
        self.meta_nodes_deleted = 0;
        self.reclaimed_bytes = 0;
        self.fsyncs = 0;
        self.wal_bytes = 0;
        // Re-seed the fault stream so repeated runs of one cluster replay
        // the identical fault sequence.
        if let Some((plan, rng)) = &mut self.net_faults {
            *rng = StdRng::seed_from_u64(plan.seed);
        }

        let blob = self.version_manager.create_blob(workload.blob_config)?;
        if workload.preload_bytes > 0 {
            self.preload(blob, workload)?;
        }

        let mut client_out: Vec<Resource> = (0..workload.clients)
            .map(|i| {
                Resource::new(
                    format!("client-{i}-out"),
                    self.config.link_bandwidth_bps,
                    self.config.link_latency_ns,
                )
            })
            .collect();
        let mut client_in: Vec<Resource> = (0..workload.clients)
            .map(|i| {
                Resource::new(
                    format!("client-{i}-in"),
                    self.config.link_bandwidth_bps,
                    self.config.link_latency_ns,
                )
            })
            .collect();
        let client_cache: Vec<Mutex<HashSet<NodeKey>>> = (0..workload.clients)
            .map(|_| Mutex::new(HashSet::new()))
            .collect();
        // Per-client chunk caches, fresh per run (preloaded data is cold by
        // definition). Disabled entirely when the budget is zero.
        let chunk_caches: Vec<Mutex<SimChunkCache>> = (0..workload.clients)
            .map(|_| Mutex::new(SimChunkCache::new(self.config.chunk_cache_bytes)))
            .collect();

        // Event queue: (next ready time, client, next op index).
        let mut queue: BinaryHeap<Reverse<(SimTime, usize, usize)>> = BinaryHeap::new();
        for c in 0..workload.clients {
            if !workload.ops[c].is_empty() {
                queue.push(Reverse((0, c, 0)));
            }
        }

        let mut ops: Vec<OpRecord> = Vec::with_capacity(workload.total_ops());
        let mut write_tag: u64 = 1;
        while let Some(Reverse((now, client, op_index))) = queue.pop() {
            self.apply_health_events(now);
            let op = workload.ops[client][op_index];
            write_tag += 1;
            let cache = self
                .config
                .client_metadata_cache
                .then(|| &client_cache[client]);
            let chunk_cache = (self.config.chunk_cache_bytes > 0).then(|| &chunk_caches[client]);
            let record = self.simulate_op(
                blob,
                client,
                now,
                op,
                write_tag,
                &mut client_out[client],
                &mut client_in[client],
                cache,
                chunk_cache,
            )?;
            let end = record.end;
            ops.push(record);
            // The lifecycle engine runs as background work between
            // operations (the simulator's event loop is its quiescent
            // point): flatten when the diff chain crossed the threshold,
            // evict beyond the retention policy, sweep what died. Its cost
            // stays off the measured operations' critical path — the
            // background thread it models never blocks a client — and its
            // effects land in the dedicated lifecycle counters.
            self.lifecycle_pass(blob)?;
            if op_index + 1 < workload.ops[client].len() {
                queue.push(Reverse((end, client, op_index + 1)));
            }
        }

        let makespan_ns = ops.iter().map(|o| o.end).max().unwrap_or(0);
        let total_bytes = ops.iter().filter(|o| o.ok).map(|o| o.bytes).sum();
        let failed_ops = ops.iter().filter(|o| !o.ok).count();
        let meta_load = self
            .meta_cpu
            .iter()
            .enumerate()
            .map(|(i, r)| (MetaNodeId(i as u32), r.requests()))
            .collect();
        let provider_write_bytes = self
            .provider_in
            .iter()
            .enumerate()
            .map(|(i, r)| (ProviderId(i as u32), r.bytes()))
            .collect();
        Ok(SimulationResult {
            makespan_ns,
            total_bytes,
            ops,
            failed_ops,
            meta_nodes_created: self.meta_nodes_created,
            meta_round_trips: self.meta_round_trips,
            data_round_trips: self.data_round_trips,
            bytes_copied: self.bytes_copied,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            frames_sent: self.frames_sent,
            frames_dropped: self.frames_dropped,
            bytes_on_wire: self.bytes_on_wire,
            bytes_on_wire_logical: self.bytes_on_wire_logical,
            chunks_compressed: self.chunks_compressed,
            compress_saved_bytes: self.compress_saved_bytes,
            frames_coalesced: self.frames_coalesced,
            flattens: self.flattens,
            meta_nodes_deleted: self.meta_nodes_deleted,
            reclaimed_bytes: self.reclaimed_bytes,
            fsyncs: self.fsyncs,
            wal_bytes: self.wal_bytes,
            meta_load,
            provider_write_bytes,
        })
    }

    /// Loads `preload_bytes` of data into the blob without charging any
    /// resource (the paper's read experiments measure reads of already
    /// stored data).
    fn preload(&mut self, blob: BlobId, workload: &Workload) -> Result<()> {
        let chunk_size = workload.blob_config.chunk_size;
        // Append in large batches to keep the number of snapshots small.
        let batch = (chunk_size * 256).min(workload.preload_bytes.max(chunk_size));
        let mut remaining = workload.preload_bytes;
        let mut tag = u64::MAX / 2;
        while remaining > 0 {
            let len = batch.min(remaining);
            remaining -= len;
            tag += 1;
            let ticket = self
                .version_manager
                .assign_ticket(blob, WriteKind::Append { len })?;
            let slots = chunk_span(ByteRange::new(ticket.offset, len), chunk_size);
            let placement = self.provider_manager.allocate(PlacementRequest {
                chunk_count: slots.len(),
                replication: workload.blob_config.replication,
            })?;
            let chunks: Vec<WrittenChunk> = slots
                .iter()
                .zip(&placement)
                .map(|(slot, providers)| {
                    let end = ((slot.index + 1) * chunk_size).min(ticket.new_size);
                    WrittenChunk {
                        slot: slot.index,
                        chunk: ChunkId {
                            blob,
                            write_tag: tag,
                            slot: slot.index,
                        },
                        providers: providers.clone(),
                        len: end - slot.index * chunk_size,
                    }
                })
                .collect();
            for c in &chunks {
                self.chunk_stored_bytes.insert(
                    c.chunk,
                    self.sealed_physical_len(c.len) * c.providers.len() as u64,
                );
            }
            let meta = build_write_metadata_chained(
                self.metadata.as_ref(),
                blob,
                &ticket.chain,
                ticket.version,
                ticket.new_size,
                &chunks,
            )?;
            let artifacts = NodeArtifact::from_metadata(&meta);
            publish_metadata(self.metadata.as_ref(), meta)?;
            self.version_manager.complete_write_with_artifacts(
                blob,
                ticket.version,
                Some(artifacts),
            )?;
        }
        Ok(())
    }

    /// One background lifecycle pass over the workload's blob: flatten when
    /// the retained diff chain crossed `flatten_threshold`, evict versions
    /// beyond `retained_versions`, sweep the chunks and tree nodes that
    /// became unreachable. A no-op with the lifecycle off (the defaults).
    ///
    /// The pass models the deployment's background engine, which never sits
    /// on a client's critical path, so it charges no timed resource; its
    /// effects surface in the dedicated lifecycle counters
    /// (`flattens` / `meta_nodes_deleted` / `reclaimed_bytes`).
    fn lifecycle_pass(&mut self, blob: BlobId) -> Result<()> {
        let retained = self.config.retained_versions;
        let threshold = self.config.flatten_threshold;
        if retained == 0 && threshold == 0 {
            return Ok(());
        }
        if threshold > 0 && self.version_manager.writes_since_flatten(blob)? >= threshold as u64 {
            if let Some(ticket) = self.version_manager.begin_flatten(blob)? {
                let meta = build_flat_metadata(
                    self.metadata.as_ref(),
                    blob,
                    &ticket.source,
                    ticket.version,
                )?;
                let artifacts = NodeArtifact::from_metadata(&meta);
                publish_metadata(self.metadata.as_ref(), meta)?;
                self.version_manager.complete_write_with_artifacts(
                    blob,
                    ticket.version,
                    Some(artifacts),
                )?;
                self.flattens += 1;
            }
        }
        if retained > 0 {
            self.version_manager.evict_versions(blob, retained)?;
        }
        let set = self.version_manager.take_collectable(blob)?;
        if set.is_empty() {
            return Ok(());
        }
        self.meta_nodes_deleted += self.metadata.delete_nodes(&set.nodes)? as u64;
        for (chunk, _) in set.chunks {
            if let Some(bytes) = self.chunk_stored_bytes.remove(&chunk) {
                self.reclaimed_bytes += bytes;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn simulate_op(
        &mut self,
        blob: BlobId,
        client: usize,
        now: SimTime,
        op: OpKind,
        write_tag: u64,
        client_out: &mut Resource,
        client_in: &mut Resource,
        cache: Option<&Mutex<HashSet<NodeKey>>>,
        chunk_cache: Option<&Mutex<SimChunkCache>>,
    ) -> Result<OpRecord> {
        match op {
            OpKind::Append { .. } | OpKind::Write { .. } => self.simulate_write(
                blob,
                client,
                now,
                op,
                write_tag,
                client_out,
                cache,
                chunk_cache,
            ),
            OpKind::Read { offset, len } => self.simulate_read(
                blob,
                client,
                now,
                offset,
                len,
                client_out,
                client_in,
                cache,
                chunk_cache,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn simulate_write(
        &mut self,
        blob: BlobId,
        client: usize,
        now: SimTime,
        op: OpKind,
        write_tag: u64,
        client_out: &mut Resource,
        cache: Option<&Mutex<HashSet<NodeKey>>>,
        chunk_cache: Option<&Mutex<SimChunkCache>>,
    ) -> Result<OpRecord> {
        let (kind, len) = match op {
            OpKind::Append { len } => (WriteKind::Append { len }, len),
            OpKind::Write { offset, len } => (WriteKind::Write { offset, len }, len),
            OpKind::Read { .. } => unreachable!("read handled elsewhere"),
        };
        let chunk_size = self.version_manager.blob_config(blob)?.chunk_size;
        let replication = self.version_manager.blob_config(blob)?.replication;

        // Phase 1: version ticket.
        let t_ticket = self.vm_delay(now);
        let ticket = self.version_manager.assign_ticket(blob, kind)?;

        // Phase 2: chunk transfers (client uplink, then provider downlink).
        let slots = chunk_span(ByteRange::new(ticket.offset, len), chunk_size);
        let placement = match self.provider_manager.allocate(PlacementRequest {
            chunk_count: slots.len(),
            replication,
        }) {
            Ok(p) => p,
            Err(err) => {
                // Not enough live providers: the write fails; repair keeps
                // the blob consistent for later versions.
                let summary = blobseer_meta::WriteSummary {
                    version: ticket.version,
                    written_slots: ByteRange::new(
                        slots[0].index * chunk_size,
                        slots.len() as u64 * chunk_size,
                    ),
                    size: ticket.new_size,
                    chunk_size,
                };
                let repair = blobseer_meta::build_repair_metadata(
                    self.metadata.as_ref(),
                    blob,
                    &ticket.chain,
                    &summary,
                )?;
                let artifacts = NodeArtifact::from_metadata(&repair);
                publish_metadata(self.metadata.as_ref(), repair)?;
                self.version_manager.abort_write_with_artifacts(
                    blob,
                    ticket.version,
                    Some(artifacts),
                )?;
                let _ = err;
                return Ok(OpRecord {
                    client,
                    start: now,
                    end: t_ticket,
                    bytes: 0,
                    is_write: true,
                    ok: false,
                });
            }
        };
        let write_range = ByteRange::new(ticket.offset, len);
        let mut t_chunks = t_ticket;
        let mut chunks = Vec::with_capacity(slots.len());
        for (slot, providers) in slots.iter().zip(&placement) {
            let slot_start = slot.index * chunk_size;
            let end = ((slot.index + 1) * chunk_size).min(ticket.new_size);
            let chunk_len = end - slot_start;
            // Zero-copy write fast path: a slot fully covered by the write
            // ships as a sub-slice of the caller's buffer; only boundary
            // slots pay a client-side assembly copy.
            let covered = write_range.offset <= slot_start && write_range.end() >= end;
            if !covered {
                self.bytes_copied += chunk_len;
            }
            // The writing client seals the chunk exactly once — every
            // replica push ships the same envelope, and providers store it
            // as-is — paying the codec's sealing scan before the first byte
            // goes out. Only a strictly smaller result counts as
            // compressed; anything else takes the verbatim passthrough.
            let physical = self.sealed_physical_len(chunk_len);
            let probe_ns = self.seal_probe_ns(chunk_len);
            if physical < chunk_len {
                self.chunks_compressed += 1;
                self.compress_saved_bytes += chunk_len - physical;
            }
            for &p in providers {
                self.data_round_trips += 1;
                // Lossy network model: swallowed frames cost the writer its
                // I/O timeout (and a retried transmission) before the chunk
                // finally lands.
                let penalty = self.net_transfer_penalty(chunk_len, physical);
                let sent = client_out.schedule(t_ticket + probe_ns + penalty, physical);
                let charged = (physical as f64 * self.slowdown(p)) as u64;
                let mut done = self.provider_in[p.0 as usize].schedule(sent, charged);
                // `Always` durability flushes every chunk record as the
                // segment file appends it, before the provider acks.
                if self.config.durability == Durability::Always {
                    self.fsyncs += 1;
                    done += self.config.fsync_ns;
                }
                t_chunks = t_chunks.max(done);
            }
            let chunk = ChunkId {
                blob,
                write_tag,
                slot: slot.index,
            };
            self.chunk_stored_bytes
                .insert(chunk, physical * providers.len() as u64);
            // Write-through: the writer keeps the payload it just pushed,
            // so re-reading your own writes never fetches. A covered slot
            // of a multi-slot write is a strict sub-view of the caller's
            // buffer, which the real cache compacts on insert so its
            // budget bounds real memory — charge that copy. Boundary slots
            // (assembled into owned buffers) and single-slot writes (the
            // payload *is* the whole buffer) insert without one.
            if let Some(chunk_cache) = chunk_cache {
                let mut chunk_cache = chunk_cache.lock();
                if covered && slots.len() > 1 && chunk_len <= chunk_cache.entry_limit {
                    self.bytes_copied += chunk_len;
                }
                chunk_cache.insert(chunk, chunk_len);
            }
            chunks.push(WrittenChunk {
                slot: slot.index,
                chunk,
                providers: providers.clone(),
                len: chunk_len,
            });
        }

        // Phase 3: metadata weaving and publication — run the real
        // algorithm (whose hot paths batch: one get per tree level, one
        // shard-grouped publish), then charge the recorded round-trips. In
        // the phased schedule the weaving round-trips start only after the
        // last chunk landed; in the pipelined schedule the client weaves
        // while its chunk transfers are on the wire, so weaving starts
        // right after the ticket and the write's elapsed cost becomes
        // max(data path, weaving path) + publication. Publication itself
        // never overlaps the chunk transfers — exactly like the client,
        // which joins every store completion before `publish_metadata` —
        // so its round-trips are charged from max(weave done, chunks done).
        //
        // `pipeline_depth` is modelled as a binary phased/pipelined switch:
        // the client-side in-flight cap (depth × workers) is a memory/
        // backpressure bound that the open-ended resource model here has no
        // queue-occupancy notion to express.
        let recorder = RecordingStore::new(self.metadata.as_ref(), cache);
        let meta = build_write_metadata_chained(
            &recorder,
            blob,
            &ticket.chain,
            ticket.version,
            ticket.new_size,
            &chunks,
        )?;
        let weave_trips = recorder.drain_trips();
        let nodes_created = meta.node_count() as u64;
        let artifacts = NodeArtifact::from_metadata(&meta);
        publish_metadata(&recorder, meta)?;
        self.meta_nodes_created += nodes_created;
        let publish_trips = recorder.trips.into_inner();
        let weave_start = if self.config.pipeline_depth > 0 {
            t_ticket
        } else {
            t_chunks
        };
        let t_weave = self.charge_meta_trips(weave_start, &weave_trips, client_out);
        let t_meta = self.charge_meta_trips(t_weave.max(t_chunks), &publish_trips, client_out);

        // Durability cost model: the WAL appends one record per tree node
        // plus the commit record under every policy; the policy decides how
        // many flushes gate the acknowledgement. `Commit` (write-ahead
        // ordering) syncs the touched segment files — one fsync each, in
        // parallel, they are separate disks — then appends and syncs the
        // commit record: two flush latencies on the ack path. `Always`
        // already flushed each chunk record above and each WAL node record
        // as it was appended (those serialise on the one WAL file), leaving
        // the commit record's own flush.
        self.wal_bytes += nodes_created * WAL_NODE_RECORD_BYTES + WAL_COMMIT_RECORD_BYTES;
        let fsync = self.config.fsync_ns;
        let t_durable = match self.config.durability {
            Durability::Buffered => t_meta.max(t_chunks),
            Durability::Commit => {
                let touched: HashSet<ProviderId> = placement.iter().flatten().copied().collect();
                self.fsyncs += touched.len() as u64 + 1;
                t_meta.max(t_chunks) + 2 * fsync
            }
            Durability::Always => {
                self.fsyncs += nodes_created + 1;
                t_meta.max(t_chunks) + (nodes_created + 1) * fsync
            }
        };

        // Phase 4: publication to the version manager.
        let t_done = self.vm_delay(t_durable);
        self.version_manager.complete_write_with_artifacts(
            blob,
            ticket.version,
            Some(artifacts),
        )?;
        Ok(OpRecord {
            client,
            start: now,
            end: t_done,
            bytes: len,
            is_write: true,
            ok: true,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn simulate_read(
        &mut self,
        blob: BlobId,
        client: usize,
        now: SimTime,
        offset: u64,
        len: u64,
        client_out: &mut Resource,
        client_in: &mut Resource,
        cache: Option<&Mutex<HashSet<NodeKey>>>,
        chunk_cache: Option<&Mutex<SimChunkCache>>,
    ) -> Result<OpRecord> {
        // Phase 1: ask the version manager for the latest snapshot.
        let t_snapshot = self.vm_delay(now);
        let snapshot = self.version_manager.latest_snapshot(blob)?;
        let range = ByteRange::new(offset, len.min(snapshot.size.saturating_sub(offset)));
        if range.is_empty() {
            return Ok(OpRecord {
                client,
                start: now,
                end: t_snapshot,
                bytes: 0,
                is_write: false,
                ok: true,
            });
        }

        // Phase 2+3: metadata tree descent (one batched round-trip per tree
        // level per owning metadata node, respecting the client-side cache)
        // and chunk fetches from the providers (provider uplink, then
        // client downlink, first live replica of each chunk).
        //
        // Phased schedule: the fetches all start once the *whole* descent
        // has finished (sum of phases). Pipelined schedule: a leaf's fetch
        // starts the moment its own shard round-trip completed, while
        // deeper levels and slower shards are still in flight — the
        // operation's elapsed cost becomes max(metadata critical path, data
        // critical path).
        let pipelined = self.config.pipeline_depth > 0;
        let metadata = Arc::clone(&self.metadata);
        let recorder = RecordingStore::new(metadata.as_ref(), cache);
        let mut t_meta = t_snapshot;
        let mut t_data = t_snapshot;
        let mut fetched_bytes = 0u64;
        let mut all_found = true;
        let mut deferred: Vec<(ByteRange, blobseer_meta::LeafNode)> = Vec::new();
        let walk = collect_leaves_streaming(&recorder, blob, &snapshot, range, |level| {
            let trips = recorder.drain_trips();
            let routes = recorder.take_last_routes();
            let (level_done, trip_done) =
                self.charge_meta_trips_detailed(t_snapshot, &trips, client_out);
            t_meta = t_meta.max(level_done);
            for mapping in level {
                let Some(leaf) = mapping.leaf.clone() else {
                    continue;
                };
                if leaf.is_hole() {
                    continue;
                }
                if pipelined {
                    // This leaf's fetch starts when the shard that served
                    // its metadata answered (cache hits start immediately).
                    let start_at = routes
                        .get(&mapping.slot_range)
                        .and_then(|node| trip_done.get(node))
                        .copied()
                        .unwrap_or(t_snapshot);
                    let (done, wanted, found) = self.schedule_fetch(
                        start_at,
                        mapping.slot_range,
                        &leaf,
                        range,
                        client_in,
                        chunk_cache,
                    );
                    t_data = t_data.max(done);
                    fetched_bytes += wanted;
                    all_found &= found;
                } else {
                    deferred.push((mapping.slot_range, leaf));
                }
            }
        });
        let _ = walk?;
        // Phased: every fetch starts only after the full descent finished.
        for (slot_range, leaf) in deferred {
            let (done, wanted, found) =
                self.schedule_fetch(t_meta, slot_range, &leaf, range, client_in, chunk_cache);
            t_data = t_data.max(done);
            fetched_bytes += wanted;
            all_found &= found;
        }
        Ok(OpRecord {
            client,
            start: now,
            end: t_data.max(t_meta),
            bytes: fetched_bytes,
            is_write: false,
            ok: all_found,
        })
    }

    /// Schedules one chunk fetch starting at `start_at`: provider uplink,
    /// then client downlink. Returns the completion time, the payload bytes
    /// the read range actually wanted from the chunk, and whether the chunk
    /// was reachable at all.
    ///
    /// The client's chunk cache is consulted first: a hit costs no
    /// round-trip, charges no resource and — because the cached entry is the
    /// already materialised buffer — serves the chunk even when every
    /// provider holding it has failed. Misses fetch over the wire, charge
    /// one receive materialisation to `bytes_copied` and fill the cache.
    #[allow(clippy::too_many_arguments)]
    fn schedule_fetch(
        &mut self,
        start_at: SimTime,
        slot_range: ByteRange,
        leaf: &blobseer_meta::LeafNode,
        range: ByteRange,
        client_in: &mut Resource,
        chunk_cache: Option<&Mutex<SimChunkCache>>,
    ) -> (SimTime, u64, bool) {
        let wanted = slot_range
            .intersect(&range)
            .map(|r| r.len.min(leaf.len))
            .unwrap_or(0);
        if wanted == 0 {
            return (start_at, 0, true);
        }
        if let Some(chunk_cache) = chunk_cache {
            if chunk_cache.lock().contains(&leaf.chunk) {
                self.cache_hits += 1;
                return (start_at, wanted, true);
            }
            self.cache_misses += 1;
        }
        let Some(provider) = leaf
            .providers
            .iter()
            .copied()
            .find(|p| !self.failed_providers.contains(p))
        else {
            return (start_at, 0, false);
        };
        self.data_round_trips += 1;
        self.bytes_copied += leaf.len;
        // Providers ship the stored envelope verbatim — compressed chunks
        // cross the wire at their sealed (physical) size and the reader
        // decompresses once on receive; the materialised buffer above is
        // the logical payload either way.
        let physical = self.sealed_physical_len(leaf.len);
        // Lossy network model: a swallowed request or response frame stalls
        // this fetch for the reader's I/O timeout before the retry lands.
        let penalty = self.net_transfer_penalty(leaf.len, physical);
        let charged = (physical as f64 * self.slowdown(provider)) as u64;
        let served = self.provider_out[provider.0 as usize].schedule(start_at + penalty, charged);
        let done = client_in.schedule(served, physical);
        if let Some(chunk_cache) = chunk_cache {
            chunk_cache.lock().insert(leaf.chunk, leaf.len);
        }
        (done, wanted, true)
    }

    /// Charges the recorded metadata round-trips of one protocol step,
    /// all arriving at `start`: the client uplink carries one request
    /// message per trip (that is where batching wins — one per-request
    /// latency per owning node, not per tree node), while the contacted
    /// provider still processes every node the batch carries. Returns the
    /// completion time of the last trip.
    fn charge_meta_trips(
        &mut self,
        start: SimTime,
        trips: &[MetaTrip],
        client_out: &mut Resource,
    ) -> SimTime {
        self.charge_meta_trips_detailed(start, trips, client_out).0
    }

    /// [`Self::charge_meta_trips`] plus the per-metadata-node completion
    /// times of the charged trips — the pipelined read model starts a
    /// leaf's chunk fetch at its own shard's completion, not the batch's.
    fn charge_meta_trips_detailed(
        &mut self,
        start: SimTime,
        trips: &[MetaTrip],
        client_out: &mut Resource,
    ) -> (SimTime, HashMap<MetaNodeId, SimTime>) {
        self.meta_round_trips += trips.len() as u64;
        if trips.is_empty() {
            return (start, HashMap::new());
        }
        // The trips of one protocol step are all issued at `start`, so the
        // RPC layer coalesces their request frames into one vectored uplink
        // write: the batch pays the client link's per-request latency once,
        // not once per trip (mirrored by the `frames_coalesced` counter,
        // matching `TransportStats::frames_coalesced` semantics: a batch of
        // n contributes n - 1).
        if trips.len() > 1 {
            self.frames_coalesced += trips.len() as u64 - 1;
        }
        let batch_bytes: u64 = trips.iter().map(|t| t.items * META_NODE_WIRE_BYTES).sum();
        let sent = client_out.schedule(start, batch_bytes);
        let mut t_meta = start;
        let mut per_node: HashMap<MetaNodeId, SimTime> = HashMap::with_capacity(trips.len());
        for trip in trips {
            let cpu = &mut self.meta_cpu[trip.node.0 as usize];
            let mut done = sent;
            for _ in 0..trip.items {
                done = cpu.schedule(sent, META_NODE_WIRE_BYTES);
            }
            t_meta = t_meta.max(done);
            let slot = per_node.entry(trip.node).or_insert(done);
            *slot = (*slot).max(done);
        }
        (t_meta, per_node)
    }

    /// Utilisation of the version manager over the last run's makespan
    /// (useful to show it is not the bottleneck).
    pub fn version_manager_utilisation(&self, makespan_ns: SimTime) -> f64 {
        if makespan_ns == 0 {
            return 0.0;
        }
        (self.vm_requests * self.config.version_manager_service_ns) as f64 / makespan_ns as f64
    }

    /// Convenience used by tests: whether any chunk was charged to the given
    /// provider during the last run.
    pub fn provider_received_bytes(&self, provider: ProviderId) -> u64 {
        self.provider_in
            .get(provider.0 as usize)
            .map(Resource::bytes)
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for SimulatedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedCluster")
            .field("data_providers", &self.config.data_providers)
            .field("metadata_providers", &self.config.metadata_providers)
            .field("placement", &self.config.placement)
            .finish()
    }
}

/// Convenience constructor used by the benchmark harness: a Grid'5000-like
/// deployment with the given number of data and metadata providers.
pub fn grid_like_cluster(
    data_providers: usize,
    metadata_providers: usize,
) -> Result<SimulatedCluster> {
    let config = ClusterConfig {
        data_providers,
        metadata_providers,
        ..ClusterConfig::default()
    };
    SimulatedCluster::new(config)
}

/// Errors below are turned into a plain [`BlobError`] so the harness can
/// abort cleanly when a workload is mis-configured.
pub fn check_workload(workload: &Workload) -> Result<()> {
    if workload.clients == 0 || workload.ops.len() != workload.clients {
        return Err(BlobError::InvalidConfig(
            "workload must define one op list per client".into(),
        ));
    }
    workload.blob_config.validate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadBuilder;
    use blobseer_types::BlobConfig;

    fn small_workload(clients: usize) -> Workload {
        WorkloadBuilder::new(clients)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(1 << 20)
            .concurrent_appends()
    }

    fn durability_cluster(durability: Durability) -> SimulatedCluster {
        let config = ClusterConfig {
            data_providers: 16,
            metadata_providers: 4,
            durability,
            ..ClusterConfig::default()
        };
        SimulatedCluster::new(config).unwrap()
    }

    #[test]
    fn durability_policies_order_fsyncs_and_latency() {
        let workload = small_workload(1);
        let buffered = durability_cluster(Durability::Buffered)
            .run(&workload)
            .unwrap();
        let commit = durability_cluster(Durability::Commit)
            .run(&workload)
            .unwrap();
        let always = durability_cluster(Durability::Always)
            .run(&workload)
            .unwrap();

        // The WAL is appended under every policy; only the flushes differ.
        assert!(buffered.wal_bytes > 0, "WAL appends happen even buffered");
        assert_eq!(buffered.wal_bytes, commit.wal_bytes);
        assert_eq!(commit.wal_bytes, always.wal_bytes);
        assert_eq!(buffered.fsyncs, 0, "Buffered never flushes");
        assert!(
            commit.fsyncs > 0,
            "Commit flushes segments and the commit record per version"
        );
        assert!(
            always.fsyncs > commit.fsyncs,
            "Always flushes every record, strictly more than Commit"
        );
        // Each flush gates the acknowledgement path, so latency orders the
        // same way the flush counts do.
        assert!(buffered.mean_latency_ms() < commit.mean_latency_ms());
        assert!(commit.mean_latency_ms() < always.mean_latency_ms());
    }

    #[test]
    fn single_writer_throughput_is_bounded_by_its_uplink() {
        let mut sim = grid_like_cluster(16, 4).unwrap();
        let result = sim.run(&small_workload(1)).unwrap();
        assert_eq!(result.failed_ops, 0);
        assert_eq!(result.total_bytes, 16 << 20);
        let mibps = result.aggregated_mibps();
        let link_mibps = 125_000_000.0 / (1024.0 * 1024.0);
        assert!(
            mibps <= link_mibps * 1.01,
            "one client cannot exceed its NIC ({mibps:.1} vs {link_mibps:.1} MiB/s)"
        );
        assert!(
            mibps > link_mibps * 0.5,
            "overheads should not halve throughput"
        );
    }

    #[test]
    fn aggregated_write_throughput_scales_with_clients() {
        let mut sim = grid_like_cluster(64, 16).unwrap();
        let t1 = sim.run(&small_workload(1)).unwrap().aggregated_mibps();
        let t16 = sim.run(&small_workload(16)).unwrap().aggregated_mibps();
        let t64 = sim.run(&small_workload(64)).unwrap().aggregated_mibps();
        assert!(
            t16 > 6.0 * t1,
            "16 clients should scale well ({t16:.0} vs {t1:.0})"
        );
        assert!(t64 > t16, "64 clients should still add throughput");
    }

    #[test]
    fn throughput_saturates_when_providers_are_few() {
        // 64 clients writing to 4 providers: provider downlinks are the
        // bottleneck, so adding providers raises aggregate throughput.
        let few = grid_like_cluster(4, 8)
            .unwrap()
            .run(&small_workload(32))
            .unwrap()
            .aggregated_mibps();
        let many = grid_like_cluster(32, 8)
            .unwrap()
            .run(&small_workload(32))
            .unwrap()
            .aggregated_mibps();
        assert!(
            many > 3.0 * few,
            "striping over 32 providers must beat 4 providers ({many:.0} vs {few:.0})"
        );
    }

    #[test]
    fn decentralized_metadata_beats_centralized_under_concurrency() {
        // Small chunks → many metadata nodes per write → the single
        // metadata server becomes the bottleneck (the paper's Fig. C1).
        let workload = WorkloadBuilder::new(64)
            .ops_per_client(1)
            .op_size(16 << 20)
            .chunk_size(256 << 10)
            .concurrent_appends();
        let centralized = grid_like_cluster(64, 1)
            .unwrap()
            .run(&workload)
            .unwrap()
            .aggregated_mibps();
        let decentralized = grid_like_cluster(64, 32)
            .unwrap()
            .run(&workload)
            .unwrap()
            .aggregated_mibps();
        assert!(
            decentralized > 1.5 * centralized,
            "DHT metadata ({decentralized:.0} MiB/s) must clearly beat a centralized server ({centralized:.0} MiB/s)"
        );
    }

    #[test]
    fn reads_scale_and_find_preloaded_data() {
        let workload = WorkloadBuilder::new(16)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(1 << 20)
            .disjoint_reads();
        let mut sim = grid_like_cluster(32, 8).unwrap();
        let result = sim.run(&workload).unwrap();
        assert_eq!(result.failed_ops, 0);
        assert_eq!(result.total_bytes, workload.total_payload());
        assert!(result.aggregated_mibps() > 200.0);
    }

    #[test]
    fn reads_issue_batched_round_trips_not_per_node_requests() {
        // 8 reads of 128 chunks each over a 4-shard DHT: a node-at-a-time
        // descent would fetch well over a thousand tree nodes one round-trip
        // at a time; the level-order descent stays within
        // depth × shards per read.
        let workload = WorkloadBuilder::new(4)
            .ops_per_client(2)
            .op_size(16 << 20)
            .chunk_size(128 << 10)
            .disjoint_reads();
        let mut sim = grid_like_cluster(16, 4).unwrap();
        let result = sim.run(&workload).unwrap();
        assert_eq!(result.failed_ops, 0);
        let leaves_fetched = 8 * 128u64;
        assert!(result.meta_round_trips > 0);
        assert!(
            result.meta_round_trips < leaves_fetched,
            "{} round-trips for {leaves_fetched} leaves: the descent is not batched",
            result.meta_round_trips
        );
    }

    #[test]
    fn writes_publish_in_shard_grouped_batches() {
        let mut sim = grid_like_cluster(16, 4).unwrap();
        let result = sim.run(&small_workload(4)).unwrap();
        assert_eq!(result.failed_ops, 0);
        assert!(result.meta_nodes_created > 0);
        assert!(result.meta_round_trips > 0);
        // Unbatched publication alone would cost one round-trip per created
        // node; batched publication plus the (single-node) weaving lookups
        // must land clearly below that.
        assert!(
            result.meta_round_trips < result.meta_nodes_created,
            "{} round-trips for {} created nodes",
            result.meta_round_trips,
            result.meta_nodes_created
        );
    }

    #[test]
    fn metadata_nodes_are_spread_over_the_dht() {
        let workload = WorkloadBuilder::new(8)
            .ops_per_client(2)
            .op_size(16 << 20)
            .chunk_size(512 << 10)
            .concurrent_appends();
        let mut sim = grid_like_cluster(16, 8).unwrap();
        let result = sim.run(&workload).unwrap();
        assert!(result.meta_nodes_created > 0);
        let loaded_nodes = result.meta_load.values().filter(|&&n| n > 0).count();
        assert!(
            loaded_nodes >= 6,
            "metadata load should spread over most of the 8 DHT nodes, got {loaded_nodes}"
        );
    }

    fn with_depth(
        data_providers: usize,
        metadata_providers: usize,
        depth: usize,
    ) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig {
            data_providers,
            metadata_providers,
            pipeline_depth: depth,
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn pipelined_reads_cost_strictly_less_than_phased_with_identical_bytes() {
        // The acceptance property of the pipelined scheduler: on the
        // concurrent-read workload the overlapped schedule finishes strictly
        // earlier, returns the same bytes and moves the same chunks.
        let workload = WorkloadBuilder::new(16)
            .ops_per_client(2)
            .op_size(16 << 20)
            .chunk_size(256 << 10)
            .disjoint_reads();
        let phased = with_depth(16, 4, 0).run(&workload).unwrap();
        let pipelined = with_depth(16, 4, 4).run(&workload).unwrap();
        assert_eq!(phased.failed_ops, 0);
        assert_eq!(pipelined.failed_ops, 0);
        assert_eq!(phased.total_bytes, pipelined.total_bytes);
        assert_eq!(phased.data_round_trips, pipelined.data_round_trips);
        assert!(phased.data_round_trips > 0);
        assert!(
            pipelined.makespan_ns < phased.makespan_ns,
            "overlapping descent and fetches must beat the phased schedule \
             ({} vs {} ns)",
            pipelined.makespan_ns,
            phased.makespan_ns
        );
    }

    #[test]
    fn pipelined_writes_overlap_weaving_with_chunk_io() {
        // Small chunks make the metadata plane expensive enough that hiding
        // it behind the chunk transfers is visible end to end.
        let workload = WorkloadBuilder::new(8)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(256 << 10)
            .concurrent_appends();
        let phased = with_depth(16, 4, 0).run(&workload).unwrap();
        let pipelined = with_depth(16, 4, 4).run(&workload).unwrap();
        assert_eq!(phased.total_bytes, pipelined.total_bytes);
        assert_eq!(phased.data_round_trips, pipelined.data_round_trips);
        assert!(
            pipelined.makespan_ns < phased.makespan_ns,
            "weaving while chunks are on the wire must beat the phased \
             schedule ({} vs {} ns)",
            pipelined.makespan_ns,
            phased.makespan_ns
        );
    }

    #[test]
    fn pipelining_helps_readers_racing_writers() {
        let workload = WorkloadBuilder::new(16)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(256 << 10)
            .readers_during_writers();
        let phased = with_depth(16, 4, 0).run(&workload).unwrap();
        let pipelined = with_depth(16, 4, 4).run(&workload).unwrap();
        assert_eq!(phased.failed_ops, 0);
        assert_eq!(pipelined.failed_ops, 0);
        assert_eq!(phased.total_bytes, pipelined.total_bytes);
        assert!(pipelined.makespan_ns < phased.makespan_ns);
    }

    #[test]
    fn data_round_trips_count_chunks_and_replicas() {
        // 4 clients × 2 appends × 8 MiB in 1 MiB chunks, replication 2:
        // every chunk costs two data round-trips, reads would cost one each.
        let workload = WorkloadBuilder::new(4)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(1 << 20)
            .replication(2)
            .concurrent_appends();
        let result = with_depth(16, 4, 4).run(&workload).unwrap();
        assert_eq!(result.failed_ops, 0);
        assert_eq!(result.data_round_trips, 4 * 2 * 8 * 2);
    }

    fn with_cache(cache_bytes: u64) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig {
            data_providers: 16,
            metadata_providers: 4,
            chunk_cache_bytes: cache_bytes,
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn second_read_of_a_published_version_is_round_trip_free() {
        // One client scans the same published 8 MiB region twice. With the
        // chunk cache the second scan performs ZERO data round-trips: all 8
        // chunks of the first scan are still cached (immutable, so no
        // invalidation could have removed them).
        let workload = WorkloadBuilder::new(1)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(1 << 20)
            .rescan_reads();
        let cold = with_cache(0).run(&workload).unwrap();
        let cached = with_cache(64 << 20).run(&workload).unwrap();
        assert_eq!(cold.failed_ops, 0);
        assert_eq!(cached.failed_ops, 0);
        assert_eq!(cold.total_bytes, cached.total_bytes);
        assert_eq!(cold.data_round_trips, 16, "two full scans over the wire");
        assert_eq!(
            cached.data_round_trips, 8,
            "the second scan must fetch nothing"
        );
        assert_eq!(cached.cache_misses, 8);
        assert_eq!(cached.cache_hits, 8);
        assert_eq!(cold.cache_hits, 0);
        assert!(cached.bytes_copied < cold.bytes_copied);
        assert!(
            cached.makespan_ns < cold.makespan_ns,
            "hits cost no wire time ({} vs {} ns)",
            cached.makespan_ns,
            cold.makespan_ns
        );
    }

    #[test]
    fn write_through_makes_read_your_writes_free() {
        // A client appends 8 MiB and immediately reads it back: the read is
        // served entirely from the write-through cache.
        let len = 8u64 << 20;
        let workload = Workload {
            clients: 1,
            blob_config: BlobConfig {
                chunk_size: 1 << 20,
                ..BlobConfig::default()
            },
            preload_bytes: 0,
            ops: vec![vec![
                OpKind::Append { len },
                OpKind::Read { offset: 0, len },
            ]],
            compressibility: 1.0,
        };
        let result = with_cache(64 << 20).run(&workload).unwrap();
        assert_eq!(result.failed_ops, 0);
        assert_eq!(result.data_round_trips, 8, "only the append's pushes");
        assert_eq!(result.cache_hits, 8);
        assert_eq!(result.cache_misses, 0);
    }

    #[test]
    fn aligned_writes_copy_nothing_in_the_sim_model() {
        // Chunk-aligned appends take the zero-copy fast path; the receive
        // copies of reads are the only bytes_copied a read-free run charges.
        let aligned = with_cache(0).run(&small_workload(4)).unwrap();
        assert_eq!(aligned.bytes_copied, 0, "aligned appends assemble nothing");
        // Unaligned appends (op size not a chunk multiple) charge boundary
        // slots from the second op on: the first append truncates its last
        // slot (still fully covered), the next one starts mid-chunk.
        let unaligned = WorkloadBuilder::new(1)
            .ops_per_client(2)
            .op_size((1 << 20) + 17)
            .chunk_size(1 << 20)
            .concurrent_appends();
        let result = with_cache(0).run(&unaligned).unwrap();
        assert!(result.bytes_copied > 0);
    }

    fn with_codec(codec: ChunkCodec) -> SimulatedCluster {
        SimulatedCluster::new(ClusterConfig {
            data_providers: 16,
            metadata_providers: 4,
            chunk_codec: codec,
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn fast_codec_on_a_compressible_corpus_cuts_wire_bytes_and_time() {
        // Mixed readers/writers over a corpus that compresses to 40%: the
        // Fast codec moves the same logical bytes in strictly fewer physical
        // wire bytes and strictly less simulated time.
        let workload = WorkloadBuilder::new(8)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(1 << 20)
            .compressibility(0.4)
            .readers_during_writers();
        let off = with_codec(ChunkCodec::Off).run(&workload).unwrap();
        let fast = with_codec(ChunkCodec::Fast).run(&workload).unwrap();
        assert_eq!(off.failed_ops, 0);
        assert_eq!(fast.failed_ops, 0);
        assert_eq!(
            off.total_bytes, fast.total_bytes,
            "the codec is invisible to payloads"
        );
        assert_eq!(off.data_round_trips, fast.data_round_trips);
        // Codec Off never compresses and reports logical == physical.
        assert_eq!(off.chunks_compressed, 0);
        assert_eq!(off.compress_saved_bytes, 0);
        assert_eq!(off.bytes_on_wire, off.bytes_on_wire_logical);
        // Fast compresses every sealed chunk of this corpus and the physical
        // wire traffic drops well below the logical traffic.
        assert!(fast.chunks_compressed > 0);
        assert!(fast.compress_saved_bytes > 0);
        assert_eq!(fast.bytes_on_wire_logical, off.bytes_on_wire_logical);
        assert!(
            (fast.bytes_on_wire as f64) < 0.5 * fast.bytes_on_wire_logical as f64,
            "a 0.4 corpus must roughly halve the wire bytes ({} vs {})",
            fast.bytes_on_wire,
            fast.bytes_on_wire_logical
        );
        assert!(
            fast.makespan_ns < off.makespan_ns,
            "fewer wire bytes must buy simulated time ({} vs {} ns)",
            fast.makespan_ns,
            off.makespan_ns
        );
    }

    #[test]
    fn incompressible_corpus_under_fast_ships_verbatim_and_pays_only_the_probe() {
        // The default workload is incompressible: Fast seals every chunk
        // through the verbatim passthrough, the wire sees exactly the Off
        // traffic, and the only cost is the sealing scan's CPU time.
        let workload = small_workload(4);
        let off = with_codec(ChunkCodec::Off).run(&workload).unwrap();
        let fast = with_codec(ChunkCodec::Fast).run(&workload).unwrap();
        assert_eq!(off.total_bytes, fast.total_bytes);
        assert_eq!(
            fast.chunks_compressed, 0,
            "passthroughs are not compressions"
        );
        assert_eq!(fast.compress_saved_bytes, 0);
        assert_eq!(fast.bytes_on_wire, off.bytes_on_wire);
        assert_eq!(fast.bytes_on_wire, fast.bytes_on_wire_logical);
        assert!(
            fast.makespan_ns >= off.makespan_ns,
            "the probe cannot make the run faster"
        );
        // The probe is a bounded scan, not a second transfer: well under 10%
        // of the Off makespan at these sizes.
        assert!(
            fast.makespan_ns as f64 <= off.makespan_ns as f64 * 1.1,
            "the passthrough must cap the probe's cost ({} vs {} ns)",
            fast.makespan_ns,
            off.makespan_ns
        );
    }

    #[test]
    fn codec_savings_compound_with_replication_and_rescans() {
        // Replicated writes push the sealed envelope per replica: the wire
        // saving multiplies, while chunks_compressed counts each chunk once.
        let workload = WorkloadBuilder::new(2)
            .ops_per_client(2)
            .op_size(4 << 20)
            .chunk_size(1 << 20)
            .replication(2)
            .compressibility(0.5)
            .concurrent_appends();
        let fast = with_codec(ChunkCodec::Fast).run(&workload).unwrap();
        assert_eq!(fast.failed_ops, 0);
        assert_eq!(fast.chunks_compressed, 2 * 2 * 4, "one seal per chunk");
        assert_eq!(fast.data_round_trips, 2 * 2 * 4 * 2, "one push per replica");
        // Each chunk saved ~0.5 MiB at sealing; on the wire that saving is
        // paid out once per replica push.
        let wire_saving = fast.bytes_on_wire_logical - fast.bytes_on_wire;
        assert_eq!(wire_saving, 2 * fast.compress_saved_bytes);
    }

    fn lossy_plan(drop: f64) -> FaultPlan {
        FaultPlan {
            seed: 99,
            drop,
            delay: 0.2,
            delay_us: 200,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn readers_during_writers_survive_a_lossy_network_with_bounded_slowdown() {
        // The pipelined mixed workload over a network that swallows 5% of
        // data-plane frames: retries mask every fault (no failed ops, same
        // bytes), the dropped frames are visible in the counters, and the
        // lost frames cost real simulated time.
        let workload = WorkloadBuilder::new(8)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(512 << 10)
            .readers_during_writers();
        let mut config = ClusterConfig {
            data_providers: 16,
            metadata_providers: 4,
            ..ClusterConfig::default()
        };
        config.io_timeout_ms = 50; // a short retry timeout, as a lossy deployment would run
        let mut sim = SimulatedCluster::new(config.clone()).unwrap();
        let clean = sim.run(&workload).unwrap();
        sim.set_network_faults(lossy_plan(0.05)).unwrap();
        let lossy = sim.run(&workload).unwrap();
        assert_eq!(clean.failed_ops, 0);
        assert_eq!(lossy.failed_ops, 0, "retries must mask every lost frame");
        assert_eq!(clean.total_bytes, lossy.total_bytes);
        assert_eq!(
            clean.data_round_trips, lossy.data_round_trips,
            "faults cost retries, not extra logical transfers"
        );
        assert_eq!(clean.frames_sent, clean.data_round_trips);
        assert!(lossy.frames_dropped > 0);
        assert_eq!(
            lossy.frames_sent,
            lossy.data_round_trips + lossy.frames_dropped,
            "every dropped frame is retransmitted exactly once more"
        );
        assert!(lossy.bytes_on_wire > clean.bytes_on_wire);
        assert!(
            lossy.makespan_ns > clean.makespan_ns,
            "lost frames must cost simulated time ({} vs {} ns)",
            lossy.makespan_ns,
            clean.makespan_ns
        );
    }

    #[test]
    fn rescan_reads_keep_their_cache_win_over_a_lossy_network() {
        // Re-scanning a published region over a lossy network: the chunk
        // cache still eliminates the second scan's round-trips — and with
        // them its exposure to faults.
        let workload = WorkloadBuilder::new(1)
            .ops_per_client(2)
            .op_size(8 << 20)
            .chunk_size(1 << 20)
            .rescan_reads();
        let mut config = ClusterConfig {
            data_providers: 16,
            metadata_providers: 4,
            chunk_cache_bytes: 64 << 20,
            ..ClusterConfig::default()
        };
        config.io_timeout_ms = 50;
        let mut sim = SimulatedCluster::new(config).unwrap();
        sim.set_network_faults(lossy_plan(0.2)).unwrap();
        let result = sim.run(&workload).unwrap();
        assert_eq!(result.failed_ops, 0);
        assert_eq!(
            result.data_round_trips, 8,
            "the cached second scan stays off the lossy wire entirely"
        );
        assert_eq!(result.cache_hits, 8);
        assert!(result.frames_sent >= 8);
    }

    #[test]
    fn fault_sequences_replay_deterministically_and_clean_plans_disable_the_model() {
        let workload = small_workload(4);
        let mut config = ClusterConfig {
            data_providers: 8,
            metadata_providers: 4,
            ..ClusterConfig::default()
        };
        config.io_timeout_ms = 50;
        let mut sim = SimulatedCluster::new(config).unwrap();
        sim.set_network_faults(lossy_plan(0.1)).unwrap();
        let a = sim.run(&workload).unwrap();
        let b = sim.run(&workload).unwrap();
        // Each run uses a fresh blob (so metadata routing shifts), but the
        // re-seeded fault stream replays identically transfer by transfer.
        assert_eq!(
            a.frames_dropped, b.frames_dropped,
            "seeded faults must replay"
        );
        assert_eq!(a.frames_sent, b.frames_sent);
        assert!(a.frames_dropped > 0);
        // A clean plan turns the model off again.
        sim.set_network_faults(FaultPlan::none()).unwrap();
        let clean = sim.run(&workload).unwrap();
        assert_eq!(clean.frames_dropped, 0);
        assert!(sim
            .set_network_faults(FaultPlan {
                drop: 7.0,
                ..FaultPlan::none()
            })
            .is_err());
    }

    #[test]
    fn failed_providers_reduce_read_success_without_replication() {
        let workload = WorkloadBuilder::new(4)
            .ops_per_client(2)
            .op_size(4 << 20)
            .chunk_size(1 << 20)
            .disjoint_reads();
        let mut sim = grid_like_cluster(8, 4).unwrap();
        // Fail half the providers right away, for the whole run.
        for i in 0..4u32 {
            sim.schedule_failure(ProviderId(i), 0, u64::MAX / 2);
        }
        let result = sim.run(&workload).unwrap();
        assert!(result.failed_ops > 0, "unreplicated reads must lose data");
    }

    #[test]
    fn replication_masks_provider_failures() {
        let workload = WorkloadBuilder::new(4)
            .ops_per_client(2)
            .op_size(4 << 20)
            .chunk_size(1 << 20)
            .replication(2)
            .disjoint_reads();
        let mut sim = grid_like_cluster(8, 4).unwrap();
        // Round-robin places the two replicas of a chunk on adjacent
        // providers, so fail two non-adjacent ones.
        for i in [0u32, 4u32] {
            sim.schedule_failure(ProviderId(i), 0, u64::MAX / 2);
        }
        let result = sim.run(&workload).unwrap();
        assert_eq!(
            result.failed_ops, 0,
            "a replica must cover every failed provider"
        );
    }

    #[test]
    fn degradation_slows_the_run_down() {
        let workload = small_workload(8);
        let healthy = grid_like_cluster(8, 4)
            .unwrap()
            .run(&workload)
            .unwrap()
            .aggregated_mibps();
        let mut degraded_sim = grid_like_cluster(8, 4).unwrap();
        for i in 0..4u32 {
            degraded_sim.schedule_degradation(ProviderId(i), 0, u64::MAX / 2, 8.0);
        }
        let degraded = degraded_sim.run(&workload).unwrap().aggregated_mibps();
        assert!(
            degraded < healthy * 0.8,
            "slowing half the providers 8x must hurt throughput ({degraded:.0} vs {healthy:.0})"
        );
    }

    #[test]
    fn windowed_throughput_covers_the_makespan() {
        let mut sim = grid_like_cluster(8, 4).unwrap();
        let result = sim.run(&small_workload(4)).unwrap();
        let windows = result.windowed_throughput_mibps(result.makespan_ns / 10);
        assert!(windows.len() >= 10);
        let total_from_windows: f64 =
            windows.iter().sum::<f64>() * (result.makespan_ns as f64 / 10.0 / NANOS_PER_SEC as f64);
        let total_mib = result.total_bytes as f64 / (1024.0 * 1024.0);
        assert!((total_from_windows - total_mib).abs() / total_mib < 0.2);
    }

    #[test]
    fn workload_validation_catches_mismatches() {
        let mut w = small_workload(2);
        w.ops.pop();
        assert!(check_workload(&w).is_err());
        assert!(check_workload(&small_workload(2)).is_ok());
    }
}
