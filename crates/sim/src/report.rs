//! Helpers for turning simulation results into the tables and series the
//! benchmark harness prints.

use crate::cluster::SimulationResult;

/// One point of a parameter sweep: an x value (number of clients, number of
/// providers, operation size, …) and the metrics measured there.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Aggregated throughput in MiB/s.
    pub throughput_mibps: f64,
    /// Mean per-operation latency in milliseconds.
    pub latency_ms: f64,
    /// Metadata round-trips issued during the measured run (zero for
    /// analytically modelled series that never touch the metadata DHT).
    pub meta_round_trips: u64,
    /// Data-plane round-trips (chunks moved, replica pushes counted
    /// individually) issued during the measured run; zero for analytic
    /// series. With `meta_round_trips` this shows pipeline occupancy: the
    /// pipelined schedule moves the same chunks in less elapsed time.
    pub data_round_trips: u64,
    /// Client-side payload bytes memcpy'd (boundary-slot assembly plus one
    /// receive materialisation per chunk actually fetched over the wire);
    /// zero for analytic series. Chunk-cache hits copy nothing.
    pub bytes_copied: u64,
    /// Chunk fetches served by the client chunk cache.
    pub cache_hits: u64,
    /// Chunk fetches that missed the cache and hit the providers.
    pub cache_misses: u64,
    /// Bytes physically moved on the wire (payload as the codec shipped it,
    /// plus frame overhead, retries included); zero for analytic series and
    /// in-process measurements.
    pub bytes_on_wire: u64,
    /// Bytes logically moved on the wire (decompressed payload sizes plus
    /// the same overhead); equals `bytes_on_wire` when the chunk codec is
    /// off. Zero for analytic series.
    pub bytes_on_wire_logical: u64,
    /// Chunks the `Fast` chunk codec actually shrank at sealing time.
    pub chunks_compressed: u64,
    /// Logical-minus-physical bytes the codec saved at sealing time.
    pub compress_saved_bytes: u64,
    /// Frames put on the wire (retries included); zero for analytic series
    /// and in-process measurements.
    pub frames_sent: u64,
    /// Frames that shared a batched (coalesced) write with a predecessor
    /// instead of paying their own syscall/per-request latency; a batch of
    /// n contributes n - 1. Zero for analytic series.
    pub frames_coalesced: u64,
}

/// A named series of sweep points (one curve of a figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSeries {
    /// Name shown in the printed table (e.g. "BlobSeer (DHT metadata)").
    pub name: String,
    /// The measured points, in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl SweepSeries {
    /// Creates an empty series with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SweepSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point with no round-trip measurements (analytic series).
    pub fn push(&mut self, x: f64, throughput_mibps: f64, latency_ms: f64) {
        self.push_measured(x, throughput_mibps, latency_ms, 0, 0);
    }

    /// Appends a point with a metadata round-trip measurement but no
    /// data-plane one (kept for callers predating `data_round_trips`).
    pub fn push_full(
        &mut self,
        x: f64,
        throughput_mibps: f64,
        latency_ms: f64,
        meta_round_trips: u64,
    ) {
        self.push_measured(x, throughput_mibps, latency_ms, meta_round_trips, 0);
    }

    /// Appends a fully measured point, both planes' round-trips included
    /// (cache and copy counters zero; prefer [`SweepSeries::push_sim`] when
    /// a [`SimulationResult`] is at hand).
    pub fn push_measured(
        &mut self,
        x: f64,
        throughput_mibps: f64,
        latency_ms: f64,
        meta_round_trips: u64,
        data_round_trips: u64,
    ) {
        self.points.push(SeriesPoint {
            x,
            throughput_mibps,
            latency_ms,
            meta_round_trips,
            data_round_trips,
            bytes_copied: 0,
            cache_hits: 0,
            cache_misses: 0,
            bytes_on_wire: 0,
            bytes_on_wire_logical: 0,
            chunks_compressed: 0,
            compress_saved_bytes: 0,
            frames_sent: 0,
            frames_coalesced: 0,
        });
    }

    /// Appends a fully populated point (measurements that do not come from
    /// a [`SimulationResult`], e.g. wall-clock runs of real clusters).
    pub fn push_point(&mut self, point: SeriesPoint) {
        self.points.push(point);
    }

    /// Appends every metric of one simulation run as a point at `x`.
    pub fn push_sim(&mut self, x: f64, result: &SimulationResult) {
        self.points.push(SeriesPoint {
            x,
            throughput_mibps: result.aggregated_mibps(),
            latency_ms: result.mean_latency_ms(),
            meta_round_trips: result.meta_round_trips,
            data_round_trips: result.data_round_trips,
            bytes_copied: result.bytes_copied,
            cache_hits: result.cache_hits,
            cache_misses: result.cache_misses,
            bytes_on_wire: result.bytes_on_wire,
            bytes_on_wire_logical: result.bytes_on_wire_logical,
            chunks_compressed: result.chunks_compressed,
            compress_saved_bytes: result.compress_saved_bytes,
            frames_sent: result.frames_sent,
            frames_coalesced: result.frames_coalesced,
        });
    }

    /// The throughput of the point with the largest x (usually the largest
    /// concurrency level), if any.
    #[must_use]
    pub fn final_throughput(&self) -> Option<f64> {
        self.points.last().map(|p| p.throughput_mibps)
    }
}

/// Formats one or more series as an aligned text table with `x_label` as the
/// first column and one throughput column per series. This is the format the
/// figure binaries print so that the numbers can be compared side by side
/// with the paper's plots.
#[must_use]
pub fn format_table(x_label: &str, series: &[SweepSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{x_label:>14}"));
    for s in series {
        out.push_str(&format!("  {:>28}", format!("{} (MiB/s)", s.name)));
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for row in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(row).map(|p| p.x))
            .unwrap_or(0.0);
        out.push_str(&format!("{x:>14.0}"));
        for s in series {
            match s.points.get(row) {
                Some(p) => out.push_str(&format!("  {:>28.1}", p.throughput_mibps)),
                None => out.push_str(&format!("  {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Mean of a slice of samples.
#[must_use]
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Population standard deviation of a slice of samples.
#[must_use]
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulate_points() {
        let mut s = SweepSeries::new("BlobSeer");
        s.push(1.0, 100.0, 5.0);
        s.push(2.0, 190.0, 6.0);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.final_throughput(), Some(190.0));
        assert_eq!(SweepSeries::new("x").final_throughput(), None);
    }

    #[test]
    fn table_contains_all_series_and_rows() {
        let mut a = SweepSeries::new("centralized");
        a.push(1.0, 100.0, 1.0);
        a.push(2.0, 110.0, 1.0);
        let mut b = SweepSeries::new("DHT");
        b.push(1.0, 100.0, 1.0);
        b.push(2.0, 200.0, 1.0);
        let table = format_table("clients", &[a, b]);
        assert!(table.contains("clients"));
        assert!(table.contains("centralized"));
        assert!(table.contains("DHT"));
        assert!(table.contains("200.0"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn table_handles_ragged_series() {
        let mut a = SweepSeries::new("a");
        a.push(1.0, 10.0, 1.0);
        let b = SweepSeries::new("b");
        let table = format_table("x", &[a, b]);
        assert!(table.contains('-'));
    }

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-9);
    }
}
