//! Discrete-event cluster simulator for BlobSeer-RS.
//!
//! The paper's evaluation ran on the Grid'5000 testbed with dozens to
//! hundreds of physical nodes; this crate stands in for that testbed on a
//! single machine. It is a *flow/queue-level* simulator:
//!
//! * every node (client, data provider, metadata provider, version manager)
//!   owns FIFO byte-server [`resource::Resource`]s modelling its NIC and its
//!   request-processing capacity;
//! * client operations are decomposed into protocol phases (version ticket →
//!   chunk transfers → metadata weaving → publication) whose individual jobs
//!   are charged to the resources they would occupy in a real deployment;
//! * crucially, *which* chunks go to *which* providers and *which* metadata
//!   nodes go to *which* DHT nodes is decided by the **real** BlobSeer-RS
//!   code (`blobseer-provider`, `blobseer-meta`, `blobseer-dht`,
//!   `blobseer-core`), so the simulated contention structure is exactly the
//!   one the library produces.
//!
//! The simulator answers the performance-at-scale questions (aggregated
//! throughput versus number of clients / providers / metadata nodes, impact
//! of failures, …) that cannot be answered faithfully by running hundreds of
//! threads on one laptop; functional correctness is covered by the real
//! in-process cluster of `blobseer-core`.

pub mod cluster;
pub mod report;
pub mod resource;
pub mod workload;

pub use cluster::{
    check_workload, grid_like_cluster, OpRecord, SimulatedCluster, SimulationResult,
};
pub use report::{format_table, mean, std_dev, SeriesPoint, SweepSeries};
pub use resource::{Resource, SimTime, NANOS_PER_SEC};
pub use workload::{OpKind, SimOp, Workload, WorkloadBuilder};
