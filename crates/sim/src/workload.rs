//! Workload generation for the simulated experiments.
//!
//! A [`Workload`] is a set of per-client operation sequences over one or
//! more blobs, plus the blob configuration to create them with. The
//! [`WorkloadBuilder`] provides the access patterns used by the paper's
//! experiments: concurrent appenders to a shared blob (Section IV.B/C),
//! readers and writers of disjoint regions of one huge blob (IV.A, IV.D),
//! and random fine-grain accesses (the desktop-grid and supernovae
//! scenarios).

use blobseer_types::BlobConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One simulated client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Append `len` bytes to the shared blob.
    Append {
        /// Payload size in bytes.
        len: u64,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// First byte written.
        offset: u64,
        /// Payload size in bytes.
        len: u64,
    },
    /// Read `len` bytes at `offset` from the latest published snapshot.
    Read {
        /// First byte read.
        offset: u64,
        /// Number of bytes read.
        len: u64,
    },
}

impl OpKind {
    /// Payload bytes moved by the operation.
    #[must_use]
    pub fn payload(&self) -> u64 {
        match self {
            OpKind::Append { len } | OpKind::Write { len, .. } | OpKind::Read { len, .. } => *len,
        }
    }

    /// Whether the operation mutates the blob.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, OpKind::Read { .. })
    }
}

/// An operation bound to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOp {
    /// Index of the client issuing the operation.
    pub client: usize,
    /// The operation itself.
    pub kind: OpKind,
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of clients taking part.
    pub clients: usize,
    /// Configuration of the blob(s) the workload runs against.
    pub blob_config: BlobConfig,
    /// Bytes the blob is pre-loaded with before measurement starts (read
    /// workloads need existing data).
    pub preload_bytes: u64,
    /// Per-client operation sequences; `ops[c]` is executed sequentially by
    /// client `c`, different clients run concurrently.
    pub ops: Vec<Vec<OpKind>>,
    /// Fraction of its original size a chunk of this corpus occupies after
    /// the `Fast` chunk codec ran over it: `1.0` (the default) models an
    /// incompressible corpus (the codec's passthrough escape fires and the
    /// chunk ships verbatim), `0.4` a text-like corpus that compresses to
    /// 40 %. Ignored entirely when the cluster runs with the codec `Off`.
    pub compressibility: f64,
}

impl Workload {
    /// Total payload bytes moved by all measured operations.
    #[must_use]
    pub fn total_payload(&self) -> u64 {
        self.ops
            .iter()
            .flat_map(|ops| ops.iter())
            .map(OpKind::payload)
            .sum()
    }

    /// Total number of measured operations.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }
}

/// Builder for the standard access patterns of the paper's experiments.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    clients: usize,
    ops_per_client: usize,
    op_size: u64,
    chunk_size: u64,
    replication: usize,
    seed: u64,
    compressibility: f64,
}

impl WorkloadBuilder {
    /// Starts a builder with the paper's default parameters: 64 MiB
    /// operations on a blob with 1 MiB chunks, no replication.
    #[must_use]
    pub fn new(clients: usize) -> Self {
        WorkloadBuilder {
            clients,
            ops_per_client: 4,
            op_size: 64 << 20,
            chunk_size: 1 << 20,
            replication: 1,
            seed: 42,
            compressibility: 1.0,
        }
    }

    /// Sets how many operations each client performs.
    #[must_use]
    pub fn ops_per_client(mut self, ops: usize) -> Self {
        self.ops_per_client = ops;
        self
    }

    /// Sets the payload size of each operation.
    #[must_use]
    pub fn op_size(mut self, bytes: u64) -> Self {
        self.op_size = bytes;
        self
    }

    /// Sets the chunk size of the blob.
    #[must_use]
    pub fn chunk_size(mut self, bytes: u64) -> Self {
        self.chunk_size = bytes;
        self
    }

    /// Sets the replication factor of the blob.
    #[must_use]
    pub fn replication(mut self, replicas: usize) -> Self {
        self.replication = replicas;
        self
    }

    /// Sets the RNG seed used by randomised patterns.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the corpus compressibility: the fraction of its original size a
    /// chunk occupies after the `Fast` codec (clamped to `(0, 1]`; `1.0`
    /// models an incompressible corpus). Only meaningful on clusters
    /// configured with `chunk_codec: Fast`.
    #[must_use]
    pub fn compressibility(mut self, ratio: f64) -> Self {
        self.compressibility = ratio.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    fn blob_config(&self) -> BlobConfig {
        BlobConfig {
            chunk_size: self.chunk_size,
            replication: self.replication,
            ..BlobConfig::default()
        }
    }

    /// All clients append to the same blob (the write-intensive desktop-grid
    /// and data-acquisition pattern of Sections IV.B and IV.C).
    #[must_use]
    pub fn concurrent_appends(self) -> Workload {
        let ops = (0..self.clients)
            .map(|_| vec![OpKind::Append { len: self.op_size }; self.ops_per_client])
            .collect();
        Workload {
            clients: self.clients,
            blob_config: self.blob_config(),
            preload_bytes: 0,
            ops,
            compressibility: self.compressibility,
        }
    }

    /// Every client writes its own disjoint region of one shared blob (the
    /// concurrent-writers pattern of Section IV.A).
    #[must_use]
    pub fn disjoint_writes(self) -> Workload {
        let region = self.op_size * self.ops_per_client as u64;
        let ops = (0..self.clients)
            .map(|c| {
                (0..self.ops_per_client)
                    .map(|i| OpKind::Write {
                        offset: c as u64 * region + i as u64 * self.op_size,
                        len: self.op_size,
                    })
                    .collect()
            })
            .collect();
        Workload {
            clients: self.clients,
            blob_config: self.blob_config(),
            preload_bytes: 0,
            ops,
            compressibility: self.compressibility,
        }
    }

    /// Every client reads its own disjoint region of one shared, pre-loaded
    /// blob (the concurrent-readers pattern of Sections IV.A and IV.D).
    #[must_use]
    pub fn disjoint_reads(self) -> Workload {
        let region = self.op_size * self.ops_per_client as u64;
        let total = region * self.clients as u64;
        let ops = (0..self.clients)
            .map(|c| {
                (0..self.ops_per_client)
                    .map(|i| OpKind::Read {
                        offset: c as u64 * region + i as u64 * self.op_size,
                        len: self.op_size,
                    })
                    .collect()
            })
            .collect();
        Workload {
            clients: self.clients,
            blob_config: self.blob_config(),
            preload_bytes: total,
            ops,
            compressibility: self.compressibility,
        }
    }

    /// Readers racing writers on one blob: the first half of the clients
    /// keep appending new records while the second half read their own
    /// disjoint, pre-loaded regions of the latest published snapshot. This
    /// is the workload where decoupling the data and metadata planes pays
    /// the most — every reader's tree descent competes with the writers'
    /// weaving traffic on the metadata providers, so overlapping the
    /// descent with chunk fetches hides that contention.
    #[must_use]
    pub fn readers_during_writers(self) -> Workload {
        let readers = (self.clients / 2).max(1);
        let writers = self.clients - readers;
        let region = self.op_size * self.ops_per_client as u64;
        let ops = (0..self.clients)
            .map(|c| {
                if c < writers {
                    vec![OpKind::Append { len: self.op_size }; self.ops_per_client]
                } else {
                    let r = (c - writers) as u64;
                    (0..self.ops_per_client)
                        .map(|i| OpKind::Read {
                            offset: r * region + i as u64 * self.op_size,
                            len: self.op_size,
                        })
                        .collect()
                }
            })
            .collect();
        Workload {
            clients: self.clients,
            blob_config: self.blob_config(),
            preload_bytes: region * readers as u64,
            ops,
            compressibility: self.compressibility,
        }
    }

    /// Every client repeatedly re-reads the same pre-loaded, published
    /// region — the MapReduce-input pattern, where many workers scan one
    /// shared input over and over across job stages. Immutable snapshots
    /// make every scan after the first infinitely cacheable: with a client
    /// chunk cache the re-scans cost zero data round-trips, which is
    /// exactly what the cold-versus-cached figure measures.
    #[must_use]
    pub fn rescan_reads(self) -> Workload {
        let ops = (0..self.clients)
            .map(|_| {
                vec![
                    OpKind::Read {
                        offset: 0,
                        len: self.op_size,
                    };
                    self.ops_per_client
                ]
            })
            .collect();
        Workload {
            clients: self.clients,
            blob_config: self.blob_config(),
            preload_bytes: self.op_size,
            ops,
            compressibility: self.compressibility,
        }
    }

    /// The QoS tier's overload scenario: the builder's `clients` are
    /// *greedy* tenants, each injecting `ops_per_client` bursts of
    /// `op_size` bytes, and one extra *interactive* tenant (always the
    /// **last** client index, `clients`) issues `interactive_ops` small
    /// appends of `interactive_len` bytes whose latency is the measurement.
    ///
    /// `admission_window` models the per-client admission throttle of the
    /// shared transfer pool on the greedy tenants' submission stream: a
    /// tenant at its window blocks at submission until one of its own
    /// transfers completes, so its burst reaches the data plane as paced
    /// installments of at most `admission_window` chunks instead of one
    /// atomic flood — which is exactly how the throttled stream is
    /// simulated here. Zero (admission off) injects each burst whole; the
    /// interactive tenant never reaches the window either way, so its own
    /// stream is identical in both arms.
    #[must_use]
    pub fn overload(
        self,
        interactive_len: u64,
        interactive_ops: usize,
        admission_window: usize,
    ) -> Workload {
        let burst = if admission_window == 0 {
            self.op_size
        } else {
            (admission_window as u64 * self.chunk_size).min(self.op_size)
        };
        let mut ops: Vec<Vec<OpKind>> = (0..self.clients)
            .map(|_| {
                let mut tenant = Vec::new();
                for _ in 0..self.ops_per_client {
                    let mut remaining = self.op_size;
                    while remaining > 0 {
                        let len = burst.min(remaining);
                        tenant.push(OpKind::Append { len });
                        remaining -= len;
                    }
                }
                tenant
            })
            .collect();
        ops.push(vec![
            OpKind::Append {
                len: interactive_len,
            };
            interactive_ops
        ]);
        Workload {
            clients: self.clients + 1,
            blob_config: self.blob_config(),
            preload_bytes: 0,
            ops,
            compressibility: self.compressibility,
        }
    }

    /// Clients read and write random chunk-aligned regions of a pre-loaded
    /// blob (the fine-grain random access pattern of the supernovae and
    /// desktop-grid scenarios). `write_fraction` is the probability that an
    /// operation is a write.
    #[must_use]
    pub fn random_mixed(self, write_fraction: f64, blob_bytes: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let slots = (blob_bytes / self.op_size).max(1);
        let ops = (0..self.clients)
            .map(|_| {
                (0..self.ops_per_client)
                    .map(|_| {
                        let offset = rng.gen_range(0..slots) * self.op_size;
                        if rng.gen_bool(write_fraction.clamp(0.0, 1.0)) {
                            OpKind::Write {
                                offset,
                                len: self.op_size,
                            }
                        } else {
                            OpKind::Read {
                                offset,
                                len: self.op_size,
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        Workload {
            clients: self.clients,
            blob_config: self.blob_config(),
            preload_bytes: blob_bytes,
            ops,
            compressibility: self.compressibility,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_appends_cover_all_clients() {
        let w = WorkloadBuilder::new(8)
            .ops_per_client(3)
            .op_size(1 << 20)
            .concurrent_appends();
        assert_eq!(w.clients, 8);
        assert_eq!(w.ops.len(), 8);
        assert_eq!(w.total_ops(), 24);
        assert_eq!(w.total_payload(), 24 << 20);
        assert_eq!(w.preload_bytes, 0);
        assert!(w.ops.iter().flatten().all(|op| op.is_write()));
    }

    #[test]
    fn disjoint_writes_do_not_overlap() {
        let w = WorkloadBuilder::new(4)
            .ops_per_client(2)
            .op_size(100)
            .disjoint_writes();
        let mut regions: Vec<(u64, u64)> = w
            .ops
            .iter()
            .flatten()
            .map(|op| match op {
                OpKind::Write { offset, len } => (*offset, *len),
                _ => panic!("expected writes"),
            })
            .collect();
        regions.sort();
        for pair in regions.windows(2) {
            assert!(pair[0].0 + pair[0].1 <= pair[1].0, "regions overlap");
        }
    }

    #[test]
    fn disjoint_reads_preload_the_whole_region() {
        let w = WorkloadBuilder::new(4)
            .ops_per_client(2)
            .op_size(100)
            .disjoint_reads();
        assert_eq!(w.preload_bytes, 4 * 2 * 100);
        assert!(w.ops.iter().flatten().all(|op| !op.is_write()));
    }

    #[test]
    fn readers_during_writers_splits_the_clients() {
        let w = WorkloadBuilder::new(8)
            .ops_per_client(2)
            .op_size(100)
            .readers_during_writers();
        let writers = w.ops.iter().filter(|ops| ops[0].is_write()).count();
        let readers = w.ops.iter().filter(|ops| !ops[0].is_write()).count();
        assert_eq!(writers, 4);
        assert_eq!(readers, 4);
        // The preload covers exactly what the readers will ask for.
        assert_eq!(w.preload_bytes, 4 * 2 * 100);
        // Reader regions are disjoint.
        let mut regions: Vec<u64> = w
            .ops
            .iter()
            .flatten()
            .filter_map(|op| match op {
                OpKind::Read { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        regions.sort_unstable();
        regions.dedup();
        assert_eq!(regions.len(), 8);
    }

    #[test]
    fn random_mixed_respects_write_fraction_extremes() {
        let all_writes = WorkloadBuilder::new(4)
            .ops_per_client(10)
            .op_size(64)
            .random_mixed(1.0, 64 * 100);
        assert!(all_writes.ops.iter().flatten().all(|op| op.is_write()));
        let all_reads = WorkloadBuilder::new(4)
            .ops_per_client(10)
            .op_size(64)
            .random_mixed(0.0, 64 * 100);
        assert!(all_reads.ops.iter().flatten().all(|op| !op.is_write()));
    }

    #[test]
    fn random_mixed_is_reproducible_for_a_seed() {
        let a = WorkloadBuilder::new(3).seed(7).random_mixed(0.5, 1 << 20);
        let b = WorkloadBuilder::new(3).seed(7).random_mixed(0.5, 1 << 20);
        assert_eq!(a.ops, b.ops);
        let c = WorkloadBuilder::new(3).seed(8).random_mixed(0.5, 1 << 20);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn compressibility_defaults_to_incompressible_and_clamps() {
        let w = WorkloadBuilder::new(1).concurrent_appends();
        assert_eq!(w.compressibility, 1.0);
        let w = WorkloadBuilder::new(1)
            .compressibility(0.4)
            .disjoint_reads();
        assert_eq!(w.compressibility, 0.4);
        let w = WorkloadBuilder::new(1).compressibility(7.0).rescan_reads();
        assert_eq!(w.compressibility, 1.0);
    }

    #[test]
    fn builder_parameters_flow_into_the_blob_config() {
        let w = WorkloadBuilder::new(2)
            .chunk_size(4096)
            .replication(3)
            .concurrent_appends();
        assert_eq!(w.blob_config.chunk_size, 4096);
        assert_eq!(w.blob_config.replication, 3);
    }
}
